//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion 0.5 API the `exq-bench`
//! benches use: [`Criterion::benchmark_group`], group `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a simple best-of-N wall-clock measurement printed to
//! stdout — adequate for smoke runs (`cargo bench -- --quick`) and for
//! relative comparisons, without the statistical machinery.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (kept tiny; this harness is
/// for smoke coverage, not publication-grade statistics).
const MEASURE_ITERS: u32 = 10;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Convert to the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    nanos: u128,
}

impl Bencher {
    /// Time `routine`, keeping the best of a few batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup, then MEASURE_ITERS timed runs; record the minimum.
        std::hint::black_box(routine());
        let mut best = u128::MAX;
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            std::hint::black_box(routine());
            best = best.min(start.elapsed().as_nanos());
        }
        self.nanos = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { nanos: 0 };
        f(&mut b);
        println!(
            "{}/{}: {} ns/iter (best of {MEASURE_ITERS})",
            self.name,
            id.into_id(),
            b.nanos
        );
        self
    }

    /// Run `f` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { nanos: 0 };
        f(&mut b, input);
        println!(
            "{}/{}: {} ns/iter (best of {MEASURE_ITERS})",
            self.name,
            id.into_id(),
            b.nanos
        );
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { nanos: 0 };
        f(&mut b);
        println!("{name}: {} ns/iter (best of {MEASURE_ITERS})", b.nanos);
        self
    }
}

/// Prevent the optimizer from discarding a value (re-export of
/// [`std::hint::black_box`] under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point invoking each [`criterion_group!`] runner. Command-line
/// flags (e.g. `--quick`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Flags like `--quick` configure sampling upstream; the stub's
            // sampling is already minimal.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
