//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::{sample_pattern, Arbitrary, SampleFn, TestRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test inputs. Unlike upstream proptest there is no
/// shrinking: a strategy is just a deterministic sampling function.
pub trait Strategy {
    /// Type of value produced.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (resamples a bounded number of
    /// times, then keeps the last draw).
    fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Build recursive values: `recurse` receives the strategy built so
    /// far and returns one that may embed it. `depth` bounds nesting.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T> {
    pub(crate) sample: SampleFn<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.inner.sample(rng);
        for _ in 0..64 {
            if (self.f)(&value) {
                break;
            }
            value = self.inner.sample(rng);
        }
        value
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the macro's boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);

/// Length distribution for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
