//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * `any::<T>()`, ranges, tuples, [`Just`], `&'static str` character
//!   classes (`"[a-z]{0,6}"`), [`collection::vec`], [`option::of`];
//! * the [`proptest!`] macro (with `#![proptest_config(…)]`),
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`];
//! * [`test_runner::TestRunner`] / [`test_runner::ProptestConfig`] /
//!   [`test_runner::TestCaseError`].
//!
//! It generates deterministic pseudo-random inputs but does **not**
//! shrink failures or persist regression seeds; a failing case panics
//! with its debug-printed input so it can be reproduced by hand.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::rc::Rc;

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies (subset: [`option::of`]).
pub mod option {
    use super::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `Some` of the inner strategy most of the time
    /// and `None` occasionally.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Internal deterministic generator used by the runner and strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the runner derives one seed per test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Boxed sampling function shared by [`BoxedStrategy`] and [`Union`].
pub(crate) type SampleFn<T> = Rc<dyn Fn(&mut TestRng) -> T>;

/// Re-exported so `proptest::proptest! {}` paths work like upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each embedded test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniformly choose between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Character-class string patterns (`"[a-z]{0,6}"`), the subset of
/// proptest's regex string strategies the tests rely on. Supports one
/// bracketed class with ranges, escapes, and Java-style `&&[^…]`
/// subtraction, followed by an optional `{m,n}` repetition.
pub(crate) fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        // *i points at '['.
        *i += 1;
        let negate = chars.get(*i) == Some(&'^');
        if negate {
            *i += 1;
        }
        let mut include: Vec<char> = Vec::new();
        let mut intersect: Option<Vec<char>> = None;
        while *i < chars.len() && chars[*i] != ']' {
            if chars[*i] == '&'
                && chars.get(*i + 1) == Some(&'&')
                && chars.get(*i + 2) == Some(&'[')
            {
                *i += 2;
                intersect = Some(parse_class(chars, i));
                continue;
            }
            let lo = read_char(chars, i);
            if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&c| c != ']') {
                *i += 1;
                let hi = read_char(chars, i);
                for c in lo..=hi {
                    include.push(c);
                }
            } else {
                include.push(lo);
            }
        }
        if *i < chars.len() {
            *i += 1; // ']'
        }
        if negate {
            // Negation over printable ASCII, enough for test inputs.
            let all: Vec<char> = (' '..='~').collect();
            include = all.into_iter().filter(|c| !include.contains(c)).collect();
        }
        // Java-style `&&[…]` is class intersection.
        if let Some(other) = intersect {
            include.retain(|c| other.contains(c));
        }
        include
    }

    fn read_char(chars: &[char], i: &mut usize) -> char {
        let c = chars[*i];
        *i += 1;
        if c != '\\' || *i >= chars.len() {
            return c;
        }
        let e = chars[*i];
        *i += 1;
        match e {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    let mut out = String::new();
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            parse_class(&chars, &mut i)
        } else if chars[i] == '.' {
            i += 1;
            (' '..='~').collect()
        } else {
            let c = read_char(&chars, &mut i);
            vec![c]
        };
        // Optional {m,n} / {n} repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            i += 1;
            let mut lo = 0usize;
            while chars.get(i).is_some_and(char::is_ascii_digit) {
                lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
            let hi = if chars.get(i) == Some(&',') {
                i += 1;
                let mut hi = 0usize;
                while chars.get(i).is_some_and(char::is_ascii_digit) {
                    hi = hi * 10 + chars[i].to_digit(10).unwrap() as usize;
                    i += 1;
                }
                hi
            } else {
                lo
            };
            if chars.get(i) == Some(&'}') {
                i += 1;
            }
            (lo, hi)
        } else if chars.get(i) == Some(&'*') {
            i += 1;
            (0, 8)
        } else if chars.get(i) == Some(&'+') {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        if alphabet.is_empty() {
            continue;
        }
        let len = lo + rng.below(hi - lo + 1);
        for _ in 0..len {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
    }
    out
}

/// Values with a default strategy, used by [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Like upstream's default: finite values only (no NaN/inf), with
        // zeros and extremes mixed in.
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f32::MIN_POSITIVE,
            _ => ((rng.unit() - 0.5) * 2e6) as f32,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            _ => (rng.unit() - 0.5) * 2e12,
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_generate_in_class() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::sample_pattern("[a-z]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::sample_pattern("[ -~&&[^\\\\]]{0,8}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c) && c != '\\'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_and_strategies_work(
            xs in crate::collection::vec((0u8..6, any::<bool>()), 1..12),
            o in crate::option::of(any::<i32>()),
            s in "[a-z]{1,3}",
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            for (x, _) in &xs {
                prop_assert!(*x < 6);
            }
            if let Some(v) = o {
                let _ = v;
            }
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }

        #[test]
        fn oneof_and_recursive(
            v in prop_oneof![Just(0usize), 1usize..4, Just(9usize)].prop_recursive(
                2, 8, 2, |inner| inner.prop_map(|x| x.min(9))),
        ) {
            prop_assert!(v <= 9);
        }
    }
}
