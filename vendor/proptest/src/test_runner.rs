//! Test execution: configuration, the error type returned by
//! `prop_assert!`, and the case-loop runner.

use crate::strategy::Strategy;
use crate::TestRng;
use std::fmt;

/// Runner configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (e.g. by an explicit assumption).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Generates inputs and runs the property closure over them.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Run `test` over `config.cases` generated inputs. Panics (failing
    /// the enclosing `#[test]`) on the first case whose closure returns
    /// [`TestCaseError::Fail`]; the input's `Debug` form is included so
    /// the case can be reproduced. Rejected cases are skipped.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(0xE2C5_D1A0_u64 ^ (u64::from(case) << 17));
            let value = strategy.sample(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{case} failed: {msg}\n  input: {repr}")
                }
            }
        }
    }
}
