//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.9) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the rand 0.9 API the workspace
//! uses: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same
//! construction rand 0.9 uses on 64-bit targets), the [`Rng`] extension
//! trait with `random::<T>()` / `random_range(..)`, and [`SeedableRng`].
//!
//! Streams are deterministic per seed, which is all the datagen crates
//! rely on; they do not promise bit-compatibility with upstream rand.

#![warn(missing_docs)]

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, mirroring `rand::Rng` 0.9 names.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair coin).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, n)` via widening-multiply rejection
/// (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let low = m as u64;
        if low >= n || low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// Per-type uniform sampling used by the blanket [`SampleRange`] impls
/// (one generic impl per range shape keeps integer-literal inference
/// working the way upstream rand's does).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[start, end)` (or `[start, end]` when
    /// `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(start < end, "cannot sample from an empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// Named generators (subset: [`rngs::SmallRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (what rand 0.9 uses for
    /// `SmallRng` on 64-bit platforms), seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.random_range(0..10);
            seen[x as usize] = true;
            let y = rng.random_range(2001..=2011);
            assert!((2001..=2011).contains(&y));
            let z = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit");
    }
}
