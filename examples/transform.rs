//! The Section 4.1 back-and-forth elimination workflow.
//!
//! `COUNT(*)` questions are *not* intervention-additive in the presence of
//! a back-and-forth foreign key, so Algorithm 1 refuses them (the checked
//! cube returns an error) and the exact naive engine must run per
//! candidate. The paper's workaround: bound the key's fan-out (every paper
//! has at most c authors), copy the referencing tables c times, and turn
//! every key standard — after which `COUNT(*)` *is* additive and the cube
//! applies.
//!
//! This example walks the whole path on the running example: the refusal,
//! the naive ground truth, the transform, and the cube on the transformed
//! database agreeing with the ground truth.
//!
//! Run with `cargo run --example transform`.

use exq::datagen::paper_examples;
use exq::prelude::*;
use exq_core::explanation::Explanation;
use exq_core::intervention::InterventionEngine;
use exq_core::{additivity, cube_algo, degree, transform};
use exq_relstore::aggregate::{evaluate, AggFunc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = paper_examples::figure3();
    let u = Universal::compute(&db, &db.full_view());
    let venue = db.schema().attr("Publication", "venue")?;

    // COUNT(*) of SIGMOD universal tuples, dir = high.
    let question = UserQuestion::new(
        NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(venue, "SIGMOD"))),
        Direction::High,
    );
    println!(
        "Q(D) = {} (COUNT(*) of SIGMOD universal tuples)",
        question.query.eval(&db)?
    );

    // 1. The additivity check fails — the checked cube refuses.
    let check = additivity::check_aggregate(&db, &u, &AggFunc::CountStar);
    println!("additivity check: {check:?}");
    let dims = vec![db.schema().attr("Author", "name")?];
    let refused =
        cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked());
    println!("checked cube: {}", refused.unwrap_err());

    // 2. Exact ground truth via program P per candidate.
    let engine = InterventionEngine::new(&db);
    println!("\nexact μ_interv per author (naive engine):");
    let name = db.schema().attr("Author", "name")?;
    for n in ["JG", "RR", "CM"] {
        let phi = Explanation::new(vec![Atom::eq(name, n)]);
        let (mu, iv) = degree::mu_interv(&engine, &question, &phi)?;
        println!(
            "  [name = {n}]  μ = {mu:+.1}  ({} tuples deleted)",
            iv.total_deleted()
        );
    }

    // 3. The Section 4.1 transform: every paper here has ≤ 2 authors, so
    //    two copies suffice; all keys become standard.
    let bf = db
        .schema()
        .foreign_keys()
        .iter()
        .position(|fk| fk.kind == exq::relstore::FkKind::BackAndForth)
        .expect("the running example has one back-and-forth key");
    let elim = transform::eliminate_back_and_forth(&db, bf)?;
    println!(
        "\ntransformed schema: {} relations, {} copies, back-and-forth keys: {}",
        elim.db.schema().relation_count(),
        elim.copies,
        elim.db.schema().back_and_forth_count()
    );
    let u2 = Universal::compute(&elim.db, &elim.db.full_view());
    println!(
        "COUNT(*) on the transform is additive: {:?}",
        additivity::check_aggregate(&elim.db, &u2, &AggFunc::CountStar)
    );

    // 4. One universal row per publication now, so COUNT(*) equals the
    //    original COUNT(DISTINCT pubid); author predicates become
    //    disjunctions over the copies.
    let venue2 = elim.db.schema().attr(&elim.target_name, "venue")?;
    let sigmod_pubs = evaluate(
        &elim.db,
        &u2,
        &Predicate::eq(venue2, "SIGMOD"),
        &AggFunc::CountStar,
    )?;
    println!("SIGMOD publications via transformed COUNT(*): {sigmod_pubs}");

    let com_pred = elim.rewrite_eq("dom", "com")?;
    let com_pubs = evaluate(&elim.db, &u2, &com_pred, &AggFunc::CountStar)?;
    println!("publications with a com author (disjunction over copies): {com_pubs}");
    Ok(())
}
