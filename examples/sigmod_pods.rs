//! The Section 5.2 / Figure 15 scenario: why does the UK publish more in
//! PODS than in SIGMOD?
//!
//! Generates the 8-table DBLP ⋈ Geo-DBLP integration, prints the
//! Figure 15a per-country venue percentages, then answers the user
//! question `(Q, low)` with `Q = q1/q2` (#SIGMOD / #PODS papers from the
//! UK, 2001–2011) and prints the Figure 15b-style top explanations by
//! intervention over `A' = {Author.name, AffiliationG.inst, CityG.city}`.
//!
//! Run with `cargo run --release --example sigmod_pods`.

use exq::datagen::geodblp::{self, GeoDblpConfig};
use exq::prelude::*;
use exq_core::{cube_algo, topk};
use exq_relstore::aggregate::{evaluate, AggFunc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = geodblp::generate(&GeoDblpConfig::default());
    println!(
        "generated Geo-DBLP integration: 8 relations, {} total tuples",
        db.total_tuples()
    );
    let u = Universal::compute(&db, &db.full_view());
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid")?;
    let venue = schema.attr("Publication", "venue")?;
    let year = schema.attr("Publication", "year")?;
    let country = schema.attr("CountryG", "country")?;

    // Figure 15a: percentage of SIGMOD vs PODS per country, 2001-2011.
    println!("\nFigure 15a — SIGMOD vs PODS share by country (2001-2011):");
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>9}",
        "country", "SIGMOD", "PODS", "%SIGMOD", "%PODS"
    );
    for c in [
        "USA",
        "Germany",
        "China",
        "Canada",
        "United Kingdom",
        "Netherlands",
        "France",
    ] {
        let n = |v: &str| {
            evaluate(
                &db,
                &u,
                &Predicate::and([
                    Predicate::eq(country, c),
                    Predicate::eq(venue, v),
                    Predicate::between(year, 2001, 2011),
                ]),
                &AggFunc::CountDistinct(pubid),
            )
            .unwrap()
        };
        let (s, p) = (n("SIGMOD"), n("PODS"));
        let total = (s + p).max(1.0);
        println!(
            "{:<16} {:>7} {:>7} {:>8.1}% {:>8.1}%",
            c,
            s,
            p,
            100.0 * s / total,
            100.0 * p / total
        );
    }

    // The user question: Q = q1/q2 with q1 = #SIGMOD papers from the UK,
    // q2 = #PODS papers from the UK; the user finds Q surprisingly LOW.
    let uk = Predicate::eq(country, "United Kingdom");
    let q = |v: &str| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            uk.clone(),
            Predicate::eq(venue, v),
            Predicate::between(year, 2001, 2011),
        ]),
    };
    let question = UserQuestion::new(
        NumericalQuery::ratio(q("SIGMOD"), q("PODS")).with_smoothing(1e-4),
        Direction::Low,
    );
    println!(
        "\nQ(D) = #SIGMOD-UK / #PODS-UK = {:.3}  (user question: why so low?)",
        question.query.eval(&db)?
    );

    // Figure 15b: top explanations by intervention. Both q1 and q2 are
    // eight-table joins; COUNT(DISTINCT pubid) is intervention-additive
    // because each Authored row occurs in exactly one universal row.
    let dims = vec![
        schema.attr("Author", "name")?,
        schema.attr("AffiliationG", "inst")?,
        schema.attr("CityG", "city")?,
    ];
    let m = cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())?;
    println!("explanation table M has {} candidate explanations", m.len());

    println!("\nFigure 15b — top explanations by intervention:");
    for r in topk::top_k(
        &m,
        DegreeKind::Intervention,
        10,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferGeneral,
    ) {
        println!(
            "  {:>2}. {}  (μ_interv = {:.4})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }
    Ok(())
}
