//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 3 instance (three authors, three publications),
//! asks "why are there so many SIGMOD publications?", and prints the
//! explanations ranked by intervention and by aggravation.
//!
//! Run with `cargo run --example quickstart`.

use exq::prelude::*;
use exq_core::{cube_algo, degree, naive, topk};
use exq_relstore::aggregate::AggFunc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 3 instance, with the Eq. (2) foreign keys:
    // Authored.id → Author.id (standard: deleting an author deletes her
    // authorship records) and Authored.pubid ↪ Publication.pubid
    // (back-and-forth: every author is necessary for her paper).
    let db = exq::datagen::paper_examples::figure3();
    println!("schema:\n{}", db.schema());

    // The user question: Q = COUNT(DISTINCT pubid) of SIGMOD papers,
    // which the user finds surprisingly HIGH.
    let venue = db.schema().attr("Publication", "venue")?;
    let pubid = db.schema().attr("Publication", "pubid")?;
    let question = UserQuestion::new(
        NumericalQuery::single(AggregateQuery {
            func: AggFunc::CountDistinct(pubid),
            selection: Predicate::eq(venue, "SIGMOD"),
        }),
        Direction::High,
    );
    println!("Q(D) = {}", question.query.eval(&db)?);

    // One candidate explanation, inspected by hand (Example 2.8): note the
    // asymmetric intervention the causal path produces — the publication
    // from 2001 is deleted, but the author JG is not.
    let phi = Explanation::new(vec![
        Atom::eq(db.schema().attr("Author", "name")?, "JG"),
        Atom::eq(db.schema().attr("Publication", "year")?, 2001),
    ]);
    let engine = InterventionEngine::new(&db);
    let iv = engine.compute(&phi);
    println!("\nφ = {}", phi.display(&db));
    for (rel, delta) in iv.delta.iter().enumerate() {
        let name = &db.schema().relation(rel).name;
        let rows: Vec<usize> = delta.iter().collect();
        println!("  Δ_{name} = {rows:?}");
    }
    println!("  fixpoint reached in {} iterations", iv.iterations);
    let (mu_i, mu_a) = naive::degrees_of(&db, &engine, &question, &phi)?;
    println!("  μ_interv = {mu_i}, μ_aggr = {mu_a}");

    // All explanations over A' = {Author.name, Publication.year} via
    // Algorithm 1 (COUNT(DISTINCT pubid) is intervention-additive here),
    // then minimal top-3.
    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        db.schema().attr("Author", "name")?,
        db.schema().attr("Publication", "year")?,
    ];
    let m = cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())?;
    println!("\nexplanation table M ({} candidates):", m.len());
    print!("{}", m.render(&db, 20));

    println!("top-3 minimal explanations by intervention:");
    for r in topk::top_k(
        &m,
        DegreeKind::Intervention,
        3,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferGeneral,
    ) {
        println!(
            "  {}. {}  (μ = {:.3})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }

    println!("top-3 minimal explanations by aggravation:");
    for r in topk::top_k(
        &m,
        DegreeKind::Aggravation,
        3,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferGeneral,
    ) {
        println!(
            "  {}. {}  (μ = {:.3})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }

    // Aggravation of a single explanation, straight from Definition 2.4.
    let phi = Explanation::new(vec![Atom::eq(db.schema().attr("Author", "name")?, "RR")]);
    println!(
        "\nμ_aggr([Author.name = RR]) = {}",
        degree::mu_aggr(&db, &u, &question, &phi)?
    );
    Ok(())
}
