//! The Figure 1/2 scenario: the SIGMOD "bump".
//!
//! Generates the synthetic DBLP-style bibliography, prints the five-year
//! window series of Figure 1 (industrial vs academic SIGMOD publications),
//! then explains the bump — why did the industrial share fall after
//! 2004 while the academic share kept rising? — with the double-ratio
//! user question of Example 2.2 and prints the Figure 2-style top
//! explanations.
//!
//! Run with `cargo run --release --example dblp_bump`.

use exq::datagen::dblp::{self, DblpConfig};
use exq::prelude::*;
use exq_core::{cube_algo, topk};
use exq_relstore::aggregate::AggFunc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = dblp::generate(&DblpConfig::default());
    println!(
        "generated DBLP-style instance: {} authors, {} authorships, {} publications",
        db.relation_len(0),
        db.relation_len(1),
        db.relation_len(2)
    );
    let u = Universal::compute(&db, &db.full_view());

    // Figure 1: SIGMOD publications in five-year windows, com vs edu.
    println!("\nFigure 1 — five-year windows of SIGMOD publications:");
    println!("{:<12} {:>8} {:>8}", "window", "com", "edu");
    let mut start = 1985;
    while start + 4 <= 2011 {
        let window = (start, start + 4);
        let com = dblp::window_count(&db, &u, "SIGMOD", "com", window);
        let edu = dblp::window_count(&db, &u, "SIGMOD", "edu", window);
        println!(
            "{:<12} {:>8} {:>8}",
            format!("{}-{}", window.0, window.1),
            com,
            edu
        );
        start += 3;
    }

    // The user question of Example 2.2: Q = (q1/q2) × (q4/q3), dir = high,
    // where q1..q4 count distinct SIGMOD publications by (domain, window).
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid")?;
    let venue = schema.attr("Publication", "venue")?;
    let year = schema.attr("Publication", "year")?;
    let dom = schema.attr("Author", "dom")?;
    let q = |d: &str, window: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, window.0, window.1),
        ]),
    };
    let (q1, q2, q3, q4) = (
        q("com", (2000, 2004)),
        q("com", (2007, 2011)),
        q("edu", (2000, 2004)),
        q("edu", (2007, 2011)),
    );
    // Q = (q1/q2) / (q3/q4) = (q1/q2) × (q4/q3).
    let query = NumericalQuery::double_ratio(q1, q2, q3, q4).with_smoothing(1e-4);
    let question = UserQuestion::new(query, Direction::High);
    println!(
        "\nQ(D) = (q1/q2)/(q3/q4) = {:.3}  (user question: why so high?)",
        question.query.eval(&db)?
    );

    // Figure 2: top explanations over A' = {Author.inst, Author.name}.
    // COUNT(DISTINCT pubid) is intervention-additive on this schema
    // (footnote 11), so Algorithm 1 applies.
    let dims = vec![
        schema.attr("Author", "inst")?,
        schema.attr("Author", "name")?,
    ];
    let m = cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())?;
    println!("explanation table M has {} candidate explanations", m.len());

    println!("\nFigure 2 — top explanations by intervention:");
    for r in topk::top_k(
        &m,
        DegreeKind::Intervention,
        9,
        TopKStrategy::MinimalAppend,
        MinimalityPolarity::PreferGeneral,
    ) {
        println!(
            "  {:>2}. {}  (μ_interv = {:.4})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }
    Ok(())
}
