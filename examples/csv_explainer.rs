//! Loading your own data: CSV import, the high-level `Explainer` façade,
//! rich explanations (ranges/disjunctions), and a regression-slope
//! question (the Section 6 extensions).
//!
//! A small web-shop scenario: weekly order counts are *declining* and we
//! want to know why. The data is a CSV of orders; explanations are sought
//! over categorical attributes, and the user question is "why is the
//! slope of the weekly series negative?".
//!
//! Run with `cargo run --example csv_explainer`.

use exq::prelude::*;
use exq_core::explainer::Explainer;
use exq_core::intervention::InterventionEngine;
use exq_core::rich::{self, RichExplanation, RichPart};
use exq_relstore::csv;

const ORDERS_CSV: &str = "\
id,week,region,channel,status
1,1,north,web,ok
2,1,north,web,ok
3,1,south,web,ok
4,1,south,store,ok
5,1,north,store,ok
6,2,north,web,ok
7,2,south,web,ok
8,2,north,store,ok
9,2,south,store,ok
10,3,north,web,ok
11,3,south,store,ok
12,3,north,store,cancelled
13,4,north,web,ok
14,4,south,store,cancelled
15,4,north,store,cancelled
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the schema and load the CSV.
    let schema = SchemaBuilder::new()
        .relation(
            "Orders",
            &[
                ("id", ValueType::Int),
                ("week", ValueType::Int),
                ("region", ValueType::Str),
                ("channel", ValueType::Str),
                ("status", ValueType::Str),
            ],
            &["id"],
        )
        .build()?;
    let mut db = Database::new(schema);
    let loaded = csv::load_relation(&mut db, "Orders", ORDERS_CSV.as_bytes())?;
    db.validate()?;
    println!("loaded {loaded} orders from CSV");

    // 2. The user question: the weekly series of successful orders is
    //    declining — why is its regression slope so low?
    let week = db.schema().attr("Orders", "week")?;
    let status = db.schema().attr("Orders", "status")?;
    let weekly = (1..=4)
        .map(|w| {
            AggregateQuery::count_star(Predicate::and([
                Predicate::eq(week, w),
                Predicate::eq(status, "ok"),
            ]))
        })
        .collect();
    let question = UserQuestion::new(NumericalQuery::regression_slope(weekly), Direction::Low);
    println!(
        "slope of the weekly ok-order series: {:.3}",
        question.query.eval(&db)?
    );

    // 3. Rank explanations over the categorical attributes with the
    //    Explainer façade (it checks additivity and picks Algorithm 1).
    let explainer =
        Explainer::new(&db, question.clone()).attr_names(&["Orders.region", "Orders.channel"])?;
    println!("\ntop explanations by intervention (what, if removed, flattens the decline?):");
    for r in explainer.top(DegreeKind::Intervention, 3)? {
        println!(
            "  {}. {}  (μ = {:.3})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }

    // 4. Drill into the best explanation: exact intervention + all three
    //    degrees.
    let top = explainer.top(DegreeKind::Intervention, 1)?;
    let report = explainer.explain(&top[0].explanation)?;
    println!(
        "\ndrill-down on {}: deletes {} tuples, μ_interv = {:.3}, μ_aggr = {:.3}, μ_hybrid = {:.3}",
        top[0].explanation.display(&db),
        report.intervention.total_deleted(),
        report.mu_interv,
        report.mu_aggr,
        report.mu_hybrid,
    );

    // 5. Rich explanations: which *week range* explains the decline?
    let engine = InterventionEngine::new(&db);
    let candidates = rich::range_candidates(&db, engine.universal(), week, 2);
    let ranked = rich::evaluate_candidates(&engine, &question, candidates)?;
    println!("\nbest week-range explanations (exact, per-candidate evaluation):");
    for r in ranked.iter().take(3) {
        println!(
            "  {}  (μ_interv = {:.3})",
            r.explanation.display(&db),
            r.mu_interv
        );
    }

    // And a disjunction, the "Levy ∨ Halevy" shape:
    let channel = db.schema().attr("Orders", "channel")?;
    let disj = RichExplanation::new(vec![RichPart::OneOf {
        attr: channel,
        values: vec!["store".into(), "web".into()],
    }]);
    let ranked = rich::evaluate_candidates(&engine, &question, vec![disj])?;
    println!(
        "\ndisjunction over both channels (removes everything): μ_interv = {:.3}",
        ranked[0].mu_interv
    );
    Ok(())
}
