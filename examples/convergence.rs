//! The Example 3.7 / Figure 5 convergence demonstration.
//!
//! Program **P** is monotone, so its fixpoint always exists — but how many
//! iterations does it take? This example runs the adversarial chain where
//! two back-and-forth keys alternate down the data, requiring `n − 1`
//! iterations (the Proposition 3.4 bound is essentially tight), and
//! contrasts it with the running example (one back-and-forth key → at
//! most `2s + 2 = 4` iterations, Proposition 3.11) and a standard-keys
//! schema (two iterations, Proposition 3.5).
//!
//! Run with `cargo run --example convergence`.

use exq::datagen::{chain, paper_examples};
use exq::prelude::*;
use exq_core::explanation::Explanation;

fn main() {
    println!("Example 3.7: chain instances where P needs Θ(n) iterations");
    println!("(n − 2 with full semijoin reduction per Rule (ii) application;");
    println!(" the paper's one-hop-per-iteration trace counts n − 1)");
    println!("{:>4} {:>6} {:>11} {:>8}", "p", "n", "iterations", "n-2");
    for p in [1, 2, 4, 8, 16, 32] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        let iv = engine.compute(&phi);
        let n = db.total_tuples();
        println!("{:>4} {:>6} {:>11} {:>8}", p, n, iv.iterations, n - 2);
        assert_eq!(
            iv.iterations,
            n - 2,
            "the chain needs exactly n-2 iterations"
        );
        assert_eq!(
            iv.total_deleted(),
            n,
            "the cascade consumes the whole chain"
        );
    }

    println!("\nRunning example (one back-and-forth key, Prop 3.11 bound 2s+2 = 4):");
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let phi = Explanation::new(vec![
        Atom::eq(db.schema().attr("Author", "name").unwrap(), "JG"),
        Atom::eq(db.schema().attr("Publication", "year").unwrap(), 2001),
    ]);
    let iv = engine.compute(&phi);
    println!(
        "  φ = {} converges in {} iterations (bound 4)",
        phi.display(&db),
        iv.iterations
    );
    assert!(iv.iterations <= 4);

    println!("\nStandard-keys variant (no back-and-forth, Prop 3.5 bound 2):");
    let db = paper_examples::figure3_standard_only();
    let engine = InterventionEngine::new(&db);
    let phi = Explanation::new(vec![
        Atom::eq(db.schema().attr("Author", "name").unwrap(), "JG"),
        Atom::eq(db.schema().attr("Publication", "year").unwrap(), 2001),
    ]);
    let iv = engine.compute(&phi);
    println!(
        "  φ = {} converges in {} iterations (bound 2)",
        phi.display(&db),
        iv.iterations
    );
    assert!(iv.iterations <= 2);
}
