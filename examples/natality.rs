//! The Section 5.1 natality experiments: `Q_Race` and `Q_Marital`.
//!
//! Generates the synthetic natality dataset, prints the Figure 7
//! contingency tables and the Figure 8/9 ratios, then reproduces
//! Figure 10 (top-5 minimal explanations by intervention) and Figure 11
//! (top-3 by aggravation) for both user questions.
//!
//! Run with `cargo run --release --example natality`.

use exq::datagen::natality::{self, NatalityConfig};
use exq::prelude::*;
use exq_core::{cube_algo, topk};
use exq_relstore::aggregate::{evaluate, AggFunc};

fn count(db: &Database, u: &Universal, pairs: &[(&str, &str)]) -> f64 {
    let sel = Predicate::and(
        pairs
            .iter()
            .map(|(a, v)| Predicate::eq(db.schema().attr("Natality", a).unwrap(), *v)),
    );
    evaluate(db, u, &sel, &AggFunc::CountStar).unwrap()
}

fn q_race(db: &Database) -> UserQuestion {
    // Q_Race = q1/q2: good vs poor APGAR among Asian mothers; dir = high.
    let ap = db.schema().attr("Natality", "ap").unwrap();
    let race = db.schema().attr("Natality", "race").unwrap();
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
        Direction::High,
    )
}

fn q_marital(db: &Database) -> UserQuestion {
    // Q_Marital = (q1/q2)/(q3/q4): married vs unmarried good/poor ratios.
    let ap = db.schema().attr("Natality", "ap").unwrap();
    let marital = db.schema().attr("Natality", "marital").unwrap();
    let q = |m: &str, o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(marital, m),
            Predicate::eq(ap, o),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("married", "good"),
            q("married", "poor"),
            q("unmarried", "good"),
            q("unmarried", "poor"),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let db = natality::generate(&NatalityConfig { rows, seed: 7 });
    println!("generated natality dataset: {} rows", db.total_tuples());
    let u = Universal::compute(&db, &db.full_view());

    // Figure 7: contingency tables.
    println!("\nFigure 7 — AP × Race:");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9}",
        "AP", "White", "Black", "AmInd", "Asian"
    );
    for ap in ["poor", "good"] {
        let row: Vec<f64> = ["White", "Black", "AmInd", "Asian"]
            .iter()
            .map(|r| count(&db, &u, &[("ap", ap), ("race", r)]))
            .collect();
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>9}",
            ap, row[0], row[1], row[2], row[3]
        );
    }
    println!("\nFigure 7 — AP × Marital status:");
    println!("{:<6} {:>9} {:>9}", "AP", "married", "unmarr.");
    for ap in ["poor", "good"] {
        let m = count(&db, &u, &[("ap", ap), ("marital", "married")]);
        let um = count(&db, &u, &[("ap", ap), ("marital", "unmarried")]);
        println!("{:<6} {:>9} {:>9}", ap, m, um);
    }

    // Figures 8/9: the observed ratios.
    println!("\nFigure 8 — good/poor ratio by race:");
    for r in ["White", "Black", "AmInd", "Asian"] {
        let ratio = count(&db, &u, &[("ap", "good"), ("race", r)])
            / count(&db, &u, &[("ap", "poor"), ("race", r)]).max(1.0);
        println!("  {r:<6} {ratio:.1}");
    }
    let qr = q_race(&db);
    let qm = q_marital(&db);
    println!("\nQ_Race(D)    = {:.2} (dir = high)", qr.query.eval(&db)?);
    println!("Q_Marital(D) = {:.2} (dir = high)", qm.query.eval(&db)?);

    // Explanation attributes (Section 5.1.1): age, tobacco, prenatal,
    // education, plus marital for Q_Race / race for Q_Marital.
    let attr = |n: &str| db.schema().attr("Natality", n).unwrap();
    let dims_race = vec![
        attr("age"),
        attr("tobacco"),
        attr("prenatal"),
        attr("edu"),
        attr("marital"),
    ];
    let dims_marital = vec![
        attr("age"),
        attr("tobacco"),
        attr("prenatal"),
        attr("edu"),
        attr("race"),
    ];

    // The paper prunes candidates with support < 1000 on 4M rows; scale
    // the threshold to the generated size.
    let support = 1000.0 * rows as f64 / 4_000_000.0;

    for (name, question, dims) in [
        ("Q_Race", &qr, &dims_race),
        ("Q_Marital", &qm, &dims_marital),
    ] {
        let mut m =
            cube_algo::explanation_table(&db, &u, question, dims, CubeAlgoConfig::checked())?;
        let before = m.len();
        m.retain_min_support(support);
        println!(
            "\n=== {name}: M has {} candidate explanations ({} before support pruning) ===",
            m.len(),
            before
        );

        println!("Figure 10 — top-5 minimal explanations by intervention:");
        for r in topk::top_k(
            &m,
            DegreeKind::Intervention,
            5,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        ) {
            println!(
                "  {}. {}  (μ_interv = {:.3})",
                r.rank,
                r.explanation.display(&db),
                r.degree
            );
        }

        println!("Figure 11 — top-3 minimal explanations by aggravation:");
        for r in topk::top_k(
            &m,
            DegreeKind::Aggravation,
            3,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        ) {
            println!(
                "  {}. {}  (μ_aggr = {:.3})",
                r.rank,
                r.explanation.display(&db),
                r.degree
            );
        }
    }
    Ok(())
}
