//! Integration tests pinning the paper's worked examples end to end:
//! Example 2.8 (asymmetric intervention), Example 2.9 (semijoin-reduction
//! requirement forces uniqueness), Example 2.10 (non-monotonicity in the
//! input), Example 4.1 (the cube), and Corollary 3.6.

use exq::datagen::paper_examples;
use exq::prelude::*;
use exq_core::explanation::Explanation;
use exq_core::intervention::{is_valid_intervention, InterventionEngine};
use exq_relstore::aggregate::AggFunc;
use exq_relstore::cube::{self, CubeStrategy};
use exq_relstore::semijoin;

fn phi_jg_2001(db: &Database) -> Explanation {
    Explanation::new(vec![
        Atom::eq(db.schema().attr("Author", "name").unwrap(), "JG"),
        Atom::eq(db.schema().attr("Publication", "year").unwrap(), 2001),
    ])
}

#[test]
fn example_28_back_and_forth_vs_standard() {
    // With the Eq. (2) keys: Δ_Author = ∅, Δ_Authored = {s1, s2},
    // Δ_Publication = {t1}.
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let iv = engine.compute(&phi_jg_2001(&db));
    let rel = |n: &str| db.schema().relation_index(n).unwrap();
    assert!(iv.delta[rel("Author")].is_empty());
    assert_eq!(
        iv.delta[rel("Authored")].iter().collect::<Vec<_>>(),
        vec![0, 1]
    );
    assert_eq!(
        iv.delta[rel("Publication")].iter().collect::<Vec<_>>(),
        vec![0]
    );

    // With standard keys only: Δ_Authored = {s1}, everything else empty.
    let db = paper_examples::figure3_standard_only();
    let engine = InterventionEngine::new(&db);
    let iv = engine.compute(&phi_jg_2001(&db));
    assert_eq!(iv.total_deleted(), 1);
    assert_eq!(
        iv.delta[rel("Authored")].iter().collect::<Vec<_>>(),
        vec![0]
    );
}

#[test]
fn example_29_unique_minimal_intervention_is_whole_database() {
    // φ = [R1.x = a ∧ R2.y = b ∧ R3.z = c]. Without the semijoin-reduction
    // requirement there would be two minimal interventions ({S1} or {S2});
    // with it, the minimal intervention is all of D.
    let db = paper_examples::example_29();
    let schema = db.schema();
    let phi = Explanation::new(vec![
        Atom::eq(schema.attr("R1", "x").unwrap(), "a"),
        Atom::eq(schema.attr("R2", "y").unwrap(), "b"),
        Atom::eq(schema.attr("R3", "z").unwrap(), "c"),
    ]);
    let engine = InterventionEngine::new(&db);
    let iv = engine.compute(&phi);
    assert_eq!(iv.total_deleted(), db.total_tuples(), "Δ^φ = D");
    assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));

    // The two would-be minimal candidates are NOT valid interventions:
    // their residuals are not semijoin-reduced.
    for rel in ["S1", "S2"] {
        let mut delta = db.empty_delta();
        delta[schema.relation_index(rel).unwrap()].insert(0);
        assert!(
            !is_valid_intervention(&db, phi.conjunction(), &delta),
            "deleting only {rel} must be invalid"
        );
        let residual = db.view_minus(&delta);
        assert!(!semijoin::is_reduced(&db, &residual));
    }
}

#[test]
fn example_210_intervention_is_non_monotone_in_the_input() {
    // Adding tuples to D makes Δ^φ smaller.
    let small = paper_examples::example_29();
    let big = paper_examples::example_210();
    let phi = |db: &Database| {
        Explanation::new(vec![
            Atom::eq(db.schema().attr("R1", "x").unwrap(), "a"),
            Atom::eq(db.schema().attr("R2", "y").unwrap(), "b"),
            Atom::eq(db.schema().attr("R3", "z").unwrap(), "c"),
        ])
    };

    let iv_small = InterventionEngine::new(&small).compute(&phi(&small));
    assert_eq!(iv_small.total_deleted(), 5, "everything goes");

    let iv_big = InterventionEngine::new(&big).compute(&phi(&big));
    assert_eq!(iv_big.total_deleted(), 3, "only S1(a,b), R2(b), S2(b,c) go");
    let schema = big.schema();
    assert!(iv_big.delta[schema.relation_index("S1").unwrap()].contains(0));
    assert!(iv_big.delta[schema.relation_index("R2").unwrap()].contains(0));
    assert!(iv_big.delta[schema.relation_index("S2").unwrap()].contains(0));
    // R1(a) and R3(c) survive thanks to the alternative path through b2.
    assert!(iv_big.delta[schema.relation_index("R1").unwrap()].is_empty());
    assert!(iv_big.delta[schema.relation_index("R3").unwrap()].is_empty());
    assert!(is_valid_intervention(
        &big,
        phi(&big).conjunction(),
        &iv_big.delta
    ));
}

#[test]
fn example_41_cube_rows() {
    // The 11-row cube over (name, year) with COUNT(*).
    let db = paper_examples::figure3();
    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        db.schema().attr("Author", "name").unwrap(),
        db.schema().attr("Publication", "year").unwrap(),
    ];
    for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
        let c = cube::compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            strategy,
        )
        .unwrap();
        assert_eq!(c.len(), 11);
        assert_eq!(c.get(&[Value::str("RR"), Value::Int(2001)]), Some(2.0));
        assert_eq!(c.get(&[Value::Null, Value::Int(2001)]), Some(4.0));
        assert_eq!(c.grand_total(), Some(6.0));
    }
}

#[test]
fn corollary_36_residual_universal_equals_negated_selection() {
    // With no back-and-forth keys:
    // (R1−Δ1) ⋈ … ⋈ (Rk−Δk) = σ_{¬φ}(R1 ⋈ … ⋈ Rk).
    let db = paper_examples::figure3_standard_only();
    let engine = InterventionEngine::new(&db);
    let u = Universal::compute(&db, &db.full_view());
    for phi in [
        phi_jg_2001(&db),
        Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "dom").unwrap(),
            "com",
        )]),
        Explanation::new(vec![Atom::eq(
            db.schema().attr("Publication", "venue").unwrap(),
            "SIGMOD",
        )]),
    ] {
        let iv = engine.compute(&phi);
        let residual_u = Universal::compute(&db, &db.view_minus(&iv.delta));
        let mut lhs: Vec<Vec<u32>> = residual_u.iter().map(|t| t.to_vec()).collect();
        let mut rhs: Vec<Vec<u32>> = u
            .iter()
            .filter(|t| !phi.eval(&db, t))
            .map(|t| t.to_vec())
            .collect();
        lhs.sort();
        rhs.sort();
        assert_eq!(lhs, rhs, "Corollary 3.6 fails for {}", phi.display(&db));
    }
}

#[test]
fn figure6_schema_causal_graph() {
    let db = paper_examples::figure3();
    let g = db.schema().causal_graph();
    assert!(g.is_simple());
    assert_eq!(g.dotted.len(), 1);
    assert_eq!(g.solid.len(), 2);
    assert_eq!(g.max_back_and_forth_per_relation(), 1);
}

#[test]
fn example_22_numerical_query_on_figure3() {
    // Q = (q1/q2) × (q4/q3) from Example 2.2, evaluated on the tiny
    // instance (with smoothing — several windows are empty).
    let db = paper_examples::figure3();
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    let query = NumericalQuery::double_ratio(
        q("com", (2000, 2004)),
        q("com", (2007, 2011)),
        q("edu", (2000, 2004)),
        q("edu", (2007, 2011)),
    )
    .with_smoothing(1e-4);
    let v = query.eval(&db).unwrap();
    // q1 = 2 (P1, P3 have com authors), q2 = 0, q3 = 1 (P1 has JG), q4 = 0:
    // Q = (2+ε)/(ε) / ((1+ε)/(ε)) = (2+ε)/(1+ε) ≈ 2.
    assert!((v - 2.0).abs() < 1e-3, "Q = {v}");
}
