//! Property-based tests (proptest) for the engine's core invariants:
//!
//! * program **P** always produces a *valid* intervention (Definition 2.6)
//!   and a *minimal* one (Theorem 3.3): it is contained in the closure of
//!   every seed superset;
//! * convergence bounds (Propositions 3.4, 3.5, 3.11) hold on random
//!   instances;
//! * semijoin reduction equals the universal-relation projection;
//! * the two cube implementations agree;
//! * Algorithm 1 equals the naive baseline whenever the additivity
//!   conditions hold.

use exq::prelude::*;
use exq_core::explanation::Explanation;
use exq_core::intervention::{is_valid_intervention, InterventionEngine};
use exq_core::{cube_algo, naive, topk};
use exq_relstore::aggregate::AggFunc;
use exq_relstore::cube::{self, CubeStrategy};
use exq_relstore::{semijoin, ValueType as T};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A random bipartite DBLP-like instance: authors × publications with the
/// Eq. (2) foreign keys (one standard, one back-and-forth). Semijoin-
/// reduced by construction (only referenced authors/pubs are emitted).
fn dblp_like(edges: Vec<(u8, u8)>, back_and_forth: bool) -> Option<Database> {
    if edges.is_empty() {
        return None;
    }
    let mut b = SchemaBuilder::new()
        .relation("Author", &[("id", T::Int), ("grp", T::Str)], &["id"])
        .relation(
            "Authored",
            &[("id", T::Int), ("pubid", T::Int)],
            &["id", "pubid"],
        )
        .relation(
            "Publication",
            &[("pubid", T::Int), ("tag", T::Str)],
            &["pubid"],
        )
        .standard_fk("Authored", &["id"], "Author");
    b = if back_and_forth {
        b.back_and_forth_fk("Authored", &["pubid"], "Publication")
    } else {
        b.standard_fk("Authored", &["pubid"], "Publication")
    };
    let mut db = Database::new(b.build().unwrap());

    let mut edges: Vec<(u8, u8)> = edges.into_iter().map(|(a, p)| (a % 6, p % 6)).collect();
    edges.sort_unstable();
    edges.dedup();
    let mut authors: Vec<u8> = edges.iter().map(|e| e.0).collect();
    authors.sort_unstable();
    authors.dedup();
    let mut pubs: Vec<u8> = edges.iter().map(|e| e.1).collect();
    pubs.sort_unstable();
    pubs.dedup();
    for &a in &authors {
        let grp = if a % 2 == 0 { "even" } else { "odd" };
        db.insert("Author", vec![(a as i64).into(), grp.into()])
            .unwrap();
    }
    for &(a, p) in &edges {
        db.insert("Authored", vec![(a as i64).into(), (p as i64).into()])
            .unwrap();
    }
    for &p in &pubs {
        let tag = if p < 3 { "lo" } else { "hi" };
        db.insert("Publication", vec![(p as i64).into(), tag.into()])
            .unwrap();
    }
    db.validate().unwrap();
    Some(db)
}

/// A random single-table instance with two low-cardinality attributes and
/// a binary outcome.
fn flat_db(rows: Vec<(u8, u8, bool)>) -> Option<Database> {
    if rows.is_empty() {
        return None;
    }
    let schema = SchemaBuilder::new()
        .relation(
            "R",
            &[("id", T::Int), ("g", T::Int), ("h", T::Int), ("ok", T::Str)],
            &["id"],
        )
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    for (i, (g, h, ok)) in rows.iter().enumerate() {
        db.insert(
            "R",
            vec![
                (i as i64).into(),
                ((g % 4) as i64).into(),
                ((h % 3) as i64).into(),
                if *ok { "y" } else { "n" }.into(),
            ],
        )
        .unwrap();
    }
    Some(db)
}

/// A random single-atom explanation over the DBLP-like schema.
fn dblp_phi(db: &Database, selector: u8, value: u8) -> Explanation {
    let schema = db.schema();
    let atom = match selector % 4 {
        0 => Atom::eq(schema.attr("Author", "id").unwrap(), (value % 6) as i64),
        1 => Atom::eq(
            schema.attr("Author", "grp").unwrap(),
            if value.is_multiple_of(2) {
                "even"
            } else {
                "odd"
            },
        ),
        2 => Atom::eq(
            schema.attr("Publication", "pubid").unwrap(),
            (value % 6) as i64,
        ),
        _ => Atom::eq(
            schema.attr("Publication", "tag").unwrap(),
            if value.is_multiple_of(2) { "lo" } else { "hi" },
        ),
    };
    Explanation::new(vec![atom])
}

// ---------------------------------------------------------------------
// Intervention invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Program P's output is a valid intervention (Definition 2.6).
    #[test]
    fn intervention_is_valid(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..12),
        bf in any::<bool>(),
        selector in any::<u8>(),
        value in any::<u8>(),
    ) {
        let Some(db) = dblp_like(edges, bf) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = dblp_phi(&db, selector, value);
        let iv = engine.compute(&phi);
        prop_assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));
        // Prop 3.4 global bound.
        prop_assert!(iv.iterations <= db.total_tuples());
        // Prop 3.5 / 3.11 bounds.
        if bf {
            prop_assert!(iv.iterations <= 2 * db.schema().back_and_forth_count() + 2);
        } else {
            prop_assert!(iv.iterations <= 2);
        }
        // Seeds are contained in the fixpoint (monotonicity).
        for (s, d) in iv.seeds.iter().zip(&iv.delta) {
            prop_assert!(s.is_subset(d));
        }
    }

    /// Minimality (Theorem 3.3): Δ^φ is contained in the closure of any
    /// seed superset.
    #[test]
    fn intervention_is_minimal(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..12),
        bf in any::<bool>(),
        selector in any::<u8>(),
        value in any::<u8>(),
        extra in proptest::collection::vec((0usize..3, 0usize..8), 0..4),
    ) {
        let Some(db) = dblp_like(edges, bf) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = dblp_phi(&db, selector, value);
        let iv = engine.compute(&phi);

        let mut seeds = iv.seeds.clone();
        for (rel, row) in extra {
            if row < db.relation_len(rel) {
                seeds[rel].insert(row);
            }
        }
        let (closure, _) = engine.close_from_seeds(&seeds);
        // The closure of a seed superset is valid, hence must contain the
        // minimal intervention.
        prop_assert!(is_valid_intervention(&db, phi.conjunction(), &closure));
        for (small, big) in iv.delta.iter().zip(&closure) {
            prop_assert!(small.is_subset(big));
        }
    }

    /// The residual database never contains a φ-satisfying universal tuple,
    /// and re-running P on the residual from scratch finds nothing to do.
    #[test]
    fn residual_is_a_fixed_point(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..12),
        selector in any::<u8>(),
        value in any::<u8>(),
    ) {
        let Some(db) = dblp_like(edges, true) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = dblp_phi(&db, selector, value);
        let iv = engine.compute(&phi);
        let (closed_again, extra_iterations) = engine.close_from_seeds(&iv.delta);
        prop_assert_eq!(&closed_again, &iv.delta);
        prop_assert!(extra_iterations <= 1);
    }
}

// ---------------------------------------------------------------------
// Semijoin reduction and universal relation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Full reduction equals the projection of the universal relation —
    /// the defining property (R_i = Π_{A_i}(U(D))).
    #[test]
    fn reduction_equals_universal_projection(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..12),
        bf in any::<bool>(),
        drop in proptest::collection::vec((0usize..3, 0usize..10), 0..5),
    ) {
        let Some(db) = dblp_like(edges, bf) else { return Ok(()) };
        let mut view = db.full_view();
        for (rel, row) in drop {
            if row < db.relation_len(rel) {
                view.live[rel].remove(row);
            }
        }
        let reduced = semijoin::reduce(&db, &view);
        let u = Universal::compute(&db, &view);
        for rel in 0..db.schema().relation_count() {
            prop_assert_eq!(reduced.live(rel), &u.projected_rows(&db, rel));
        }
        // Idempotence.
        prop_assert_eq!(semijoin::reduce(&db, &reduced), reduced.clone());
    }
}

// ---------------------------------------------------------------------
// Cube implementations and Algorithm 1
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subset enumeration and lattice roll-up build identical cubes, for
    /// every aggregate.
    #[test]
    fn cube_strategies_agree(rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..40)) {
        let Some(db) = flat_db(rows) else { return Ok(()) };
        let u = Universal::compute(&db, &db.full_view());
        let schema = db.schema();
        let dims = vec![schema.attr("R", "g").unwrap(), schema.attr("R", "h").unwrap()];
        let id = schema.attr("R", "id").unwrap();
        for agg in [
            AggFunc::CountStar,
            AggFunc::CountDistinct(id),
            AggFunc::Sum(id),
            AggFunc::Avg(id),
            AggFunc::Min(id),
            AggFunc::Max(id),
        ] {
            let a = cube::compute(&db, &u, &Predicate::True, &dims, &agg, CubeStrategy::SubsetEnumeration).unwrap();
            let b = cube::compute(&db, &u, &Predicate::True, &dims, &agg, CubeStrategy::LatticeRollup).unwrap();
            prop_assert_eq!(a.cells, b.cells, "strategy mismatch for {:?}", agg);
        }
    }

    /// Algorithm 1 equals the naive baseline on flat COUNT(*) queries
    /// (additive by construction): same candidates, same degrees.
    #[test]
    fn cube_algo_equals_naive(rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..40)) {
        let Some(db) = flat_db(rows) else { return Ok(()) };
        let schema = db.schema();
        let ok = schema.attr("R", "ok").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            ).with_smoothing(1e-4),
            Direction::High,
        );
        let dims = vec![schema.attr("R", "g").unwrap(), schema.attr("R", "h").unwrap()];
        let engine = InterventionEngine::new(&db);
        let naive_t = naive::explanation_table_naive(&db, &engine, &question, &dims).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let cube_t = cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap();
        prop_assert_eq!(naive_t.totals.clone(), cube_t.totals.clone());
        prop_assert_eq!(naive_t.len(), cube_t.len());
        for (n, c) in naive_t.rows.iter().zip(&cube_t.rows) {
            prop_assert_eq!(&n.coord, &c.coord);
            prop_assert_eq!(&n.values, &c.values);
            prop_assert!((n.mu_interv - c.mu_interv).abs() < 1e-9,
                "mu_interv mismatch at {:?}: {} vs {}", n.coord, n.mu_interv, c.mu_interv);
            prop_assert!((n.mu_aggr - c.mu_aggr).abs() < 1e-9);
        }
    }

    /// Top-K invariants: outputs are sorted by degree, contain no
    /// dominated explanation (for the minimal strategies), and the two
    /// minimal strategies return identical sets when degrees are distinct.
    #[test]
    fn topk_invariants(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 4..40),
        k in 1usize..8,
    ) {
        let Some(db) = flat_db(rows) else { return Ok(()) };
        let schema = db.schema();
        let ok = schema.attr("R", "ok").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            ).with_smoothing(1e-4),
            Direction::High,
        );
        let dims = vec![schema.attr("R", "g").unwrap(), schema.attr("R", "h").unwrap()];
        let u = Universal::compute(&db, &db.full_view());
        let m = cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap();

        for strategy in [topk::TopKStrategy::NoMinimal, topk::TopKStrategy::MinimalSelfJoin, topk::TopKStrategy::MinimalAppend] {
            let out = topk::top_k(&m, DegreeKind::Intervention, k, strategy, MinimalityPolarity::PreferGeneral);
            prop_assert!(out.len() <= k);
            for w in out.windows(2) {
                prop_assert!(w[0].degree >= w[1].degree, "unsorted output");
            }
            for r in &out {
                prop_assert!(!r.explanation.is_trivial());
            }
        }

        // Self-join output is dominance-free.
        let sj = topk::top_k(&m, DegreeKind::Intervention, k, topk::TopKStrategy::MinimalSelfJoin, MinimalityPolarity::PreferGeneral);
        for r in &sj {
            let row = &m.rows[r.row];
            for other in &m.rows {
                if other.arity() < row.arity() && other.coord_generalizes(row) {
                    prop_assert!(other.mu_interv < row.mu_interv,
                        "dominated row {:?} in output", row.coord);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Degrees
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// μ_interv of the empty-match explanation equals ±Q(D); flipping the
    /// direction flips both degrees.
    #[test]
    fn degree_sign_laws(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..10),
        selector in any::<u8>(),
        value in any::<u8>(),
    ) {
        let Some(db) = dblp_like(edges, true) else { return Ok(()) };
        let schema = db.schema();
        let tag = schema.attr("Publication", "tag").unwrap();
        let pubid = schema.attr("Publication", "pubid").unwrap();
        let mk = |dir| UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::eq(tag, "lo"),
            }),
            dir,
        );
        let engine = InterventionEngine::new(&db);
        let phi = dblp_phi(&db, selector, value);
        let (hi_i, _) = exq_core::degree::mu_interv(&engine, &mk(Direction::High), &phi).unwrap();
        let (lo_i, _) = exq_core::degree::mu_interv(&engine, &mk(Direction::Low), &phi).unwrap();
        prop_assert_eq!(hi_i, -lo_i);
        let u = engine.universal();
        let hi_a = exq_core::degree::mu_aggr(&db, u, &mk(Direction::High), &phi).unwrap();
        let lo_a = exq_core::degree::mu_aggr(&db, u, &mk(Direction::Low), &phi).unwrap();
        prop_assert_eq!(hi_a, -lo_a);
    }
}
