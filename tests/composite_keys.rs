//! Multi-column foreign keys through the whole stack.
//!
//! Every fixture elsewhere uses single-column keys; this suite pins the
//! composite-key paths: schema validation, universal relation, semijoin
//! reduction, program **P** (including backward cascade through a
//! composite back-and-forth key), cubes, and the cube-vs-naive agreement.
//!
//! Scenario: orders with line items. `Line` has the composite primary key
//! `(order_id, line_no)`; `Shipment` references it with a two-column
//! foreign key. The back-and-forth variant says a line item is necessary
//! for its shipment record *and vice versa*.

use exq::prelude::*;
use exq_core::explainer::{EngineChoice, Explainer};
use exq_core::explanation::Explanation;
use exq_core::intervention::{is_valid_intervention, InterventionEngine};
use exq_relstore::aggregate::AggFunc;
use exq_relstore::semijoin;

fn orders_db(back_and_forth: bool) -> Database {
    let mut b = SchemaBuilder::new()
        .relation(
            "Orders",
            &[("oid", ValueType::Int), ("region", ValueType::Str)],
            &["oid"],
        )
        .relation(
            "Line",
            &[
                ("order_id", ValueType::Int),
                ("line_no", ValueType::Int),
                ("product", ValueType::Str),
            ],
            &["order_id", "line_no"],
        )
        .relation(
            "Shipment",
            &[
                ("sid", ValueType::Int),
                ("order_id", ValueType::Int),
                ("line_no", ValueType::Int),
                ("carrier", ValueType::Str),
            ],
            &["sid"],
        )
        .standard_fk("Line", &["order_id"], "Orders");
    b = if back_and_forth {
        b.back_and_forth_fk("Shipment", &["order_id", "line_no"], "Line")
    } else {
        b.standard_fk("Shipment", &["order_id", "line_no"], "Line")
    };
    let mut db = Database::new(b.build().unwrap());
    for (oid, region) in [(1, "north"), (2, "south")] {
        db.insert("Orders", vec![oid.into(), region.into()])
            .unwrap();
    }
    for (oid, line, product) in [
        (1, 1, "widget"),
        (1, 2, "gadget"),
        (2, 1, "widget"),
        (2, 2, "sprocket"),
    ] {
        db.insert("Line", vec![oid.into(), line.into(), product.into()])
            .unwrap();
    }
    for (sid, oid, line, carrier) in [
        (10, 1, 1, "ups"),
        (11, 1, 2, "fedex"),
        (12, 2, 1, "ups"),
        (13, 2, 2, "ups"),
    ] {
        db.insert(
            "Shipment",
            vec![sid.into(), oid.into(), line.into(), carrier.into()],
        )
        .unwrap();
    }
    db.validate().unwrap();
    db
}

#[test]
fn composite_instance_is_valid_and_reduced() {
    for bf in [false, true] {
        let db = orders_db(bf);
        assert!(semijoin::is_reduced(&db, &db.full_view()));
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 4, "one universal tuple per shipment");
    }
}

#[test]
fn composite_pk_duplicates_detected() {
    let mut db = orders_db(false);
    // Same (order_id, line_no) pair twice.
    db.insert("Line", vec![1.into(), 1.into(), "dup".into()])
        .unwrap();
    assert!(db.validate().is_err());
}

#[test]
fn composite_fk_dangling_detected() {
    let mut db = orders_db(false);
    db.insert(
        "Shipment",
        vec![99.into(), 1.into(), 7.into(), "dhl".into()],
    )
    .unwrap();
    assert!(db.validate().is_err(), "line (1,7) does not exist");
}

#[test]
fn intervention_cascades_through_composite_back_and_forth_key() {
    let db = orders_db(true);
    let engine = InterventionEngine::new(&db);
    // Deleting the ups shipments backward-cascades to their line items.
    let carrier = db.schema().attr("Shipment", "carrier").unwrap();
    let phi = Explanation::new(vec![Atom::eq(carrier, "ups")]);
    let iv = engine.compute(&phi);
    assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));

    let line = db.schema().relation_index("Line").unwrap();
    let shipment = db.schema().relation_index("Shipment").unwrap();
    let orders = db.schema().relation_index("Orders").unwrap();
    assert_eq!(iv.delta[shipment].count(), 3, "the three ups shipments");
    assert_eq!(
        iv.delta[line].count(),
        3,
        "their line items via (order_id, line_no)"
    );
    // Order 2 loses both lines → dangles; order 1 keeps line 2.
    assert_eq!(iv.delta[orders].iter().collect::<Vec<_>>(), vec![1]);
}

#[test]
fn standard_composite_key_does_not_cascade_backward() {
    let db = orders_db(false);
    let engine = InterventionEngine::new(&db);
    let carrier = db.schema().attr("Shipment", "carrier").unwrap();
    let phi = Explanation::new(vec![Atom::eq(carrier, "ups")]);
    let iv = engine.compute(&phi);
    let line = db.schema().relation_index("Line").unwrap();
    // Wait — with a *standard* key, deleting a shipment leaves its line
    // dangling only if it was the line's sole shipment. Every line has
    // exactly one shipment here, so semijoin reduction still removes the
    // lines. The distinction shows on orders: identical here, but the
    // iteration bound is the standard two-step one.
    assert!(
        iv.iterations <= 2,
        "Prop 3.5 applies without back-and-forth keys"
    );
    assert_eq!(iv.delta[line].count(), 3);
}

#[test]
fn unrolled_matches_fixpoint_with_composite_keys() {
    let db = orders_db(true);
    let engine = InterventionEngine::new(&db);
    let product = db.schema().attr("Line", "product").unwrap();
    for p in ["widget", "gadget", "sprocket"] {
        let phi = Explanation::new(vec![Atom::eq(product, p)]);
        let fixpoint = engine.compute(&phi);
        let unrolled = engine
            .compute_unrolled(&phi)
            .expect("one bf key per relation");
        assert_eq!(fixpoint.delta, unrolled.delta, "product = {p}");
    }
}

#[test]
fn cube_and_naive_agree_on_composite_schema() {
    // COUNT(DISTINCT Line-side pk) is not checkable (composite pk), but
    // COUNT(DISTINCT Shipment.sid)? The additivity conditions don't
    // apply, so the Explainer must fall back to the exact naive engine —
    // and the facade output is the ground truth by construction.
    let db = orders_db(true);
    let sid = db.schema().attr("Shipment", "sid").unwrap();
    let region = db.schema().attr("Orders", "region").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery {
                func: AggFunc::CountDistinct(sid),
                selection: Predicate::eq(region, "north"),
            },
            AggregateQuery {
                func: AggFunc::CountDistinct(sid),
                selection: Predicate::eq(region, "south"),
            },
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let explainer = Explainer::new(&db, question)
        .attr_names(&["Shipment.carrier", "Line.product"])
        .unwrap();
    let (table, choice) = explainer.table().unwrap();
    assert_eq!(
        choice,
        EngineChoice::Naive,
        "composite pk fails the additivity conditions"
    );
    assert!(!table.is_empty());
    let top = explainer.top(DegreeKind::Intervention, 3).unwrap();
    assert!(!top.is_empty());
}

#[test]
fn cube_over_composite_key_attributes() {
    let db = orders_db(true);
    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        db.schema().attr("Orders", "region").unwrap(),
        db.schema().attr("Shipment", "carrier").unwrap(),
    ];
    for strategy in [
        exq_relstore::cube::CubeStrategy::SubsetEnumeration,
        exq_relstore::cube::CubeStrategy::LatticeRollup,
    ] {
        let cube = exq_relstore::cube::compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            strategy,
        )
        .unwrap();
        assert_eq!(
            cube.get(&[Value::str("north"), Value::str("ups")]),
            Some(1.0)
        );
        assert_eq!(cube.get(&[Value::Null, Value::str("ups")]), Some(3.0));
        assert_eq!(cube.grand_total(), Some(4.0));
    }
}
