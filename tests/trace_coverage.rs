//! ISSUE 5 acceptance: run a full DBLP explain (semijoin reduction,
//! universal join, Algorithm 1) under an armed trace ring and check the
//! Chrome trace export — parsed with the server's own JSON reader —
//! is stack-balanced and covers every pipeline phase.

use exq::core::prelude::*;
use exq::core::prepared::PreparedDb;
use exq::datagen::dblp;
use exq::obs::MetricsSink;
use exq::relstore::aggregate::AggFunc;
use exq::relstore::{Database, ExecConfig, Predicate};
use std::sync::Arc;

/// The Figure 2 "SIGMOD com/edu bump" question.
fn bump_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

#[test]
fn dblp_explain_trace_is_balanced_and_covers_all_phases() {
    let sink = MetricsSink::recording();
    sink.enable_tracing(65_536);
    sink.set_trace(1);
    let exec = ExecConfig::sequential().with_metrics(sink.clone());

    let db = Arc::new(dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 6,
        authors_per_institution: 4,
        ..dblp::DblpConfig::default()
    }));
    let question = bump_question(&db);
    let prepared = PreparedDb::build_with(Arc::clone(&db), &exec);
    let explainer = prepared
        .explainer(question)
        .exec(exec.clone())
        .attr_names(&["Author.inst"])
        .unwrap();
    explainer.q_d().unwrap();
    let (_, choice) = explainer.table().unwrap();
    assert_eq!(choice, EngineChoice::Cube);
    let top = explainer.top(DegreeKind::Intervention, 5).unwrap();
    assert!(!top.is_empty());

    let text = sink.trace_chrome_json().expect("tracing is armed");
    let doc = exq::serve::json::parse(text.as_bytes()).expect("export must parse");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // Balanced: every E closes the innermost open B on its thread.
    let mut stacks: std::collections::HashMap<usize, Vec<(String, usize)>> =
        std::collections::HashMap::new();
    let mut begin_names = std::collections::BTreeSet::new();
    for event in events {
        let name = event
            .get("name")
            .and_then(|v| v.as_str())
            .expect("event name")
            .to_owned();
        let tid = event.get("tid").and_then(|v| v.as_usize()).unwrap();
        let span_id = event
            .get("args")
            .and_then(|a| a.get("span_id"))
            .and_then(|v| v.as_usize())
            .unwrap();
        match event.get("ph").and_then(|v| v.as_str()).unwrap() {
            "B" => {
                begin_names.insert(name.clone());
                stacks.entry(tid).or_default().push((name, span_id));
            }
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E without open B");
                assert_eq!(top, (name, span_id));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for stack in stacks.values() {
        assert!(stack.is_empty(), "unclosed B events");
    }

    // Coverage: the trace spans the whole pipeline — preparation
    // (semijoin + universal join), the cube, and Algorithm 1.
    for phase in [
        "prepare",
        "semijoin",
        "join",
        "cube",
        "cube_algo",
        "explain.table",
    ] {
        assert!(
            begin_names.contains(phase),
            "phase {phase} missing from trace; saw {begin_names:?}"
        );
    }
}
