//! Qualitative-ranking regression tests: the Figure 2 and Figure 10
//! *shapes* that EXPERIMENTS.md reports must keep holding for the pinned
//! seeds. (These are the headline qualitative claims of the paper; a
//! change in generator or ranking semantics that silently broke them
//! would invalidate the reproduction.)

use exq::datagen::{dblp, natality};
use exq::prelude::*;
use exq_core::{cube_algo, topk};
use exq_relstore::aggregate::AggFunc;

#[test]
fn figure2_bump_explanations_have_the_paper_shape() {
    let db = dblp::generate(&dblp::DblpConfig::default());
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    let question = UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    assert!(
        question.query.eval(&db).unwrap() > 2.0,
        "the bump is pronounced"
    );

    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        schema.attr("Author", "inst").unwrap(),
        schema.attr("Author", "name").unwrap(),
    ];
    let m =
        cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap();
    let top = topk::top_k(
        &m,
        DegreeKind::Intervention,
        9,
        TopKStrategy::MinimalAppend,
        MinimalityPolarity::PreferGeneral,
    );
    let texts: Vec<String> = top
        .iter()
        .map(|r| r.explanation.display(&db).to_string())
        .collect();
    let any = |needle: &str| texts.iter().any(|t| t.contains(needle));

    // The two explanation families of Figure 2 must both appear:
    // 90s-prolific industrial labs/authors …
    assert!(
        any("ibm.com") || any("bell-labs.com") || any("Rakesh Agrawal") || any("Hamid Pirahesh"),
        "no industrial-era explanation in {texts:?}"
    );
    // … and the post-2004 rising academic groups.
    assert!(
        any("asu.edu") || any("utah.edu") || any("gwu.edu"),
        "no rising-academic explanation in {texts:?}"
    );
    // Every degree must beat leaving the database alone (all μ < −1 means
    // removing the explanation flattens the bump below Q(D)).
    let q_d = question.query.eval(&db).unwrap();
    for r in &top {
        assert!(
            -r.degree < q_d,
            "intervention must lower Q: {}",
            r.explanation.display(&db)
        );
    }
}

#[test]
fn figure10_intervention_families_hold() {
    // The favourable-circumstance predicates must dominate the Q_Race
    // top-5 (married / non-smoking / early prenatal / educated / prime
    // age), matching the paper's Figure 10.
    let db = natality::generate(&natality::NatalityConfig {
        rows: 60_000,
        seed: 7,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let race = schema.attr("Natality", "race").unwrap();
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    let question = UserQuestion::new(
        NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
        Direction::High,
    );
    let attr = |n: &str| schema.attr("Natality", n).unwrap();
    let dims = vec![
        attr("age"),
        attr("tobacco"),
        attr("prenatal"),
        attr("edu"),
        attr("marital"),
    ];
    let u = Universal::compute(&db, &db.full_view());
    let mut m =
        cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap();
    m.retain_min_support(1000.0 * 60_000.0 / 4_000_000.0);
    let top = topk::top_k(
        &m,
        DegreeKind::Intervention,
        5,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferGeneral,
    );
    let texts: Vec<String> = top
        .iter()
        .map(|r| r.explanation.display(&db).to_string())
        .collect();

    // All top-5 are short (minimality prefers general explanations) …
    for r in &top {
        assert!(r.explanation.len() <= 2, "over-specific: {:?}", texts);
    }
    // … and the favourable markers the paper lists appear.
    let favourable = [
        "non smoking",
        "1st trim",
        "married",
        ">=16yrs",
        "13-15yrs",
        "25-29",
        "30-34",
        "35-39",
    ];
    let hits = texts
        .iter()
        .filter(|t| favourable.iter().any(|f| t.contains(f)))
        .count();
    assert!(
        hits >= 3,
        "favourable-circumstance explanations missing: {texts:?}"
    );

    // Intervention lowers the ratio: μ = −Q(D−Δ) > −Q(D).
    let q_d = question.query.eval(&db).unwrap();
    for r in &top {
        assert!(r.degree > -q_d, "{texts:?}");
    }
}
