//! Server ↔ CLI parity on the DBLP workload (ISSUE 4 acceptance): N
//! parallel HTTP clients must get responses whose semantic content is
//! byte-identical to the single-shot CLI's `--format json` document, at
//! 1, 2, and 7 server worker threads.
//!
//! The two surfaces share one serializer (`exq_core::jsonout`), so the
//! document *up to the `"notes"` field* is comparable byte-for-byte:
//! after it, the CLI carries CSV-load provenance notes and join
//! counters from its cold build that the server's request-scoped
//! metrics (running over pre-built intermediates) legitimately lack.
//! Across clients the *full* bodies must agree after zeroing span
//! wall-times — and on cache hits they agree without normalization.

use exq::datagen::dblp;
use exq::relstore::csv::dump_relation;
use exq::relstore::ExecConfig;
use exq::serve::{client, Catalog, ServerConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exq-serve-parity-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn asset(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("assets")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Write the generated DBLP dataset as a `Catalog::load_dir` directory:
/// `schema.exq` + one `<Relation>.csv` per relation.
fn write_dataset(dir: &Path) {
    let db = dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 6,
        authors_per_institution: 4,
        ..dblp::DblpConfig::default()
    });
    fs::write(dir.join("schema.exq"), asset("schemas/dblp.exq")).unwrap();
    for rel in ["Author", "Authored", "Publication"] {
        let f = fs::File::create(dir.join(format!("{rel}.csv"))).unwrap();
        dump_relation(&db, rel, std::io::BufWriter::new(f)).unwrap();
    }
    fs::write(dir.join("question.exq"), asset("questions/bump.exq")).unwrap();
}

fn cli_explain_json(dir: &Path) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_exq"))
        .args([
            "explain",
            "--schema",
            dir.join("schema.exq").to_str().unwrap(),
            "--table",
            &format!("Author={}", dir.join("Author.csv").display()),
            "--table",
            &format!("Authored={}", dir.join("Authored.csv").display()),
            "--table",
            &format!("Publication={}", dir.join("Publication.csv").display()),
            "--question",
            dir.join("question.exq").to_str().unwrap(),
            "--attrs",
            "Author.inst",
            "--top",
            "5",
            "--threads",
            "1",
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(output.stderr.is_empty(), "json mode must keep stderr empty");
    String::from_utf8(output.stdout).unwrap()
}

/// The document up to its `"notes"` field: q_d, engine, candidate
/// count, and the full ranked top-K.
fn semantic_prefix(doc: &str) -> &str {
    let idx = doc
        .find("\"notes\"")
        .unwrap_or_else(|| panic!("no notes field in {doc}"));
    &doc[..idx]
}

/// Zero the digits after every `"total_ns": ` (same normalization as
/// the CLI golden-fixture tests).
fn normalize(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match line.find("\"total_ns\": ") {
            Some(idx) => {
                let head = &line[..idx + "\"total_ns\": ".len()];
                let tail: String = line[idx + "\"total_ns\": ".len()..]
                    .chars()
                    .skip_while(char::is_ascii_digit)
                    .collect();
                out.push_str(head);
                out.push('0');
                out.push_str(&tail);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

fn request_body(dir: &Path) -> String {
    let question = fs::read_to_string(dir.join("question.exq")).unwrap();
    format!(
        "{{\"dataset\": \"dblp\", \"question\": \"{}\", \"attrs\": [\"Author.inst\"], \"top\": 5}}",
        exq::obs::escape_json(&question)
    )
}

#[test]
fn parallel_clients_match_single_shot_cli_at_1_2_and_7_threads() {
    let dir = workdir("dblp");
    write_dataset(&dir);
    let cli_doc = cli_explain_json(&dir);
    let cli_prefix = semantic_prefix(&cli_doc).to_string();
    assert!(
        cli_prefix.contains("\"engine\": \"Cube\""),
        "unexpected CLI doc: {cli_prefix}"
    );
    let body = request_body(&dir);

    for threads in [1usize, 2, 7] {
        let mut catalog = Catalog::new();
        catalog
            .load_dir("dblp", &dir, &ExecConfig::sequential())
            .unwrap();
        let handle = exq::serve::start(
            catalog,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
            exq::obs::MetricsSink::recording(),
        )
        .unwrap();
        let addr = handle.addr();

        let bodies: Vec<String> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..6)
                .map(|_| {
                    let body = body.as_str();
                    scope.spawn(move || {
                        let response = client::post_json(addr, "/v1/explain", body).unwrap();
                        assert_eq!(response.status, 200, "{}", response.text());
                        response.text()
                    })
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });

        for response in &bodies {
            // Semantic parity with the CLI, byte for byte.
            assert_eq!(
                semantic_prefix(response),
                cli_prefix,
                "server response diverged from CLI at {threads} threads"
            );
        }
        // Full-document agreement across parallel clients (normalized:
        // racing cache misses may differ only in span wall-times).
        let first = normalize(&bodies[0]);
        for response in &bodies[1..] {
            assert_eq!(
                normalize(response),
                first,
                "parallel clients diverged at {threads} threads"
            );
        }

        // A follow-up request is a cache hit: identical without
        // normalization, and the hit counter proves it was served from
        // the cache.
        let warm = client::post_json(addr, "/v1/explain", &body).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(semantic_prefix(&warm.text()), cli_prefix);
        let snapshot = handle.shutdown();
        assert!(
            snapshot.counter("server.cache.hits") >= 1,
            "expected at least one cache hit"
        );
        assert_eq!(
            snapshot.counter("server.responses.ok"),
            7,
            "all requests must succeed"
        );
    }
}

/// ISSUE 5 acceptance: for a *sequential* request mix (so cache
/// hit/miss outcomes are deterministic), the server's final metrics
/// snapshot — counters, span counts, and histogram bucket counts —
/// normalizes to a bit-identical JSON document at 1, 2, and 7 worker
/// threads. Wall-clock (span totals, latency histogram sums/buckets)
/// is collapsed by `Snapshot::normalized()`; everything else must not
/// depend on the thread count.
#[test]
fn sequential_snapshots_normalize_identically_at_1_2_and_7_threads() {
    let dir = workdir("dblp-snapshot");
    write_dataset(&dir);
    let body = request_body(&dir);

    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 7] {
        let mut catalog = Catalog::new();
        catalog
            .load_dir("dblp", &dir, &ExecConfig::sequential())
            .unwrap();
        let handle = exq::serve::start(
            catalog,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
            exq::obs::MetricsSink::recording(),
        )
        .unwrap();
        let addr = handle.addr();

        // Deterministic mix: explain miss + hit, report miss + hit,
        // and a sweep of the GET endpoints.
        for _ in 0..2 {
            let response = client::post_json(addr, "/v1/explain", &body).unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
        }
        for _ in 0..2 {
            let response = client::post_json(addr, "/v1/report", &body).unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
        }
        for path in ["/healthz", "/v1/datasets", "/metrics", "/v1/debug/requests"] {
            assert_eq!(client::get(addr, path).unwrap().status, 200);
        }
        assert_eq!(client::get(addr, "/nope").unwrap().status, 404);

        let doc = handle.shutdown().normalized().to_json();
        match &reference {
            None => reference = Some(doc),
            Some(expected) => assert_eq!(
                &doc, expected,
                "normalized snapshot changed at {threads} threads"
            ),
        }
    }
}

/// `report --format json` through the CLI matches `/v1/report` through
/// the server the same way.
#[test]
fn report_parity_cli_vs_server() {
    let dir = workdir("dblp-report");
    write_dataset(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_exq"))
        .args([
            "report",
            "--schema",
            dir.join("schema.exq").to_str().unwrap(),
            "--table",
            &format!("Author={}", dir.join("Author.csv").display()),
            "--table",
            &format!("Authored={}", dir.join("Authored.csv").display()),
            "--table",
            &format!("Publication={}", dir.join("Publication.csv").display()),
            "--question",
            dir.join("question.exq").to_str().unwrap(),
            "--attrs",
            "Author.inst",
            "--top",
            "5",
            "--threads",
            "1",
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(output.stderr.is_empty());
    let cli_doc = String::from_utf8(output.stdout).unwrap();

    let mut catalog = Catalog::new();
    catalog
        .load_dir("dblp", &dir, &ExecConfig::sequential())
        .unwrap();
    let handle = exq::serve::start(
        catalog,
        ServerConfig::default(),
        exq::obs::MetricsSink::recording(),
    )
    .unwrap();
    let response = client::post_json(handle.addr(), "/v1/report", &request_body(&dir)).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(semantic_prefix(&response.text()), semantic_prefix(&cli_doc));
    handle.shutdown();
}
