//! Cross-thread-count determinism: the whole pipeline (universal join →
//! cubes → Algorithm 1, and the naive engine) must produce *bit-identical*
//! explanation tables at every thread count. These run the two headline
//! experiment workloads (DBLP Figure 2, natality Figure 10) through the
//! facade at 1, 2, and 7 threads and require full `ExplanationTable`
//! equality — coordinates, `v_j` columns, and both degree columns, down
//! to the last float bit.

use exq::core::explainer::Explainer;
use exq::datagen::{dblp, natality};
use exq::prelude::*;
use exq_relstore::aggregate::AggFunc;

const THREADS: [usize; 3] = [1, 2, 7];

fn dblp_question(db: &exq_relstore::Database) -> UserQuestion {
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

#[test]
fn dblp_explanation_table_is_identical_across_thread_counts() {
    let db = dblp::generate(&dblp::DblpConfig::default());
    let build = |threads: usize| {
        Explainer::new(&db, dblp_question(&db))
            .attr_names(&["Author.inst", "Author.name"])
            .unwrap()
            .threads(threads)
    };
    let (baseline, choice) = build(1).table().unwrap();
    assert!(!baseline.is_empty());
    for threads in THREADS {
        let (table, c) = build(threads).table().unwrap();
        assert_eq!(c, choice, "threads = {threads}");
        assert_eq!(table, baseline, "threads = {threads}");
    }
}

#[test]
fn natality_explanation_table_is_identical_across_thread_counts() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 20_000,
        seed: 7,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let race = schema.attr("Natality", "race").unwrap();
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    let question = || {
        UserQuestion::new(
            NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
            Direction::High,
        )
    };
    let dims = [
        "Natality.age",
        "Natality.tobacco",
        "Natality.prenatal",
        "Natality.edu",
        "Natality.marital",
    ];
    let build = |threads: usize| {
        Explainer::new(&db, question())
            .attr_names(&dims)
            .unwrap()
            .threads(threads)
    };
    let (baseline, _) = build(1).table().unwrap();
    assert!(!baseline.is_empty());
    for threads in THREADS {
        let (table, _) = build(threads).table().unwrap();
        assert_eq!(table, baseline, "threads = {threads}");
    }
}

#[test]
fn naive_engine_is_identical_across_thread_counts_on_natality() {
    // The naive engine runs program P per candidate; restrict to two
    // dimensions to keep the candidate count (and runtime) small.
    let db = natality::generate(&natality::NatalityConfig {
        rows: 2_000,
        seed: 7,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let q = |o: &str| AggregateQuery::count_star(Predicate::eq(ap, o));
    let question = || {
        UserQuestion::new(
            NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
            Direction::High,
        )
    };
    let build = |threads: usize| {
        Explainer::new(&db, question())
            .attr_names(&["Natality.tobacco", "Natality.marital"])
            .unwrap()
            .force_naive()
            .threads(threads)
    };
    let (baseline, choice) = build(1).table().unwrap();
    assert_eq!(choice, exq::core::explainer::EngineChoice::Naive);
    assert!(!baseline.is_empty());
    for threads in THREADS {
        let (table, _) = build(threads).table().unwrap();
        assert_eq!(table, baseline, "threads = {threads}");
    }
}

#[test]
fn metrics_snapshot_is_identical_across_thread_counts_on_dblp() {
    // The observability contract: the *normalized* snapshot (counters and
    // span counts; wall-clock zeroed) is bit-identical at every thread
    // count, and so is its rendered JSON.
    let db = dblp::generate(&dblp::DblpConfig::default());
    let snapshot = |threads: usize| {
        let sink = exq::obs::MetricsSink::recording();
        let (table, _) = Explainer::new(&db, dblp_question(&db))
            .attr_names(&["Author.inst", "Author.name"])
            .unwrap()
            .threads(threads)
            .metrics(sink.clone())
            .table()
            .unwrap();
        assert!(!table.is_empty());
        sink.snapshot().normalized()
    };
    let base = snapshot(1);
    assert!(base.counter("join.runs") >= 1);
    assert!(base.counter("cube.cells") > 0);
    assert!(base.counter("engine.candidates_evaluated") > 0);
    for threads in THREADS {
        let snap = snapshot(threads);
        assert_eq!(snap, base, "threads = {threads}");
        assert_eq!(snap.to_json(), base.to_json(), "threads = {threads}");
    }
}

#[test]
fn metrics_snapshot_is_identical_across_thread_counts_on_naive_natality() {
    // Same contract through the naive engine: program P per candidate,
    // parallel across candidates, fixpoint counters merged from workers.
    let db = natality::generate(&natality::NatalityConfig {
        rows: 2_000,
        seed: 7,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let q = |o: &str| AggregateQuery::count_star(Predicate::eq(ap, o));
    let question = || {
        UserQuestion::new(
            NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
            Direction::High,
        )
    };
    let snapshot = |threads: usize| {
        let sink = exq::obs::MetricsSink::recording();
        let (table, choice) = Explainer::new(&db, question())
            .attr_names(&["Natality.tobacco", "Natality.marital"])
            .unwrap()
            .force_naive()
            .threads(threads)
            .metrics(sink.clone())
            .table()
            .unwrap();
        assert_eq!(choice, exq::core::explainer::EngineChoice::Naive);
        let snap = sink.snapshot().normalized();
        assert_eq!(
            snap.counter("engine.candidates_evaluated"),
            table.len() as u64
        );
        snap
    };
    let base = snapshot(1);
    assert!(base.counter("naive.runs") >= 1);
    assert!(base.counter("fixpoint.runs") > 0);
    for threads in THREADS {
        assert_eq!(snapshot(threads), base, "threads = {threads}");
    }
}
