//! Degenerate-input robustness: empty relations, empty candidate sets,
//! single-tuple databases, questions whose selections match nothing, and
//! maximal interventions. The engine must degrade gracefully (empty
//! outputs, zero degrees under smoothing), never panic.

use exq::prelude::*;
use exq_core::explainer::Explainer;
use exq_core::explanation::Explanation;
use exq_core::intervention::{is_valid_intervention, InterventionEngine};
use exq_core::{cube_algo, naive, topk};
use exq_relstore::aggregate::{evaluate, AggFunc};
use exq_relstore::cube::{self, CubeStrategy};
use exq_relstore::semijoin;

fn empty_db() -> Database {
    let schema = SchemaBuilder::new()
        .relation(
            "R",
            &[("id", ValueType::Int), ("g", ValueType::Str)],
            &["id"],
        )
        .build()
        .unwrap();
    Database::new(schema)
}

fn one_row_db() -> Database {
    let mut db = empty_db();
    db.insert("R", vec![0.into(), "a".into()]).unwrap();
    db
}

fn ratio_question(db: &Database) -> UserQuestion {
    let g = db.schema().attr("R", "g").unwrap();
    UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(g, "a")),
            AggregateQuery::count_star(Predicate::eq(g, "b")),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

#[test]
fn empty_database_through_the_whole_pipeline() {
    let db = empty_db();
    db.validate().unwrap();
    assert!(semijoin::is_reduced(&db, &db.full_view()));

    let u = Universal::compute(&db, &db.full_view());
    assert!(u.is_empty());
    assert_eq!(
        evaluate(&db, &u, &Predicate::True, &AggFunc::CountStar).unwrap(),
        0.0
    );

    // Cube over nothing: empty.
    let g = db.schema().attr("R", "g").unwrap();
    for strategy in [
        CubeStrategy::SubsetEnumeration,
        CubeStrategy::LatticeRollup,
        CubeStrategy::Auto,
    ] {
        let c = cube::compute(
            &db,
            &u,
            &Predicate::True,
            &[g],
            &AggFunc::CountStar,
            strategy,
        )
        .unwrap();
        assert!(c.is_empty());
    }

    // Intervention of anything over nothing: empty, zero iterations.
    let engine = InterventionEngine::new(&db);
    let phi = Explanation::new(vec![Atom::eq(g, "a")]);
    let iv = engine.compute(&phi);
    assert!(iv.is_empty());
    assert_eq!(iv.iterations, 0);
    assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));

    // Facade: empty table, empty top-K, smoothed Q(D) = 1.
    let explainer = Explainer::new(&db, ratio_question(&db))
        .attr_names(&["R.g"])
        .unwrap();
    let (table, _) = explainer.table().unwrap();
    assert!(table.is_empty());
    assert!(explainer
        .top(DegreeKind::Intervention, 5)
        .unwrap()
        .is_empty());
    let q = explainer.question().query.eval(&db).unwrap();
    assert!((q - 1.0).abs() < 1e-9, "ε/ε = 1");
}

#[test]
fn single_tuple_database() {
    let db = one_row_db();
    let explainer = Explainer::new(&db, ratio_question(&db))
        .attr_names(&["R.g"])
        .unwrap();
    let top = explainer.top(DegreeKind::Intervention, 5).unwrap();
    assert_eq!(top.len(), 1);
    let report = explainer.explain(&top[0].explanation).unwrap();
    assert_eq!(report.intervention.total_deleted(), 1, "the whole database");
    // Residual is empty: Q = ε/ε = 1 with sign −1.
    assert!((report.mu_interv + 1.0).abs() < 1e-9);
}

#[test]
fn selection_matching_nothing() {
    let db = one_row_db();
    let g = db.schema().attr("R", "g").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(g, "zzz")))
            .with_smoothing(1e-4),
        Direction::Low,
    );
    let u = Universal::compute(&db, &db.full_view());
    // Cube pipeline: no tuple matches any sub-query → M is empty.
    let m =
        cube_algo::explanation_table(&db, &u, &question, &[g], CubeAlgoConfig::checked()).unwrap();
    assert!(m.is_empty());
    // Naive agrees.
    let engine = InterventionEngine::new(&db);
    let n = naive::explanation_table_naive(&db, &engine, &question, &[g]).unwrap();
    assert!(n.is_empty());
}

#[test]
fn trivial_explanation_stays_out_of_rankings() {
    // Even at k = |M| + 1 the trivial all-null explanation never appears.
    let mut db = empty_db();
    for (i, g) in ["a", "a", "b"].iter().enumerate() {
        db.insert("R", vec![(i as i64).into(), (*g).into()])
            .unwrap();
    }
    let explainer = Explainer::new(&db, ratio_question(&db))
        .attr_names(&["R.g"])
        .unwrap();
    let (m, _) = explainer.table().unwrap();
    for strategy in [
        topk::TopKStrategy::NoMinimal,
        topk::TopKStrategy::MinimalSelfJoin,
        topk::TopKStrategy::MinimalAppend,
    ] {
        let all = topk::top_k(
            &m,
            DegreeKind::Intervention,
            m.len() + 1,
            strategy,
            MinimalityPolarity::PreferGeneral,
        );
        assert!(all.iter().all(|r| !r.explanation.is_trivial()));
    }
}

#[test]
fn maximal_intervention_empties_the_database_consistently() {
    let mut db = empty_db();
    for (i, g) in ["a", "b"].iter().enumerate() {
        db.insert("R", vec![(i as i64).into(), (*g).into()])
            .unwrap();
    }
    let engine = InterventionEngine::new(&db);
    let iv = engine.compute(&Explanation::trivial());
    assert_eq!(iv.total_deleted(), 2);
    let residual = db.view_minus(&iv.delta);
    assert_eq!(residual.total_live(), 0);
    // Every aggregate on the residual is 0 / neutral.
    let u = Universal::compute(&db, &residual);
    let id = db.schema().attr("R", "id").unwrap();
    for f in [
        AggFunc::CountStar,
        AggFunc::CountDistinct(id),
        AggFunc::Sum(id),
        AggFunc::Avg(id),
        AggFunc::Min(id),
        AggFunc::Max(id),
    ] {
        assert_eq!(evaluate(&db, &u, &Predicate::True, &f).unwrap(), 0.0);
    }
}

#[test]
fn zero_k_top_k_is_empty() {
    let db = one_row_db();
    let explainer = Explainer::new(&db, ratio_question(&db))
        .attr_names(&["R.g"])
        .unwrap();
    assert!(explainer
        .top(DegreeKind::Intervention, 0)
        .unwrap()
        .is_empty());
    assert!(explainer
        .top(DegreeKind::Aggravation, 0)
        .unwrap()
        .is_empty());
}

#[test]
fn no_dimension_attributes() {
    // A' = ∅: no candidates at all (only the trivial explanation would
    // exist, and it is excluded).
    let db = one_row_db();
    let explainer = Explainer::new(&db, ratio_question(&db));
    let (m, _) = explainer.table().unwrap();
    assert!(m.is_empty());
}
