//! Differential tests for the columnar storage rebuild: the
//! dictionary-coded cube/join path against the retained row-oriented
//! `Value` reference path, bit for bit, on the two headline experiment
//! workloads (DBLP Figure 2, natality Figure 10) — plus the
//! thread-count stability of dictionary code assignment.

use exq::datagen::{dblp, natality};
use exq::prelude::*;
use exq_core::cube_algo::{self, CubeAlgoConfig};
use exq_core::prepared::PreparedDb;
use exq_relstore::aggregate::AggFunc;
use exq_relstore::cube::{self, CubeStrategy};
use exq_relstore::{AttrRef, Database, ExecConfig, Universal};
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 2, 7];

fn dblp_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

fn natality_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let race = schema.attr("Natality", "race").unwrap();
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
        Direction::High,
    )
}

/// `explanation_table` through the coded path (`reference_rows: false`)
/// and through the row-oriented reference (`reference_rows: true`),
/// requiring full bit-identity, at every thread count.
fn assert_coded_matches_reference(db: &Database, question: &UserQuestion, dims: &[AttrRef]) {
    let u = Universal::compute(db, &db.full_view());
    for threads in THREADS {
        let config = |reference_rows: bool| CubeAlgoConfig {
            reference_rows,
            exec: ExecConfig::with_threads(threads),
            ..CubeAlgoConfig::checked()
        };
        let coded = cube_algo::explanation_table(db, &u, question, dims, config(false)).unwrap();
        let reference = cube_algo::explanation_table(db, &u, question, dims, config(true)).unwrap();
        assert!(!coded.is_empty());
        assert_eq!(coded, reference, "threads = {threads}");
    }
}

#[test]
fn dblp_columnar_table_matches_row_reference() {
    let db = dblp::generate(&dblp::DblpConfig::default());
    let schema = db.schema();
    let dims = vec![
        schema.attr("Author", "inst").unwrap(),
        schema.attr("Author", "name").unwrap(),
    ];
    assert_coded_matches_reference(&db, &dblp_question(&db), &dims);
}

#[test]
fn natality_columnar_table_matches_row_reference() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 20_000,
        seed: 7,
    });
    let schema = db.schema();
    let dims = vec![
        schema.attr("Natality", "age").unwrap(),
        schema.attr("Natality", "tobacco").unwrap(),
        schema.attr("Natality", "prenatal").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
        schema.attr("Natality", "marital").unwrap(),
    ];
    assert_coded_matches_reference(&db, &natality_question(&db), &dims);
}

/// Cube-level differential, per strategy: the decoded coded cube equals
/// the row-oriented cube cell for cell, down to the last float bit.
#[test]
fn coded_cube_is_bit_identical_to_row_cube_per_strategy() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 5_000,
        seed: 11,
    });
    let schema = db.schema();
    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        schema.attr("Natality", "tobacco").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
        schema.attr("Natality", "marital").unwrap(),
    ];
    let id = schema.attr("Natality", "id").unwrap();
    for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
        for agg in [AggFunc::CountStar, AggFunc::Avg(id)] {
            let exec = ExecConfig::with_threads(3);
            let coded =
                cube::compute_coded_with(&db, &u, &Predicate::True, &dims, &agg, strategy, &exec)
                    .unwrap()
                    .expect("generated string/int dimensions dictionary-encode")
                    .decode();
            let rows =
                cube::compute_rows_with(&db, &u, &Predicate::True, &dims, &agg, strategy, &exec)
                    .unwrap();
            assert_eq!(coded.len(), rows.len(), "{strategy:?} / {agg:?}");
            for (coord, value) in &rows.cells {
                let c = coded
                    .cells
                    .get(coord)
                    .unwrap_or_else(|| panic!("coded cube missing {coord:?}"));
                assert_eq!(
                    c.to_bits(),
                    value.to_bits(),
                    "{strategy:?} / {agg:?} at {coord:?}"
                );
            }
        }
    }
}

/// Dictionary code assignment depends only on stored row order: preparing
/// the same instance on 1, 2, and 7 worker threads yields bit-identical
/// code arrays for every dictionary-coded column.
#[test]
fn dictionary_codes_are_stable_across_thread_counts() {
    let db = dblp::generate(&dblp::DblpConfig::default());
    let all_attrs: Vec<AttrRef> = {
        let schema = db.schema();
        (0..schema.relation_count())
            .flat_map(|rel| (0..schema.relation(rel).arity()).map(move |col| AttrRef { rel, col }))
            .collect()
    };
    let codes_at = |threads: usize| -> Vec<Option<Vec<u32>>> {
        // A fresh instance (materialize starts with an empty column cache)
        // prepared on `threads` workers; the store is built inside build_with.
        let fresh = db.materialize(&db.full_view());
        let prepared = PreparedDb::build_with(Arc::new(fresh), &ExecConfig::with_threads(threads));
        let store = Arc::clone(prepared.db().columns());
        all_attrs
            .iter()
            .map(|&a| store.dict_column(a).map(|(codes, _)| codes.to_vec()))
            .collect()
    };
    let baseline = codes_at(1);
    assert!(
        baseline.iter().any(Option::is_some),
        "DBLP should have dictionary-coded columns"
    );
    for threads in THREADS {
        assert_eq!(codes_at(threads), baseline, "threads = {threads}");
    }
}
