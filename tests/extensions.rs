//! Integration tests for the Section 4.1 transform and the Section 6
//! extensions, across crates: the Geo-DBLP 8-table pipeline, hybrid vs
//! intervention divergence, rich explanations on the bibliographic data,
//! and the copy transform as a route to cube-computing COUNT(*) under a
//! back-and-forth key.

use exq::datagen::{dblp, geodblp, paper_examples};
use exq::prelude::*;
use exq_core::explainer::{EngineChoice, Explainer};
use exq_core::explanation::Explanation;
use exq_core::intervention::InterventionEngine;
use exq_core::rich::{self, RichPart};
use exq_core::{hybrid, topk, transform};
use exq_relstore::aggregate::{evaluate, AggFunc};

#[test]
fn geodblp_end_to_end_uk_question() {
    let db = geodblp::generate(&geodblp::GeoDblpConfig {
        papers: 1500,
        seed: 11,
    });
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let country = schema.attr("CountryG", "country").unwrap();
    let uk = Predicate::eq(country, "United Kingdom");
    let q = |v: &str| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([uk.clone(), Predicate::eq(venue, v)]),
    };
    let question = UserQuestion::new(
        NumericalQuery::ratio(q("SIGMOD"), q("PODS")).with_smoothing(1e-4),
        Direction::Low,
    );

    let explainer = Explainer::new(&db, question)
        .attr_names(&["AffiliationG.inst", "CityG.city"])
        .unwrap();
    let (table, choice) = explainer.table().unwrap();
    assert_eq!(
        choice,
        EngineChoice::Cube,
        "COUNT(DISTINCT pubid) is additive here"
    );
    assert!(!table.is_empty());

    // Top explanations are UK-side: every top-5 coordinate names a UK
    // institution or city.
    let top = explainer.top(DegreeKind::Intervention, 5).unwrap();
    let uk_names = [
        "Oxford Univ.",
        "Semmle Ltd.",
        "Univ. of Edinburgh",
        "Imperial College",
        "Oxford",
        "Edinburgh",
        "London",
    ];
    for r in &top {
        let text = r.explanation.display(&db).to_string();
        assert!(
            uk_names.iter().any(|n| text.contains(n)),
            "non-UK explanation in top-5: {text}"
        );
    }

    // The city-level Oxford explanation dominates the institution-level
    // one (Figure 15b's [city = Oxford] vs [inst = Oxford Univ.]): its
    // intervention is at least as strong.
    let city = schema.attr("CityG", "city").unwrap();
    let inst = schema.attr("AffiliationG", "inst").unwrap();
    let mu_city = explainer
        .explain(&Explanation::new(vec![Atom::eq(city, "Oxford")]))
        .unwrap()
        .mu_interv;
    let mu_inst = explainer
        .explain(&Explanation::new(vec![Atom::eq(inst, "Oxford Univ.")]))
        .unwrap()
        .mu_interv;
    assert!(
        mu_city >= mu_inst,
        "city {mu_city} should beat institution {mu_inst}"
    );
}

#[test]
fn hybrid_and_interv_differ_exactly_where_additivity_fails() {
    // On the Figure 3 instance with the back-and-forth key, COUNT(*) is
    // not additive: μ_hybrid must diverge from μ_interv for at least one
    // explanation, while COUNT(DISTINCT pubid) (additive) must agree
    // everywhere.
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let u = engine.universal();
    let venue = db.schema().attr("Publication", "venue").unwrap();
    let pubid = db.schema().attr("Publication", "pubid").unwrap();
    let name = db.schema().attr("Author", "name").unwrap();

    let star = UserQuestion::new(
        NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(venue, "SIGMOD"))),
        Direction::High,
    );
    let distinct = UserQuestion::new(
        NumericalQuery::single(AggregateQuery {
            func: AggFunc::CountDistinct(pubid),
            selection: Predicate::eq(venue, "SIGMOD"),
        }),
        Direction::High,
    );

    let mut star_diverged = false;
    for n in ["JG", "RR", "CM"] {
        let phi = Explanation::new(vec![Atom::eq(name, n)]);
        let (i_star, _) = exq_core::degree::mu_interv(&engine, &star, &phi).unwrap();
        let h_star = hybrid::mu_hybrid(&db, u, &star, &phi).unwrap();
        star_diverged |= (i_star - h_star).abs() > 1e-12;

        let (i_d, _) = exq_core::degree::mu_interv(&engine, &distinct, &phi).unwrap();
        let h_d = hybrid::mu_hybrid(&db, u, &distinct, &phi).unwrap();
        assert_eq!(
            i_d, h_d,
            "additive query: hybrid must equal intervention for {n}"
        );
    }
    assert!(
        star_diverged,
        "COUNT(*) with a back-and-forth key must diverge somewhere"
    );
}

#[test]
fn transform_enables_cube_for_count_star() {
    // COUNT(*) on the original (back-and-forth) schema fails the
    // additivity check; after the Section 4.1 copy transform the
    // rewritten COUNT(*) is additive and equals the original
    // COUNT(DISTINCT pubid) under equivalent selections.
    let db = paper_examples::figure3();
    let u = Universal::compute(&db, &db.full_view());
    assert_eq!(
        exq_core::additivity::check_aggregate(&db, &u, &AggFunc::CountStar),
        exq_core::additivity::Additivity::Unknown
    );

    let bf_idx = db
        .schema()
        .foreign_keys()
        .iter()
        .position(|fk| fk.kind == exq_relstore::FkKind::BackAndForth)
        .unwrap();
    let elim = transform::eliminate_back_and_forth(&db, bf_idx).unwrap();
    let u2 = Universal::compute(&elim.db, &elim.db.full_view());
    assert_eq!(
        exq_core::additivity::check_aggregate(&elim.db, &u2, &AggFunc::CountStar),
        exq_core::additivity::Additivity::CountStarNoBackAndForth
    );

    // Equivalence on a domain predicate, rewritten as a disjunction.
    let dom_pred = elim.rewrite_eq("dom", "com").unwrap();
    let transformed = evaluate(&elim.db, &u2, &dom_pred, &AggFunc::CountStar).unwrap();
    let pubid = db.schema().attr("Publication", "pubid").unwrap();
    let dom = db.schema().attr("Author", "dom").unwrap();
    let original = evaluate(
        &db,
        &u,
        &Predicate::eq(dom, "com"),
        &AggFunc::CountDistinct(pubid),
    )
    .unwrap();
    assert_eq!(transformed, original, "pubs with ≥1 com author");
}

#[test]
fn rich_year_ranges_on_dblp() {
    // "Which year range explains the industrial decline?" — rich range
    // explanations over Publication.year on the synthetic bibliography.
    let db = dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 10,
        years: (1995, 2010),
        authors_per_institution: 5,
        seed: 4,
    });
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    // Why is the industrial share of SIGMOD so high overall? (It is
    // driven by the pre-2005 era.)
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::eq(dom, "com"),
                ]),
            },
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::eq(dom, "edu"),
                ]),
            },
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let engine = InterventionEngine::new(&db);
    let candidates = rich::range_candidates(&db, engine.universal(), year, 6);
    let ranked = rich::evaluate_candidates(&engine, &question, candidates).unwrap();
    // The best range must end by 2005 (the com-heavy era): removing it
    // drops the ratio the most.
    let best = &ranked[0].explanation;
    match &best.parts[0] {
        RichPart::Range { hi, .. } => {
            let hi = hi.as_int().unwrap();
            assert!(
                hi <= 2006,
                "best range should cover the industrial era, got hi={hi}"
            );
        }
        other => panic!("expected a range, got {other:?}"),
    }
    // Every candidate's intervention is valid.
    for r in ranked.iter().take(5) {
        let pred = r.explanation.to_predicate();
        let iv = engine.compute_predicate(&pred);
        assert!(exq_core::intervention::is_valid_for_predicate(
            &db, &pred, &iv.delta
        ));
    }
}

#[test]
fn minimal_topk_polarities_on_figure3() {
    // Footnote 12's two polarities on a real table: general-first prefers
    // short explanations, specific-first prefers long ones.
    let db = paper_examples::figure3();
    let venue = db.schema().attr("Publication", "venue").unwrap();
    let pubid = db.schema().attr("Publication", "pubid").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::single(AggregateQuery {
            func: AggFunc::CountDistinct(pubid),
            selection: Predicate::eq(venue, "SIGMOD"),
        }),
        Direction::High,
    );
    let e = Explainer::new(&db, question)
        .attr_names(&["Author.name", "Publication.year"])
        .unwrap();
    let (m, _) = e.table().unwrap();

    let general = topk::top_k(
        &m,
        DegreeKind::Intervention,
        3,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferGeneral,
    );
    let specific = topk::top_k(
        &m,
        DegreeKind::Intervention,
        3,
        TopKStrategy::MinimalSelfJoin,
        MinimalityPolarity::PreferSpecific,
    );
    let avg = |rs: &[topk::Ranked]| {
        rs.iter().map(|r| r.explanation.len()).sum::<usize>() as f64 / rs.len() as f64
    };
    assert!(
        avg(&general) <= avg(&specific),
        "polarity must shift explanation length"
    );
}
