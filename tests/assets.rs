//! The shipped asset files (`assets/schemas/*.exq`,
//! `assets/questions/*.exq`) must stay in sync with the code: schemas
//! parse to the generators' schemas, questions parse against them and
//! evaluate to the values the native builders produce.

use exq::datagen::{dblp, natality, paper_examples};
use exq::prelude::*;
use exq_core::qparse;
use exq_relstore::parse;

fn asset(path: &str) -> String {
    let full = format!("{}/assets/{path}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("{full}: {e}"))
}

#[test]
fn dblp_schema_asset_matches_generator() {
    let parsed = parse::parse_schema(&asset("schemas/dblp.exq")).unwrap();
    assert_eq!(parsed, paper_examples::dblp_schema());
}

#[test]
fn natality_schema_asset_matches_generator() {
    let parsed = parse::parse_schema(&asset("schemas/natality.exq")).unwrap();
    assert_eq!(parsed, natality::natality_schema());
}

#[test]
fn q_race_asset_evaluates_like_native_builder() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 5_000,
        seed: 7,
    });
    let question = qparse::parse_question(db.schema(), &asset("questions/q_race.exq")).unwrap();
    assert_eq!(question.direction, Direction::High);
    // Compare against the hand-built Q_Race.
    let ap = db.schema().attr("Natality", "ap").unwrap();
    let race = db.schema().attr("Natality", "race").unwrap();
    let native = NumericalQuery::ratio(
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, "good"),
            Predicate::eq(race, "Asian"),
        ])),
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, "poor"),
            Predicate::eq(race, "Asian"),
        ])),
    )
    .with_smoothing(1e-4);
    assert_eq!(question.query.eval(&db).unwrap(), native.eval(&db).unwrap());
}

#[test]
fn q_marital_asset_parses_and_evaluates() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 5_000,
        seed: 7,
    });
    let question = qparse::parse_question(db.schema(), &asset("questions/q_marital.exq")).unwrap();
    assert_eq!(question.query.arity(), 4);
    let v = question.query.eval(&db).unwrap();
    assert!(v.is_finite() && v > 0.5 && v < 5.0, "Q_Marital = {v}");
}

#[test]
fn bump_question_asset_matches_example_22() {
    let db = dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 10,
        ..dblp::DblpConfig::default()
    });
    let question = qparse::parse_question(db.schema(), &asset("questions/bump.exq")).unwrap();
    assert_eq!(question.query.arity(), 4);
    assert_eq!(question.direction, Direction::High);
    let v = question.query.eval(&db).unwrap();
    assert!(v > 1.0, "the bump exists: Q = {v}");
}
