//! End-to-end agreement between Algorithm 1 (cube) and the naive
//! baseline, on both datasets where the additivity conditions hold:
//! the natality table (COUNT(*) with no foreign keys) and the DBLP
//! bibliography (COUNT(DISTINCT pubid) through the back-and-forth key).

use exq::datagen::{dblp, natality};
use exq::prelude::*;
use exq_core::intervention::InterventionEngine;
use exq_core::{additivity, cube_algo, naive, topk};
use exq_relstore::aggregate::AggFunc;

fn assert_tables_agree(
    naive_t: &exq_core::table_m::ExplanationTable,
    cube_t: &exq_core::table_m::ExplanationTable,
) {
    assert_eq!(naive_t.totals, cube_t.totals);
    assert_eq!(naive_t.len(), cube_t.len(), "same candidate set");
    for (n, c) in naive_t.rows.iter().zip(&cube_t.rows) {
        assert_eq!(n.coord, c.coord);
        assert_eq!(n.values, c.values, "v_j at {:?}", n.coord);
        assert!(
            (n.mu_interv - c.mu_interv).abs() < 1e-9,
            "μ_interv at {:?}: naive {} vs cube {}",
            n.coord,
            n.mu_interv,
            c.mu_interv
        );
        assert!(
            (n.mu_aggr - c.mu_aggr).abs() < 1e-9,
            "μ_aggr at {:?}",
            n.coord
        );
    }
}

#[test]
fn natality_count_star_tables_agree() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 2_000,
        seed: 3,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let marital = schema.attr("Natality", "marital").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::double_ratio(
            AggregateQuery::count_star(Predicate::and([
                Predicate::eq(marital, "married"),
                Predicate::eq(ap, "good"),
            ])),
            AggregateQuery::count_star(Predicate::and([
                Predicate::eq(marital, "married"),
                Predicate::eq(ap, "poor"),
            ])),
            AggregateQuery::count_star(Predicate::and([
                Predicate::eq(marital, "unmarried"),
                Predicate::eq(ap, "good"),
            ])),
            AggregateQuery::count_star(Predicate::and([
                Predicate::eq(marital, "unmarried"),
                Predicate::eq(ap, "poor"),
            ])),
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![
        schema.attr("Natality", "tobacco").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
    ];

    let engine = InterventionEngine::new(&db);
    assert!(additivity::query_is_additive(
        &db,
        engine.universal(),
        &question.query
    ));

    let naive_t = naive::explanation_table_naive(&db, &engine, &question, &dims).unwrap();
    let u = Universal::compute(&db, &db.full_view());
    let cube_t = cube_algo::explanation_table(
        &db,
        &u,
        &question,
        &dims,
        cube_algo::CubeAlgoConfig::checked(),
    )
    .unwrap();
    assert_tables_agree(&naive_t, &cube_t);
}

#[test]
fn dblp_count_distinct_tables_agree() {
    // COUNT(DISTINCT pubid) through the back-and-forth key, three-table
    // join, selections on attributes of both Author and Publication whose
    // consistency with the explanation atoms the footnote-11 argument
    // needs (venue/year live on Publication; the explanation attributes
    // are Author-side).
    let db = dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 6,
        years: (1998, 2008),
        authors_per_institution: 4,
        seed: 9,
    });
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::between(year, 1998, 2003),
                ]),
            },
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::between(year, 2004, 2008),
                ]),
            },
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![schema.attr("Author", "inst").unwrap()];

    let engine = InterventionEngine::new(&db);
    assert!(additivity::query_is_additive(
        &db,
        engine.universal(),
        &question.query
    ));

    let naive_t = naive::explanation_table_naive(&db, &engine, &question, &dims).unwrap();
    let u = Universal::compute(&db, &db.full_view());
    let cube_t = cube_algo::explanation_table(
        &db,
        &u,
        &question,
        &dims,
        cube_algo::CubeAlgoConfig::checked(),
    )
    .unwrap();
    assert_tables_agree(&naive_t, &cube_t);
}

#[test]
fn topk_strategies_agree_on_real_table() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 5_000,
        seed: 5,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(ap, "good")),
            AggregateQuery::count_star(Predicate::eq(ap, "poor")),
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![
        schema.attr("Natality", "tobacco").unwrap(),
        schema.attr("Natality", "prenatal").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
    ];
    let u = Universal::compute(&db, &db.full_view());
    let m = cube_algo::explanation_table(
        &db,
        &u,
        &question,
        &dims,
        cube_algo::CubeAlgoConfig::checked(),
    )
    .unwrap();

    for kind in [
        topk::DegreeKind::Intervention,
        topk::DegreeKind::Aggravation,
    ] {
        for k in [1, 5, 20] {
            let sj = topk::top_k(
                &m,
                kind,
                k,
                topk::TopKStrategy::MinimalSelfJoin,
                topk::MinimalityPolarity::PreferGeneral,
            );
            let ap_ = topk::top_k(
                &m,
                kind,
                k,
                topk::TopKStrategy::MinimalAppend,
                topk::MinimalityPolarity::PreferGeneral,
            );
            // The two minimality strategies agree whenever degrees are
            // distinct; with the smoothing the real table has distinct
            // degrees almost surely. Compare explanation sets.
            let a: Vec<_> = sj.iter().map(|r| r.row).collect();
            let b: Vec<_> = ap_.iter().map(|r| r.row).collect();
            assert_eq!(a, b, "kind={kind:?} k={k}");

            // Every returned explanation must be minimal: no strict
            // generalization in M with ≥ degree.
            for r in &sj {
                let row = &m.rows[r.row];
                for other in &m.rows {
                    let degree = |x: &exq_core::table_m::ExplanationRow| match kind {
                        topk::DegreeKind::Intervention => x.mu_interv,
                        topk::DegreeKind::Aggravation => x.mu_aggr,
                    };
                    if other.arity() < row.arity() && other.coord_generalizes(row) {
                        assert!(
                            degree(other) < degree(row),
                            "non-minimal output {:?}",
                            row.coord
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn no_minimal_contains_minimal_results() {
    // Every minimal top-k explanation appears in a long-enough NoMinimal
    // prefix (minimality only filters, never invents).
    let db = natality::generate(&natality::NatalityConfig {
        rows: 3_000,
        seed: 6,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(ap, "good")),
            AggregateQuery::count_star(Predicate::eq(ap, "poor")),
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![
        schema.attr("Natality", "age").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
    ];
    let u = Universal::compute(&db, &db.full_view());
    let m = cube_algo::explanation_table(
        &db,
        &u,
        &question,
        &dims,
        cube_algo::CubeAlgoConfig::checked(),
    )
    .unwrap();
    let all = topk::top_k(
        &m,
        topk::DegreeKind::Intervention,
        m.len(),
        topk::TopKStrategy::NoMinimal,
        topk::MinimalityPolarity::PreferGeneral,
    );
    let minimal = topk::top_k(
        &m,
        topk::DegreeKind::Intervention,
        10,
        topk::TopKStrategy::MinimalSelfJoin,
        topk::MinimalityPolarity::PreferGeneral,
    );
    let all_rows: Vec<usize> = all.iter().map(|r| r.row).collect();
    for r in &minimal {
        assert!(all_rows.contains(&r.row));
    }
}

/// Differential metrics: both engines must report the *same*
/// `engine.candidates_evaluated`, equal to the table length — the cube
/// engine may not silently skip (or invent) candidates relative to the
/// per-candidate baseline.
fn assert_candidate_counters_agree(
    db: &exq_relstore::Database,
    question: &UserQuestion,
    dims: &[exq_relstore::AttrRef],
) {
    let naive_sink = exq::obs::MetricsSink::recording();
    let naive_exec = exq_relstore::ExecConfig::sequential().with_metrics(naive_sink.clone());
    let engine = InterventionEngine::new(db);
    let naive_t =
        naive::explanation_table_naive_with(db, &engine, question, dims, &naive_exec).unwrap();

    let cube_sink = exq::obs::MetricsSink::recording();
    let cube_exec = exq_relstore::ExecConfig::sequential().with_metrics(cube_sink.clone());
    let u = Universal::compute(db, &db.full_view());
    let cube_t = cube_algo::explanation_table(
        db,
        &u,
        question,
        dims,
        cube_algo::CubeAlgoConfig::checked().with_exec(cube_exec),
    )
    .unwrap();

    assert_tables_agree(&naive_t, &cube_t);
    let n = naive_sink.snapshot().counter("engine.candidates_evaluated");
    let c = cube_sink.snapshot().counter("engine.candidates_evaluated");
    assert_eq!(n, naive_t.len() as u64, "naive counter == |M|");
    assert_eq!(c, cube_t.len() as u64, "cube counter == |M|");
    assert_eq!(n, c, "engines evaluated different candidate sets");
}

#[test]
fn natality_engines_report_same_candidates_evaluated() {
    let db = natality::generate(&natality::NatalityConfig {
        rows: 2_000,
        seed: 3,
    });
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(ap, "good")),
            AggregateQuery::count_star(Predicate::eq(ap, "poor")),
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![
        schema.attr("Natality", "tobacco").unwrap(),
        schema.attr("Natality", "edu").unwrap(),
    ];
    assert_candidate_counters_agree(&db, &question, &dims);
}

#[test]
fn dblp_engines_report_same_candidates_evaluated() {
    let db = dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 6,
        years: (1998, 2008),
        authors_per_institution: 4,
        seed: 9,
    });
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::ratio(
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::between(year, 1998, 2003),
                ]),
            },
            AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::and([
                    Predicate::eq(venue, "SIGMOD"),
                    Predicate::between(year, 2004, 2008),
                ]),
            },
        )
        .with_smoothing(1e-4),
        Direction::High,
    );
    let dims = vec![schema.attr("Author", "inst").unwrap()];
    assert_candidate_counters_agree(&db, &question, &dims);
}
