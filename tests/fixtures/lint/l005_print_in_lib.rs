// exq-lint-fixture: crate=core
// Seeded violation for L005: stdio in a library crate.
pub fn report(n: usize) {
    println!("processed {n} rows");
    if n == 0 {
        eprintln!("nothing to do");
    }
}
