// exq-lint-fixture: crate=obs
// One half of the seeded L006 violation: the "original" helper.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}
