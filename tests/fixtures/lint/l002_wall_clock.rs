// exq-lint-fixture: crate=serve
// Seeded violation for L002: wall-clock reads in library code outside
// the obs span internals.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t = Instant::now();
    drop(t);
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos()
}
