// exq-lint-fixture: crate=serve
// Seeded violation for L004: float accumulation driven by hash-order
// iteration — flagged in every crate, not just determinism-scoped ones.
use std::collections::HashMap;

pub fn total(weights: &HashMap<String, f64>) -> f64 {
    weights.values().sum::<f64>()
}
