// exq-lint-fixture: crate=analyze
// The other half of the seeded L006 violation: a copy of
// l006_copy_a.rs's helper that wraps the same loop in quotes — the
// near-duplicate detector must pair them across the crate boundary and
// anchor the diagnostic here (the later file in path order).
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
