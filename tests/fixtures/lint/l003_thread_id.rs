// exq-lint-fixture: crate=core
// Seeded violation for L003: thread-identity logic outside par.rs /
// trace.rs — results must not depend on which worker ran.
pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
