// exq-lint-fixture: crate=relstore
// Seeded violation for L001: hash-order iteration in a
// determinism-scoped crate, in both recognised shapes.
use std::collections::HashMap;

pub fn keys_of(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn walk() -> u64 {
    let mut seen = HashMap::new();
    seen.insert(1u64, 2u64);
    let mut total = 0;
    for (k, v) in &seen {
        total += k + v;
    }
    total
}
