//! Integration tests for the convergence results of Section 3:
//! Propositions 3.4, 3.5, 3.10 and 3.11, and the Example 3.7 chain.

use exq::datagen::{chain, paper_examples};
use exq::prelude::*;
use exq_core::causal::DataCausalGraph;
use exq_core::explanation::Explanation;
use exq_core::intervention::InterventionEngine;

/// Proposition 3.4: P converges in at most n = Σ|R_i| iterations.
#[test]
fn prop_34_global_bound() {
    for p in [1, 2, 3, 5] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        let iv = engine.compute(&phi);
        assert!(iv.iterations <= db.total_tuples());
    }
}

/// The Example 3.7 chain needs Θ(n) iterations: exactly n − 2 under the
/// full-reduction reading of Rule (ii) (the paper's one-hop trace counts
/// n − 1; see the `intervention` module docs).
#[test]
fn example_37_chain_is_linear() {
    for p in [1, 2, 4, 10] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        let iv = engine.compute(&phi);
        let n = db.total_tuples();
        assert_eq!(iv.iterations, n - 2, "p = {p}");
        assert_eq!(iv.total_deleted(), n, "the whole chain cascades away");
        assert!(exq_core::intervention::is_valid_intervention(
            &db,
            phi.conjunction(),
            &iv.delta
        ));
    }
}

/// Proposition 3.5: with no back-and-forth keys, Δ² = Δ³ (at most two
/// productive iterations).
#[test]
fn prop_35_two_step_convergence_without_back_and_forth() {
    let db = paper_examples::figure3_standard_only();
    let engine = InterventionEngine::new(&db);
    let schema = db.schema();
    let candidates = [
        Explanation::new(vec![Atom::eq(schema.attr("Author", "name").unwrap(), "JG")]),
        Explanation::new(vec![Atom::eq(schema.attr("Author", "dom").unwrap(), "com")]),
        Explanation::new(vec![Atom::eq(
            schema.attr("Publication", "year").unwrap(),
            2001,
        )]),
        Explanation::new(vec![
            Atom::eq(schema.attr("Author", "name").unwrap(), "JG"),
            Atom::eq(schema.attr("Publication", "year").unwrap(), 2001),
        ]),
        Explanation::trivial(),
    ];
    for phi in candidates {
        let iv = engine.compute(&phi);
        assert!(
            iv.iterations <= 2,
            "{} took {} iterations",
            phi.display(&db),
            iv.iterations
        );
    }

    // The same holds on Example 2.9/2.10 (all keys standard).
    for db in [paper_examples::example_29(), paper_examples::example_210()] {
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(vec![
            Atom::eq(db.schema().attr("R1", "x").unwrap(), "a"),
            Atom::eq(db.schema().attr("R2", "y").unwrap(), "b"),
            Atom::eq(db.schema().attr("R3", "z").unwrap(), "c"),
        ]);
        let iv = engine.compute(&phi);
        assert!(iv.iterations <= 2);
    }
}

/// Proposition 3.10: P converges in ≤ 2q + 2 iterations, q = max causal
/// length from a seed tuple.
#[test]
fn prop_310_causal_length_bound() {
    // Running example: several explanations, graph computed per instance.
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let graph = DataCausalGraph::build(&db);
    let schema = db.schema();
    let candidates = [
        Explanation::new(vec![Atom::eq(schema.attr("Author", "name").unwrap(), "RR")]),
        Explanation::new(vec![Atom::eq(
            schema.attr("Publication", "venue").unwrap(),
            "SIGMOD",
        )]),
        Explanation::new(vec![
            Atom::eq(schema.attr("Author", "name").unwrap(), "JG"),
            Atom::eq(schema.attr("Publication", "year").unwrap(), 2001),
        ]),
    ];
    for phi in candidates {
        let iv = engine.compute(&phi);
        let starts = DataCausalGraph::tuple_ids(&iv.seeds);
        let q = graph
            .max_causal_length_from(&starts, 10_000_000)
            .expect("budget suffices");
        assert!(
            iv.iterations <= 2 * q + 2,
            "{}: {} iterations > 2·{q}+2",
            phi.display(&db),
            iv.iterations
        );
    }

    // Chain: the bound must hold there too (q grows with p).
    for p in [1, 2, 3] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        let iv = engine.compute(&phi);
        let graph = DataCausalGraph::build(&db);
        let starts = DataCausalGraph::tuple_ids(&iv.seeds);
        let q = graph
            .max_causal_length_from(&starts, 10_000_000)
            .expect("budget suffices");
        assert!(
            iv.iterations <= 2 * q + 2,
            "p={p}: {} > 2·{q}+2",
            iv.iterations
        );
    }
}

/// Proposition 3.11: simple acyclic schema causal graph with at most one
/// back-and-forth key per relation → ≤ 2s + 2 iterations (s = number of
/// back-and-forth keys), so recursion can be unrolled.
#[test]
fn prop_311_bounded_unrolling() {
    let db = paper_examples::figure3();
    let g = db.schema().causal_graph();
    assert!(g.is_simple());
    assert!(g.max_back_and_forth_per_relation() <= 1);
    let s = db.schema().back_and_forth_count();
    assert_eq!(s, 1);

    let engine = InterventionEngine::new(&db);
    let schema = db.schema();
    // Exhaustive over all single-atom equality explanations on every
    // attribute value in the data.
    for rel in 0..schema.relation_count() {
        for col in 0..schema.relation(rel).arity() {
            let attr = AttrRef { rel, col };
            for row in 0..db.relation_len(rel) {
                let v = db.value(attr, row).clone();
                let phi = Explanation::new(vec![Atom::eq(attr, v)]);
                let iv = engine.compute(&phi);
                assert!(
                    iv.iterations <= 2 * s + 2,
                    "{} took {} iterations",
                    phi.display(&db),
                    iv.iterations
                );
            }
        }
    }

    // Contrast: the chain schema violates the precondition (two
    // back-and-forth keys on R3) and exceeds the 2s+2 bound.
    let db = chain::chain(4);
    let engine = InterventionEngine::new(&db);
    let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
    let iv = engine.compute(&phi);
    let s = db.schema().back_and_forth_count();
    assert!(iv.iterations > 2 * s + 2, "recursion genuinely needed");
}

/// The monotone iteration is monotone: Δ^ℓ ⊆ Δ^{ℓ+1} — checked indirectly
/// by re-running from the computed seeds and confirming idempotence.
#[test]
fn closure_is_idempotent() {
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let phi = Explanation::new(vec![Atom::eq(
        db.schema().attr("Author", "name").unwrap(),
        "RR",
    )]);
    let iv = engine.compute(&phi);
    // Closing again from the final Δ as seeds changes nothing.
    let (again, iterations) = engine.close_from_seeds(&iv.delta);
    assert_eq!(again, iv.delta);
    assert!(
        iterations <= 1,
        "one confirming pass at most, got {iterations}"
    );
}
