//! Golden-diagnostic tests over the seeded-violation lint corpus.
//!
//! Every `tests/fixtures/lint/NAME.rs` is a deliberately-bad source
//! (its `// exq-lint-fixture: crate=…` directive places it in the crate
//! whose rules it seeds) with the expected diagnostics in
//! `NAME.expected` — one `CODE file:line:col` line per diagnostic, in
//! emission order. All fixtures are linted as one source set so the
//! cross-file rules (L006) see the pairs. Regenerate after an
//! intentional rule change with
//! `EXQ_BLESS=1 cargo test --test lint_fixtures`.

use exq::lint::{lint_sources, LintSource};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

#[test]
fn seeded_violations_produce_golden_diagnostics() {
    let dir = fixture_dir();
    let bless = std::env::var_os("EXQ_BLESS").is_some();
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(|e| {
            e.ok()?
                .file_name()
                .to_str()?
                .strip_suffix(".rs")
                .map(str::to_string)
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 7,
        "seeded-violation corpus went missing: {names:?}"
    );

    let sources: Vec<LintSource> = names
        .iter()
        .map(|name| {
            let rel = format!("tests/fixtures/lint/{name}.rs");
            let text = fs::read_to_string(dir.join(format!("{name}.rs"))).unwrap();
            LintSource::new(rel, text)
        })
        .collect();
    let diags = lint_sources(&sources);

    // Every rule with a stable code must be exercised by the corpus.
    for code in ["L001", "L002", "L003", "L004", "L005", "L006"] {
        assert!(
            diags.iter().any(|d| d.code == code),
            "no fixture seeds {code}; emitted: {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }

    let mut failures = Vec::new();
    for name in &names {
        let rel = format!("tests/fixtures/lint/{name}.rs");
        let actual: String = diags
            .iter()
            .filter(|d| d.file == rel)
            .map(|d| format!("{} {}:{}:{}\n", d.code, d.file, d.span.line, d.span.col))
            .collect();
        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &actual).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!("missing {} (run with EXQ_BLESS=1)", expected_path.display())
        });
        if actual != expected {
            failures.push(format!(
                "{name}: expected\n{expected}\nbut the linter emitted\n{actual}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
}
