//! The workspace must pass its own linter: zero diagnostics from the
//! determinism rules, the duplicate detector, and the cross-artifact
//! audits. This is the same check CI runs via
//! `exq lint --deny-warnings`; keeping it as a plain test means a
//! violation fails `cargo test` locally before it reaches CI.

use exq::lint::{audit, collect_sources, find_workspace_root, lint_sources};
use std::path::Path;

#[test]
fn workspace_self_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let sources = collect_sources(&root).expect("collect workspace sources");
    assert!(
        sources.len() > 50,
        "source walk collapsed ({} files) — walker regression?",
        sources.len()
    );

    let mut diags = lint_sources(&sources);
    let (audit_diags, _extra) =
        audit::audit_workspace(&root, &sources).expect("cross-artifact audits");
    diags.extend(audit_diags);

    assert!(
        diags.is_empty(),
        "the workspace no longer self-lints clean:\n{}",
        diags
            .iter()
            .map(|d| format!(
                "{} {}:{}:{} {}",
                d.code, d.file, d.span.line, d.span.col, d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
