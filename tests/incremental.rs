//! Epoch-parity differential suite for live appends (ISSUE 8).
//!
//! The incremental-maintenance contract: appending rows to a
//! [`PreparedDb`] and delta-maintaining its intermediates must be
//! **indistinguishable** from throwing everything away and rebuilding
//! from scratch — at every epoch, for every workload, at every thread
//! count. These tests interleave append batches with explains on the
//! two headline workloads (DBLP Figure 2, natality Figure 10) and
//! require bit-identical reduced views, universal relations, and
//! explanation tables between the incremental and rebuilt pipelines,
//! then re-run the whole epoch sequence at 2 and 7 threads against the
//! sequential baseline (the PR 2 bit-identity contract).

use exq::core::prepared::PreparedDb;
use exq::datagen::{dblp, natality};
use exq::prelude::*;
use exq_relstore::aggregate::AggFunc;
use exq_relstore::{AppendBatch, Database, ExecConfig, Value};
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 2, 7];

/// A small-but-signal-bearing DBLP instance (the CLI's `dblp-small`).
fn dblp_db() -> Database {
    dblp::generate(&dblp::DblpConfig {
        papers_per_year_base: 6,
        authors_per_institution: 4,
        ..dblp::DblpConfig::default()
    })
}

/// The Figure 2 question: industrial vs academic SIGMOD output across
/// two windows (same shape as `tests/thread_determinism.rs`).
fn dblp_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

fn natality_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let ap = schema.attr("Natality", "ap").unwrap();
    let race = schema.attr("Natality", "race").unwrap();
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
        Direction::High,
    )
}

/// Clone `db` keeping only the first `keep` rows of `relation`; the
/// held-back tail comes back as append-ready rows. Holding back a
/// relation nothing references (the bridge table, or the only table)
/// keeps every prefix foreign-key-consistent.
fn hold_back(db: &Database, relation: &str, keep: usize) -> (Database, Vec<Vec<Value>>) {
    let rel_idx = db.schema().relation_index(relation).unwrap();
    let mut initial = Database::new(db.schema().clone());
    for r in 0..db.schema().relation_count() {
        let name = db.schema().relation(r).name.clone();
        let limit = if r == rel_idx {
            keep
        } else {
            db.relation(r).len()
        };
        for row in db.relation(r).rows().take(limit) {
            initial.insert(&name, row.to_vec()).unwrap();
        }
    }
    let held: Vec<Vec<Value>> = db
        .relation(rel_idx)
        .rows()
        .skip(keep)
        .map(<[Value]>::to_vec)
        .collect();
    (initial, held)
}

/// Split `rows` into `n` append batches for `relation`.
fn batches_of(relation: &str, rows: Vec<Vec<Value>>, n: usize) -> Vec<AppendBatch> {
    let chunk = rows.len().div_ceil(n);
    rows.chunks(chunk.max(1))
        .map(|c| vec![(relation.to_string(), c.to_vec())])
        .collect()
}

/// The differential driver. Sequentially: at every epoch (including
/// epoch 0), the incrementally maintained `PreparedDb` must equal a
/// from-scratch rebuild of the same rows — reduced view, universal
/// relation, and explanation table, bit for bit. Then the same epoch
/// walk at 2 and 7 threads must reproduce the sequential tables.
fn epochs_match_rebuild(
    initial: &Database,
    batches: &[AppendBatch],
    question: impl Fn(&Database) -> UserQuestion,
    attrs: &[&str],
) {
    let table_of = |p: &PreparedDb| {
        p.explainer(question(p.db()))
            .attr_names(attrs)
            .unwrap()
            .table()
            .unwrap()
            .0
    };

    // Sequential pass: full differential against the rebuild.
    let mut baseline_tables = Vec::with_capacity(batches.len() + 1);
    let exec = ExecConfig::sequential();
    let mut prepared = PreparedDb::build_with(Arc::new(initial.clone()), &exec);
    for epoch in 0..=batches.len() {
        if epoch > 0 {
            let (next, appended) = prepared
                .append_with(batches[epoch - 1].clone(), &exec)
                .unwrap();
            assert!(appended > 0, "epoch {epoch} appended nothing");
            prepared = next;
        }
        let rebuilt = PreparedDb::build_with(Arc::new(prepared.db().clone()), &exec);
        assert_eq!(
            prepared.reduced(),
            rebuilt.reduced(),
            "epoch {epoch}: reduced view diverged from rebuild"
        );
        assert_eq!(prepared.universal().len(), rebuilt.universal().len());
        assert!(
            prepared.universal().iter().eq(rebuilt.universal().iter()),
            "epoch {epoch}: universal relation diverged from rebuild"
        );
        let incremental = table_of(&prepared);
        assert!(!incremental.is_empty(), "epoch {epoch}: empty table");
        assert_eq!(
            incremental,
            table_of(&rebuilt),
            "epoch {epoch}: incremental explain differs from rebuild-from-scratch"
        );
        baseline_tables.push(incremental);
    }

    // Parallel passes: the same epoch walk reproduces the sequential
    // tables bit-for-bit (and therefore the rebuilds, transitively).
    for threads in THREADS {
        let exec = ExecConfig::with_threads(threads);
        let mut prepared = PreparedDb::build_with(Arc::new(initial.clone()), &exec);
        for epoch in 0..=batches.len() {
            if epoch > 0 {
                prepared = prepared
                    .append_with(batches[epoch - 1].clone(), &exec)
                    .unwrap()
                    .0;
            }
            assert_eq!(
                table_of(&prepared),
                baseline_tables[epoch],
                "threads = {threads}, epoch {epoch}"
            );
        }
    }
}

#[test]
fn dblp_appends_are_indistinguishable_from_rebuild_at_every_epoch() {
    let full = dblp_db();
    let authored = full.schema().relation_index("Authored").unwrap();
    let keep = full.relation(authored).len() * 8 / 10;
    let (initial, held) = hold_back(&full, "Authored", keep);
    assert!(held.len() >= 3, "need enough held-back rows for 3 batches");
    let batches = batches_of("Authored", held, 3);
    epochs_match_rebuild(
        &initial,
        &batches,
        dblp_question,
        &["Author.inst", "Author.name"],
    );
}

#[test]
fn natality_appends_are_indistinguishable_from_rebuild_at_every_epoch() {
    let full = natality::generate(&natality::NatalityConfig {
        rows: 6_000,
        seed: 7,
    });
    let (initial, held) = hold_back(&full, "Natality", 4_800);
    let batches = batches_of("Natality", held, 2);
    epochs_match_rebuild(
        &initial,
        &batches,
        natality_question,
        &[
            "Natality.age",
            "Natality.tobacco",
            "Natality.prenatal",
            "Natality.edu",
            "Natality.marital",
        ],
    );
}

/// A `POST /v1/datasets/{name}/rows` body for one append batch.
fn append_body(batch: &AppendBatch) -> String {
    use std::fmt::Write as _;
    let cell = |v: &Value| match v {
        Value::Str(s) => format!("\"{}\"", exq::obs::escape_json(s)),
        other => other.to_string(),
    };
    let mut body = String::from("{\"rows\": {");
    for (i, (rel, rows)) in batch.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let _ = write!(body, "\"{}\": [", exq::obs::escape_json(rel));
        for (j, row) in rows.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let cells: Vec<String> = row.iter().map(cell).collect();
            let _ = write!(body, "[{}]", cells.join(","));
        }
        body.push(']');
    }
    body.push_str("}}");
    body
}

/// Zero every `"total_ns": N` so two servers' explain documents compare
/// byte-for-byte (span durations are the only wall-clock content).
fn scrub_total_ns(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(at) = rest.find("\"total_ns\": ") {
        let (head, tail) = rest.split_at(at + "\"total_ns\": ".len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// ISSUE 9 satellite: concurrent appends to the *same* dataset from
/// multiple HTTP clients serialize cleanly. The N responses must carry
/// epochs `1..=N` exactly once each (the server's write lock makes the
/// bumps strictly monotonic — no epoch is skipped or handed out twice),
/// and the final state must be byte-identical to replaying the same
/// batches serially in the order the server chose.
#[test]
fn concurrent_http_appends_serialize_into_monotonic_epochs() {
    use exq::serve::{client, Catalog, ServerConfig};

    let full = dblp_db();
    let authored = full.schema().relation_index("Authored").unwrap();
    let keep = full.relation(authored).len() * 8 / 10;
    let (initial, held) = hold_back(&full, "Authored", keep);
    let clients = 4usize;
    let batches = batches_of("Authored", held, clients);
    assert_eq!(batches.len(), clients, "need one batch per client");

    let question = include_str!("../assets/questions/bump.exq");
    let explain_request = format!(
        "{{\"dataset\": \"dblp\", \"question\": \"{}\", \"attrs\": [\"Author.inst\"], \"top\": 3}}",
        exq::obs::escape_json(question)
    );
    let boot = |db: &Database| {
        let mut catalog = Catalog::new();
        catalog
            .insert_database("dblp", Arc::new(db.clone()), &ExecConfig::auto())
            .unwrap();
        exq::serve::start(
            catalog,
            ServerConfig {
                threads: clients,
                ..ServerConfig::default()
            },
            exq::obs::MetricsSink::recording(),
        )
        .expect("bind append server")
    };

    // Fire all batches at once, one keep-alive connection per client.
    let concurrent = boot(&initial);
    let addr = concurrent.addr();
    let mut outcomes: Vec<(usize, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, batch)| {
                scope.spawn(move || {
                    let mut conn = client::Connection::new(addr);
                    let response = conn
                        .post_json("/v1/datasets/dblp/rows", &append_body(batch))
                        .unwrap();
                    assert_eq!(response.status, 200, "{}", response.text());
                    let epoch: u64 = response
                        .header("x-exq-epoch")
                        .expect("append response must carry X-Exq-Epoch")
                        .parse()
                        .unwrap();
                    (i, epoch)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Epochs are a permutation of 1..=N: strictly monotonic bumps, none
    // skipped, none duplicated.
    outcomes.sort_by_key(|&(_, epoch)| epoch);
    let epochs: Vec<u64> = outcomes.iter().map(|&(_, e)| e).collect();
    assert_eq!(
        epochs,
        (1..=clients as u64).collect::<Vec<_>>(),
        "concurrent appends must serialize into consecutive epochs"
    );

    // Replay the batches serially in the server's chosen order on a
    // fresh server: the two must now be indistinguishable — catalog
    // listing and explain document, byte for byte.
    let replay = boot(&initial);
    for &(batch_idx, _) in &outcomes {
        let response = client::post_json(
            replay.addr(),
            "/v1/datasets/dblp/rows",
            &append_body(&batches[batch_idx]),
        )
        .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    let listing = client::get(addr, "/v1/datasets").unwrap();
    let replay_listing = client::get(replay.addr(), "/v1/datasets").unwrap();
    assert_eq!(listing.status, 200);
    assert_eq!(
        listing.text(),
        replay_listing.text(),
        "catalog listing must match a serial replay"
    );
    assert!(listing.text().contains(&format!("\"epoch\": {clients}")));

    let concurrent_explain = client::post_json(addr, "/v1/explain", &explain_request).unwrap();
    let replay_explain = client::post_json(replay.addr(), "/v1/explain", &explain_request).unwrap();
    assert_eq!(
        concurrent_explain.status,
        200,
        "{}",
        concurrent_explain.text()
    );
    assert_eq!(replay_explain.status, 200, "{}", replay_explain.text());
    assert_eq!(
        scrub_total_ns(&concurrent_explain.text()),
        scrub_total_ns(&replay_explain.text()),
        "post-append explain must be byte-identical to a serial replay"
    );

    concurrent.shutdown();
    replay.shutdown();
}

/// The append path's own metrics obey the observability contract: the
/// normalized snapshot (counters and span counts, wall-clock zeroed) is
/// bit-identical at every thread count, and DBLP's single join
/// component takes the delta path, never the full-rebuild fallback.
#[test]
fn append_metrics_snapshot_is_identical_across_thread_counts() {
    let full = dblp_db();
    let authored = full.schema().relation_index("Authored").unwrap();
    let keep = full.relation(authored).len() * 9 / 10;
    let (initial, held) = hold_back(&full, "Authored", keep);
    let batch = vec![("Authored".to_string(), held)];
    let snapshot = |threads: usize| {
        let sink = exq::obs::MetricsSink::recording();
        let exec = ExecConfig::with_threads(threads).with_metrics(sink.clone());
        let prepared = PreparedDb::build_with(
            Arc::new(initial.clone()),
            &ExecConfig::with_threads(threads),
        );
        prepared.append_with(batch.clone(), &exec).unwrap();
        sink.snapshot().normalized()
    };
    let base = snapshot(1);
    assert!(base.counter("ingest.delta.tuples") > 0);
    assert_eq!(base.counter("ingest.delta.full_rebuilds"), 0);
    for threads in THREADS {
        assert_eq!(snapshot(threads), base, "threads = {threads}");
    }
}
