//! Property tests over *random tree schemas* — arbitrary depth, arbitrary
//! mixes of standard and back-and-forth foreign keys (including several
//! back-and-forth keys meeting at one relation, where recursion is
//! genuinely required). This is the broadest exercise of program **P**'s
//! invariants.

use exq::datagen::random::{random_tree_db, RandomDbConfig};
use exq::prelude::*;
use exq_core::explanation::Explanation;
use exq_core::intervention::{is_valid_intervention, InterventionEngine};
use exq_relstore::semijoin;
use proptest::prelude::*;

/// A single-atom explanation over a random attribute/value of the
/// instance, addressed by indices so it is always resolvable.
fn pick_phi(db: &Database, rel_sel: usize, row_sel: usize, col_sel: usize) -> Explanation {
    let rel = rel_sel % db.schema().relation_count();
    let arity = db.schema().relation(rel).arity();
    let col = col_sel % arity;
    let rows = db.relation_len(rel);
    let row = row_sel % rows.max(1);
    let attr = AttrRef { rel, col };
    let value = db.value(attr, row).clone();
    Explanation::new(vec![Atom::eq(attr, value)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Validity, minimality and the Prop 3.4 bound on random tree schemas.
    #[test]
    fn program_p_invariants_on_random_schemas(
        seed in 0u64..10_000,
        relations in 1usize..6,
        bf_prob in 0.0f64..1.0,
        rel_sel in any::<usize>(),
        row_sel in any::<usize>(),
        col_sel in any::<usize>(),
        extra_row in any::<usize>(),
    ) {
        let cfg = RandomDbConfig {
            relations,
            back_and_forth_probability: bf_prob,
            seed,
            ..RandomDbConfig::default()
        };
        let Some(db) = random_tree_db(&cfg) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = pick_phi(&db, rel_sel, row_sel, col_sel);
        let iv = engine.compute(&phi);

        // Definition 2.6 (validity).
        prop_assert!(
            is_valid_intervention(&db, phi.conjunction(), &iv.delta),
            "invalid intervention for {} on seed {seed}",
            phi.display(&db)
        );

        // Proposition 3.4 (global bound).
        prop_assert!(iv.iterations <= db.total_tuples());

        // Proposition 3.5 when no back-and-forth keys.
        if !db.schema().has_back_and_forth() {
            prop_assert!(iv.iterations <= 2);
        }

        // Proposition 3.11 when its preconditions hold.
        let g = db.schema().causal_graph();
        if g.is_simple() && g.max_back_and_forth_per_relation() <= 1 {
            let s = db.schema().back_and_forth_count();
            prop_assert!(iv.iterations <= 2 * s + 2, "{} > 2*{s}+2", iv.iterations);
        }

        // Theorem 3.3 (minimality): the closure of a seed superset
        // contains Δ^φ.
        let mut seeds = iv.seeds.clone();
        let rel = rel_sel % db.schema().relation_count();
        if db.relation_len(rel) > 0 {
            seeds[rel].insert(extra_row % db.relation_len(rel));
        }
        let (closure, _) = engine.close_from_seeds(&seeds);
        prop_assert!(is_valid_intervention(&db, phi.conjunction(), &closure));
        for (small, big) in iv.delta.iter().zip(&closure) {
            prop_assert!(small.is_subset(big));
        }

        // The residual database is semijoin-reduced and φ-free.
        let residual = db.view_minus(&iv.delta);
        prop_assert!(semijoin::is_reduced(&db, &residual));
        let u = Universal::compute(&db, &residual);
        for t in u.iter() {
            prop_assert!(!phi.eval(&db, t));
        }
    }

    /// The Section 3.3 non-recursive pipeline equals the fixpoint wherever
    /// it applies (Props 3.5/3.11 schemas).
    #[test]
    fn unrolled_equals_fixpoint_on_random_schemas(
        seed in 0u64..10_000,
        relations in 1usize..6,
        bf_prob in 0.0f64..1.0,
        rel_sel in any::<usize>(),
        row_sel in any::<usize>(),
        col_sel in any::<usize>(),
    ) {
        let cfg = RandomDbConfig {
            relations,
            back_and_forth_probability: bf_prob,
            seed,
            ..RandomDbConfig::default()
        };
        let Some(db) = random_tree_db(&cfg) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = pick_phi(&db, rel_sel, row_sel, col_sel);
        let fixpoint = engine.compute(&phi);
        match engine.compute_unrolled(&phi) {
            Some(unrolled) => prop_assert_eq!(unrolled.delta, fixpoint.delta),
            None => {
                // Refusal must coincide with the recursive classification.
                prop_assert_eq!(
                    exq_core::causal::convergence_bound(db.schema()),
                    exq_core::causal::ConvergenceBound::RequiresRecursion
                );
            }
        }
    }

    /// Materializing the residual database and re-running the question
    /// gives the same answer as evaluating on the view — the two
    /// evaluation paths agree.
    #[test]
    fn residual_view_equals_materialized_database(
        seed in 0u64..10_000,
        relations in 1usize..5,
        rel_sel in any::<usize>(),
        row_sel in any::<usize>(),
        col_sel in any::<usize>(),
    ) {
        let cfg = RandomDbConfig { relations, seed, ..RandomDbConfig::default() };
        let Some(db) = random_tree_db(&cfg) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let phi = pick_phi(&db, rel_sel, row_sel, col_sel);
        let iv = engine.compute(&phi);

        let question = UserQuestion::new(
            NumericalQuery::single(AggregateQuery::count_star(Predicate::True)),
            Direction::High,
        );
        let on_view = question.query.eval_view(&db, &db.view_minus(&iv.delta)).unwrap();
        let materialized = db.materialize(&db.view_minus(&iv.delta));
        let on_db = question.query.eval(&materialized).unwrap();
        prop_assert_eq!(on_view, on_db);
    }

    /// The Explainer façade always returns the exact table: whenever it
    /// chooses the cube it must agree with the forced-naive ground truth.
    #[test]
    fn facade_matches_ground_truth(
        seed in 0u64..10_000,
        relations in 1usize..5,
        bf_prob in 0.0f64..1.0,
    ) {
        use exq_core::explainer::Explainer;
        use exq_relstore::aggregate::AggFunc;
        let cfg = RandomDbConfig {
            relations,
            back_and_forth_probability: bf_prob,
            seed,
            ..RandomDbConfig::default()
        };
        let Some(db) = random_tree_db(&cfg) else { return Ok(()) };
        // COUNT(DISTINCT R0.id): additive on some draws (depends on the
        // data-level uniqueness check), not on others — exactly the fork
        // the facade automates.
        let id = db.schema().attr("R0", "id").unwrap();
        let data = db.schema().attr("R0", "data").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery {
                    func: AggFunc::CountDistinct(id),
                    selection: Predicate::eq(data, "v0"),
                },
                AggregateQuery {
                    func: AggFunc::CountDistinct(id),
                    selection: Predicate::True,
                },
            ).with_smoothing(1e-4),
            Direction::High,
        );
        let last = db.schema().relation_count() - 1;
        let attr_name = format!("R{last}.data");
        let auto = Explainer::new(&db, question.clone())
            .attr_names(&[&attr_name]).unwrap();
        let naive = Explainer::new(&db, question)
            .attr_names(&[&attr_name]).unwrap()
            .force_naive();
        let (auto_t, _) = auto.table().unwrap();
        let (naive_t, _) = naive.table().unwrap();
        prop_assert_eq!(auto_t.len(), naive_t.len());
        for (a, n) in auto_t.rows.iter().zip(&naive_t.rows) {
            prop_assert_eq!(&a.coord, &n.coord);
            prop_assert!((a.mu_interv - n.mu_interv).abs() < 1e-9,
                "facade diverged from ground truth at {:?}: {} vs {}",
                a.coord, a.mu_interv, n.mu_interv);
            prop_assert!((a.mu_aggr - n.mu_aggr).abs() < 1e-9);
        }
    }

    /// Interventions are *monotone in φ's strength*: a conjunction's
    /// intervention is contained in each conjunct's intervention
    /// (σ_{φ∧ψ}(U) ⊆ σ_φ(U), and the closure is monotone in the seeds).
    #[test]
    fn conjunction_shrinks_intervention(
        seed in 0u64..10_000,
        relations in 2usize..5,
        sel in any::<(usize, usize, usize)>(),
        sel2 in any::<(usize, usize, usize)>(),
    ) {
        let cfg = RandomDbConfig { relations, seed, ..RandomDbConfig::default() };
        let Some(db) = random_tree_db(&cfg) else { return Ok(()) };
        let engine = InterventionEngine::new(&db);
        let a = pick_phi(&db, sel.0, sel.1, sel.2);
        let b = pick_phi(&db, sel2.0, sel2.1, sel2.2);
        let mut both = a.atoms().to_vec();
        both.extend(b.atoms().iter().cloned());
        let conj = Explanation::new(both);

        let iv_a = engine.compute(&a);
        let iv_conj = engine.compute(&conj);
        for (c, single) in iv_conj.delta.iter().zip(&iv_a.delta) {
            prop_assert!(c.is_subset(single), "Δ^(φ∧ψ) ⊄ Δ^φ");
        }
    }
}
