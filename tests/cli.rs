//! End-to-end tests of the `exq` CLI binary: schema parsing, CSV loading,
//! question files, top-K output, and drill-down — the full external
//! surface a non-Rust user touches.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exq-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, contents: &str) -> String {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_exq"))
        .args(args)
        .output()
        .expect("binary runs")
}

const SCHEMA: &str = "
relation Author(id: str key, name: str, dom: str)
relation Authored(id: str key, pubid: str key)
relation Publication(pubid: str key, venue: str)
fk Authored(id) -> Author
fk Authored(pubid) <-> Publication
";

const AUTHORS: &str = "id,name,dom\nA1,JG,edu\nA2,RR,com\nA3,CM,com\n";
const AUTHORED: &str = "id,pubid\nA1,P1\nA2,P1\nA1,P2\nA3,P2\nA2,P3\nA3,P3\n";
const PUBS: &str = "pubid,venue\nP1,SIGMOD\nP2,VLDB\nP3,SIGMOD\n";

const QUESTION: &str = "
agg sigmod = count(distinct Publication.pubid) where venue = 'SIGMOD'
dir high
";

#[test]
fn schema_command_prints_parsed_schema() {
    let dir = workdir("schema");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let out = run(&["schema", "--schema", &schema]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Author(*id: str"));
    assert!(text.contains("back-and-forth keys: 1"));
}

#[test]
fn validate_command_checks_integrity() {
    let dir = workdir("validate");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let out = run(&[
        "validate",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12 tuples"));
    assert!(text.contains("semijoin-reduced: true"));

    // A dangling foreign key fails validation.
    let bad = write(&dir, "bad.csv", "id,pubid\nA1,P1\nA9,P1\n");
    let out = run(&[
        "validate",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={bad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("dangling foreign key"));
}

#[test]
fn explain_command_ranks_explanations() {
    let dir = workdir("explain");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "explain",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name,Author.dom",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Q(D) = 2"), "{text}");
    assert!(text.contains("engine: Cube"), "{text}");
    // RR's removal kills both SIGMOD papers: a top (degree −0) explanation.
    assert!(
        text.lines()
            .any(|l| l.contains("RR") && l.contains("(-0.000000)")),
        "{text}"
    );
}

#[test]
fn explain_naive_matches_cube() {
    let dir = workdir("naive");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let base = [
        "explain",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name",
        "--top",
        "3",
    ]
    .map(String::from);
    let cube = run(&base.iter().map(String::as_str).collect::<Vec<_>>());
    let mut naive_args: Vec<&str> = base.iter().map(String::as_str).collect();
    naive_args.push("--naive");
    let naive = run(&naive_args);
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("1.") || t.starts_with("2.") || t.starts_with("3.")
            })
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&cube), strip(&naive));
}

#[test]
fn drill_command_reports_all_degrees() {
    let dir = workdir("drill");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "drill",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--phi",
        "Author.name = 'RR'",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mu_interv = -0"), "{text}");
    assert!(text.contains("mu_hybrid"), "{text}");
    assert!(text.contains("tuples deleted"), "{text}");
}

#[test]
fn profile_command_summarizes_data() {
    let dir = workdir("profile");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let out = run(&[
        "profile",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Author (3 rows)"), "{text}");
    assert!(text.contains("venue: str  distinct=2"), "{text}");
}

#[test]
fn report_command_produces_full_document() {
    let dir = workdir("report");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "report",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name,Author.dom",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# Explanation report"), "{text}");
    assert!(text.contains("Top explanations by intervention"), "{text}");
    assert!(text.contains("Drill-down"), "{text}");
    assert!(text.contains("Kendall tau"), "{text}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = run(&["explain", "--schema"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}
