//! End-to-end tests of the `exq` CLI binary: schema parsing, CSV loading,
//! question files, top-K output, and drill-down — the full external
//! surface a non-Rust user touches.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exq-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, contents: &str) -> String {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_exq"))
        .args(args)
        .output()
        .expect("binary runs")
}

const SCHEMA: &str = "
relation Author(id: str key, name: str, dom: str)
relation Authored(id: str key, pubid: str key)
relation Publication(pubid: str key, venue: str)
fk Authored(id) -> Author
fk Authored(pubid) <-> Publication
";

const AUTHORS: &str = "id,name,dom\nA1,JG,edu\nA2,RR,com\nA3,CM,com\n";
const AUTHORED: &str = "id,pubid\nA1,P1\nA2,P1\nA1,P2\nA3,P2\nA2,P3\nA3,P3\n";
const PUBS: &str = "pubid,venue\nP1,SIGMOD\nP2,VLDB\nP3,SIGMOD\n";

const QUESTION: &str = "
agg sigmod = count(distinct Publication.pubid) where venue = 'SIGMOD'
dir high
";

#[test]
fn schema_command_prints_parsed_schema() {
    let dir = workdir("schema");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let out = run(&["schema", "--schema", &schema]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Author(*id: str"));
    assert!(text.contains("back-and-forth keys: 1"));
}

#[test]
fn validate_command_checks_integrity() {
    let dir = workdir("validate");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let out = run(&[
        "validate",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12 tuples"));
    assert!(text.contains("semijoin-reduced: true"));

    // A dangling foreign key fails validation.
    let bad = write(&dir, "bad.csv", "id,pubid\nA1,P1\nA9,P1\n");
    let out = run(&[
        "validate",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={bad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("dangling foreign key"));
}

#[test]
fn explain_command_ranks_explanations() {
    let dir = workdir("explain");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "explain",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name,Author.dom",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Q(D) = 2"), "{text}");
    assert!(text.contains("engine: Cube"), "{text}");
    // RR's removal kills both SIGMOD papers: a top (degree −0) explanation.
    assert!(
        text.lines()
            .any(|l| l.contains("RR") && l.contains("(-0.000000)")),
        "{text}"
    );
}

#[test]
fn explain_naive_matches_cube() {
    let dir = workdir("naive");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let base = [
        "explain",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name",
        "--top",
        "3",
    ]
    .map(String::from);
    let cube = run(&base.iter().map(String::as_str).collect::<Vec<_>>());
    let mut naive_args: Vec<&str> = base.iter().map(String::as_str).collect();
    naive_args.push("--naive");
    let naive = run(&naive_args);
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("1.") || t.starts_with("2.") || t.starts_with("3.")
            })
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&cube), strip(&naive));
}

#[test]
fn drill_command_reports_all_degrees() {
    let dir = workdir("drill");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "drill",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--phi",
        "Author.name = 'RR'",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mu_interv = -0"), "{text}");
    assert!(text.contains("mu_hybrid"), "{text}");
    assert!(text.contains("tuples deleted"), "{text}");
}

#[test]
fn profile_command_summarizes_data() {
    let dir = workdir("profile");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let out = run(&[
        "profile",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Author (3 rows)"), "{text}");
    assert!(text.contains("venue: str  distinct=2"), "{text}");
}

#[test]
fn report_command_produces_full_document() {
    let dir = workdir("report");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&[
        "report",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name,Author.dom",
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# Explanation report"), "{text}");
    assert!(text.contains("Top explanations by intervention"), "{text}");
    assert!(text.contains("Drill-down"), "{text}");
    assert!(text.contains("Kendall tau"), "{text}");
}

const BAD_SCHEMA: &str = "
relation Author(aid: int key, name: str)
relation Authored(aid: int, pid: int key)
relation Publication(pid: int key, venue: str, year: int)
fk Authored(aid) -> Author
fk Authored(pid) <-> Publication
fk Publication(pid) <-> Authored
";

const BAD_QUESTION: &str = "
agg pubs = count(*) where venue = 'SIGMOD' and yeer >= 2000 and year = 'twothousand'
dir high
";

#[test]
fn check_command_passes_clean_inputs() {
    let dir = workdir("check-clean");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let q = write(&dir, "question.exq", QUESTION);
    let out = run(&["check", &schema, &q]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no problems found"));
}

#[test]
fn check_command_reports_every_fault_in_one_run() {
    let dir = workdir("check-bad");
    let schema = write(&dir, "schema.exq", BAD_SCHEMA);
    let q = write(&dir, "question.exq", BAD_QUESTION);

    // Pretty output: all three distinct codes, each with a line:col span.
    let out = run(&["check", &schema, &q]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[E007]"), "{text}"); // fk cycle
    assert!(text.contains("error[E002]"), "{text}"); // unknown attribute
    assert!(text.contains("error[E008]"), "{text}"); // type mismatch
    assert!(text.contains(&format!("{schema}:7:4")), "{text}");
    assert!(text.contains(&format!("{q}:2:48")), "{text}");
    assert!(text.contains(&format!("{q}:2:72")), "{text}");
    assert!(text.contains("3 errors"), "{text}");

    // JSON output: same codes and spans, machine-readable.
    let out = run(&["check", &schema, &q, "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"errors\":3"), "{json}");
    for code in ["E007", "E002", "E008"] {
        assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
    }
    assert!(json.contains("\"line\":2,\"col\":48"), "{json}");
}

#[test]
fn check_command_usage_errors_exit_2() {
    let out = run(&["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a schema"));

    let dir = workdir("check-usage");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let out = run(&["check", &schema, "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));

    let out = run(&["check", &dir.join("missing.exq").to_string_lossy()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explain_load_path_fails_fast_with_all_diagnostics() {
    let dir = workdir("check-gate");
    let schema = write(&dir, "schema.exq", SCHEMA);
    let a = write(&dir, "a.csv", AUTHORS);
    let ad = write(&dir, "ad.csv", AUTHORED);
    let p = write(&dir, "p.csv", PUBS);
    // Two faults in one question: both must be reported, not just the first.
    let q = write(
        &dir,
        "question.exq",
        "agg n = count(*) where venu = 'SIGMOD' and dom = 42\ndir high\n",
    );
    let out = run(&[
        "explain",
        "--schema",
        &schema,
        "--table",
        &format!("Author={a}"),
        "--table",
        &format!("Authored={ad}"),
        "--table",
        &format!("Publication={p}"),
        "--question",
        &q,
        "--attrs",
        "Author.name",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rejected by `exq check`"), "{err}");
    assert!(err.contains("error[E002]"), "{err}");
    assert!(err.contains("error[E008]"), "{err}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = run(&["explain", "--schema"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

// ---------------------------------------------------------------------
// Observability surface: --metrics, --trace, --format json
// ---------------------------------------------------------------------

/// Zero every wall-clock field so metric output can be compared against
/// committed fixtures (span *counts* stay — they are deterministic).
fn normalize_metrics(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match line.find("\"total_ns\": ") {
            Some(idx) => {
                let head = &line[..idx + "\"total_ns\": ".len()];
                let tail: String = line[idx + "\"total_ns\": ".len()..]
                    .chars()
                    .skip_while(char::is_ascii_digit)
                    .collect();
                out.push_str(head);
                out.push('0');
                out.push_str(&tail);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn small_dblp_args(dir: &std::path::Path) -> Vec<String> {
    let schema = write(dir, "schema.exq", SCHEMA);
    let a = write(dir, "a.csv", AUTHORS);
    let ad = write(dir, "ad.csv", AUTHORED);
    let p = write(dir, "p.csv", PUBS);
    let q = write(dir, "question.exq", QUESTION);
    vec![
        "--schema".into(),
        schema,
        "--table".into(),
        format!("Author={a}"),
        "--table".into(),
        format!("Authored={ad}"),
        "--table".into(),
        format!("Publication={p}"),
        "--question".into(),
        q,
    ]
}

#[test]
fn explain_metrics_stdout_matches_golden_fixture() {
    let dir = workdir("metrics-golden");
    let mut argv: Vec<String> = vec!["explain".into()];
    argv.extend(small_dblp_args(&dir));
    argv.extend(
        [
            "--attrs",
            "Author.name,Author.dom",
            "--top",
            "3",
            "--threads",
            "1",
            "--metrics",
            "-",
        ]
        .map(String::from),
    );
    let out = run(&argv.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = normalize_metrics(&String::from_utf8_lossy(&out.stdout));
    assert_eq!(got, fixture("explain_metrics.txt"));
}

#[test]
fn report_metrics_section_matches_golden_fixture() {
    let dir = workdir("report-golden");
    let mut argv: Vec<String> = vec!["report".into()];
    argv.extend(small_dblp_args(&dir));
    argv.extend(
        [
            "--attrs",
            "Author.name",
            "--top",
            "2",
            "--threads",
            "1",
            "--trace",
        ]
        .map(String::from),
    );
    let out = run(&argv.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let start = text.find("## Metrics").expect("metrics section in report");
    assert_eq!(&text[start..], fixture("report_metrics.txt"));
    // --trace prints the span tree on stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("spans (wall-clock):"), "{err}");
    assert!(err.contains("explain.table"), "{err}");
}

#[test]
fn explain_json_mode_has_clean_stdout_and_empty_stderr() {
    let dir = workdir("json-mode");
    let mut argv: Vec<String> = vec!["explain".into()];
    argv.extend(small_dblp_args(&dir));
    argv.extend(["--attrs", "Author.name", "--top", "3", "--format", "json"].map(String::from));
    let out = run(&argv.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "json mode must not write to stderr, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The whole of stdout is one well-formed JSON document: balanced
    // braces/brackets outside strings, nothing before or after.
    let text = String::from_utf8_lossy(&out.stdout);
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{text}");
    let (mut depth, mut in_str, mut esc, mut closed_at) = (0i64, false, false, None);
    for (i, c) in trimmed.char_indices() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced at byte {i}");
                if depth == 0 {
                    closed_at = Some(i);
                }
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON: {text}");
    assert!(!in_str, "unterminated string: {text}");
    assert_eq!(
        closed_at,
        Some(trimmed.len() - 1),
        "trailing garbage: {text}"
    );
    for key in [
        "\"q_d\":",
        "\"engine\":",
        "\"top\":",
        "\"metrics\":",
        "\"counters\":",
    ] {
        assert!(trimmed.contains(key), "missing {key}: {text}");
    }
}

/// The acceptance invariant, end to end through the CLI on a generated
/// DBLP workload: `--threads 1 --metrics -` and `--threads 7 --metrics -`
/// produce byte-identical `counters` sections.
#[test]
fn explain_metrics_counters_identical_at_1_and_7_threads_on_dblp() {
    use exq::datagen::dblp;
    use exq::relstore::csv::dump_relation;
    let dir = workdir("dblp-threads");
    let db = dblp::generate(&dblp::DblpConfig::default());
    let dump = |rel: &str, file: &str| {
        let path = dir.join(file);
        let f = fs::File::create(&path).unwrap();
        dump_relation(&db, rel, std::io::BufWriter::new(f)).unwrap();
        path.to_string_lossy().into_owned()
    };
    let a = dump("Author", "author.csv");
    let ad = dump("Authored", "authored.csv");
    let p = dump("Publication", "publication.csv");
    let schema = write(
        &dir,
        "schema.exq",
        "
relation Author(id: str key, name: str, inst: str, dom: str)
relation Authored(id: str key, pubid: str key)
relation Publication(pubid: str key, venue: str, year: int)
fk Authored(id) -> Author
fk Authored(pubid) <-> Publication
",
    );
    let q = write(
        &dir,
        "question.exq",
        "
agg a = count(distinct Publication.pubid) where venue = 'SIGMOD' and dom = 'com' and year >= 2000 and year <= 2004
agg b = count(distinct Publication.pubid) where venue = 'SIGMOD' and dom = 'com' and year >= 2007 and year <= 2011
agg c = count(distinct Publication.pubid) where venue = 'SIGMOD' and dom = 'edu' and year >= 2000 and year <= 2004
agg d = count(distinct Publication.pubid) where venue = 'SIGMOD' and dom = 'edu' and year >= 2007 and year <= 2011
expr (a / b) / (c / d)
smoothing 1e-4
dir high
",
    );
    let counters_section = |threads: &str| -> String {
        let out = run(&[
            "explain",
            "--schema",
            &schema,
            "--table",
            &format!("Author={a}"),
            "--table",
            &format!("Authored={ad}"),
            "--table",
            &format!("Publication={p}"),
            "--question",
            &q,
            "--attrs",
            "Author.inst,Author.name",
            "--top",
            "5",
            "--threads",
            threads,
            "--metrics",
            "-",
        ]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        let start = text.find("\"counters\": {").expect("counters section");
        let end = text[start..].find('}').expect("closing brace") + start;
        text[start..=end].to_string()
    };
    let one = counters_section("1");
    assert!(one.contains("\"join.probe_matches\":"), "{one}");
    assert!(one.contains("\"cube.cells\":"), "{one}");
    assert_eq!(
        one,
        counters_section("7"),
        "counters must not depend on thread count"
    );
}
