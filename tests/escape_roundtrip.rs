//! Round-trip property for the workspace's single JSON string escaper.
//!
//! `exq_obs::escape_json` is the one escaping implementation — the
//! analyzer's JSON renderer, the server's emitters, and the bench
//! reports all call it — so one round-trip property covers every JSON
//! producer in the workspace.

use proptest::prelude::*;

/// Minimal JSON string-literal unescaper (test-only reference
/// implementation; deliberately independent of any production decoder).
fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            // An unescaped control character or quote would make the
            // literal invalid JSON.
            if (c as u32) < 0x20 || c == '"' {
                return None;
            }
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

proptest! {
    /// Escaping then unescaping is the identity, for arbitrary strings
    /// including control characters, quotes, backslashes, and
    /// multi-byte text (the class below spans all printable ASCII plus
    /// literal newline/tab/CR, a C0 control, and two multi-byte chars).
    #[test]
    fn escape_json_round_trips(s in "[ -~\n\r\t\u{1}é中]{0,24}") {
        let escaped = exq::obs::escape_json(&s);
        prop_assert_eq!(unescape_json(&escaped), Some(s));
    }

    /// The escaped form is always safe to splice between quotes: no
    /// raw control characters, no unescaped `"`.
    #[test]
    fn escape_json_output_is_literal_safe(s in "[ -~\n\r\t\u{1}é中]{0,24}") {
        let escaped = exq::obs::escape_json(&s);
        let mut prev_backslashes = 0usize;
        for c in escaped.chars() {
            prop_assert!((c as u32) >= 0x20, "raw control char in {escaped:?}");
            if c == '"' {
                prop_assert!(prev_backslashes % 2 == 1, "unescaped quote in {escaped:?}");
            }
            prev_backslashes = if c == '\\' { prev_backslashes + 1 } else { 0 };
        }
    }
}
