//! # exq — intervention-based explanations for database queries
//!
//! Umbrella crate re-exporting the workspace:
//!
//! * [`relstore`] (`exq-relstore`) — the in-memory relational substrate:
//!   schemas with standard and back-and-forth foreign keys, universal
//!   relation, semijoin reduction, aggregates, data cube;
//! * [`core`] (`exq-core`) — the explanation engine of Roy & Suciu
//!   (SIGMOD 2014): interventions via program **P**, degrees of
//!   explanation, Algorithm 1, minimal top-K;
//! * [`obs`] (`exq-obs`) — the deterministic observability layer:
//!   monotonic counters and span timers threaded through every hot path,
//!   with counter totals bit-identical across thread counts;
//! * [`analyze`] (`exq-analyze`) — the `exq check` static analyzer:
//!   tolerant parsing plus semantic lint passes producing multi-error
//!   diagnostics with stable codes, spans, and fix suggestions;
//! * [`datagen`] (`exq-datagen`) — seeded synthetic datasets standing in
//!   for the paper's DBLP, natality, and Geo-DBLP data;
//! * [`serve`] (`exq-serve`) — the resident HTTP explanation server:
//!   dataset catalog with shared pre-built intermediates, canonical-key
//!   LRU result cache, and a std-only HTTP/1.1 front end (`exq serve`);
//! * [`router`] (`exq-router`) — the sharded multi-process serving tier
//!   (`exq serve --router N`): consistent-hash routing front, per-tenant
//!   admission control, worker supervision with warm restarts;
//! * [`lint`] (`exq-lint`) — the `exq lint` workspace auditor: a
//!   tolerant Rust lexer, determinism lint rules with stable `L`-codes,
//!   and cross-artifact audits tying the counter catalogue, Prometheus
//!   naming, and the diagnostic-code table to actual source.
//!
//! See the `examples/` directory for end-to-end walkthroughs
//! (`quickstart`, `dblp_bump`, `natality`, `sigmod_pods`, `convergence`)
//! and the `exq-bench` crate for the benchmark harness regenerating every
//! table and figure of the paper's evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use exq_analyze as analyze;
pub use exq_core as core;
pub use exq_datagen as datagen;
pub use exq_lint as lint;
pub use exq_obs as obs;
pub use exq_relstore as relstore;
pub use exq_router as router;
pub use exq_serve as serve;

/// Everything an application typically needs.
pub mod prelude {
    pub use exq_core::prelude::*;
    pub use exq_relstore::{
        Atom, AttrRef, CmpOp, Conjunction, Database, Predicate, SchemaBuilder, TupleSet, Universal,
        Value, ValueType, View,
    };
}
