//! `exq` — command-line explanation engine.
//!
//! ```text
//! exq check    SCHEMA [QUESTION…] [--format pretty|json]
//! exq schema   --schema FILE
//! exq validate --schema FILE --table Rel=FILE…
//! exq explain  --schema FILE --table Rel=FILE… --question FILE
//!              --attrs Rel.a,Rel.b[,…] [--top K] [--by interv|aggr]
//!              [--strategy nominimal|selfjoin|append]
//!              [--polarity general|specific] [--min-support N] [--naive]
//! exq drill    --schema FILE --table Rel=FILE… --question FILE
//!              --phi "Rel.a = 'v' and Rel.b = 'w'"
//! ```
//!
//! Schemas use the `exq_relstore::parse` DSL, data is CSV (header row),
//! questions use the `exq_core::qparse` format, and `--phi` takes a
//! conjunction in the predicate language. `exq check` runs the
//! `exq_analyze` static analyzer and reports every problem in one pass;
//! the same analyzer guards the `explain`/`report`/`drill` load path so
//! bad inputs fail fast with full diagnostics instead of the engine's
//! first-error-only parse failure.

use exq::analyze::{self, SourceFile};
use exq::core::explainer::Explainer;
use exq::core::explanation::Explanation;
use exq::core::prelude::*;
use exq::core::{jsonout, qparse};
use exq::obs::MetricsSink;
use exq::relstore::{csv, parse, Database, ExecConfig};
use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

struct Args {
    command: String,
    options: BTreeMap<String, Vec<String>>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing command")?;
    let mut options: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", argv[i]))?
            .to_string();
        if flag == "naive" || flag == "trace" {
            options.entry(flag).or_default().push("true".to_string());
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .cloned()
            .ok_or_else(|| format!("missing value for --{flag}"))?;
        options.entry(flag).or_default().push(value);
        i += 2;
    }
    Ok(Args { command, options })
}

impl Args {
    fn one(&self, flag: &str) -> Result<&str, String> {
        match self.options.get(flag).map(Vec::as_slice) {
            Some([v]) => Ok(v),
            Some(_) => Err(format!("--{flag} given more than once")),
            None => Err(format!("missing --{flag}")),
        }
    }

    fn optional(&self, flag: &str) -> Option<&str> {
        self.options
            .get(flag)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    fn many(&self, flag: &str) -> &[String] {
        self.options.get(flag).map_or(&[], Vec::as_slice)
    }

    /// `--threads N`, defaulting to all available cores.
    fn exec(&self) -> Result<ExecConfig, String> {
        match self.optional("threads") {
            None => Ok(ExecConfig::auto()),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(ExecConfig::with_threads(n)),
                _ => Err(format!("bad --threads `{s}` (need an integer >= 1)")),
            },
        }
    }
}

/// Per-invocation observability state: one shared [`MetricsSink`], the
/// `--metrics`/`--trace`/`--format` flags, and the status-note routing
/// (stderr in pretty mode, sink-only in json mode — json runs keep
/// stderr empty).
struct Obs {
    sink: MetricsSink,
    metrics_out: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    json: bool,
}

/// Trace ring depth for `--trace-out`: one explain emits well under a
/// hundred spans, so 64k events never drops anything in practice.
const TRACE_RING_CAPACITY: usize = 65_536;

impl Obs {
    fn from_args(args: &Args) -> Result<Obs, String> {
        let json = match args.optional("format") {
            None | Some("pretty") => false,
            Some("json") => true,
            Some(other) => return Err(format!("--format takes pretty|json, got `{other}`")),
        };
        let metrics_out = args.optional("metrics").map(str::to_string);
        let trace = args.optional("trace").is_some();
        let trace_out = args.optional("trace-out").map(str::to_string);
        let sink = if metrics_out.is_some() || trace || trace_out.is_some() || json {
            MetricsSink::recording()
        } else {
            MetricsSink::disabled()
        };
        if trace_out.is_some() {
            sink.enable_tracing(TRACE_RING_CAPACITY);
            // One CLI invocation is one trace.
            sink.set_trace(1);
        }
        Ok(Obs {
            sink,
            metrics_out,
            trace,
            trace_out,
            json,
        })
    }

    /// Record a status note; echo to stderr unless in json mode.
    fn note(&self, text: String) {
        self.sink.note(&text);
        if !self.json {
            eprintln!("{text}");
        }
    }

    /// Emit `--trace` / `--metrics` output. In json mode the snapshot is
    /// embedded in the stdout document instead (see [`cmd_explain`]), so
    /// only a `--metrics PATH` file write happens here.
    fn finish(&self) -> Result<(), String> {
        if self.trace && !self.json {
            eprint!("{}", self.sink.snapshot().render_pretty());
        }
        if let Some(path) = &self.metrics_out {
            let json = self.sink.snapshot().to_json();
            if path == "-" {
                if !self.json {
                    println!("{json}");
                }
            } else {
                fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
                self.note(format!("wrote metrics to {path}"));
            }
        }
        if let Some(path) = &self.trace_out {
            let json = self
                .sink
                .trace_chrome_json()
                .ok_or("tracing was not armed (internal error)")?;
            fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
            self.note(format!(
                "wrote Chrome trace to {path} (load in Perfetto or chrome://tracing)"
            ));
        }
        Ok(())
    }
}

fn load_database(args: &Args, obs: &Obs) -> Result<Database, String> {
    let schema_file = args.one("schema")?;
    let schema_text = fs::read_to_string(schema_file).map_err(|e| format!("{schema_file}: {e}"))?;
    let source = SourceFile::schema(schema_file, schema_text.as_str());
    let analysis = analyze::analyze_schema(&source);
    if analysis.has_errors() {
        return Err(format!(
            "schema rejected by `exq check`:\n\n{}",
            analysis.render_pretty(&[&source])
        ));
    }
    let schema = parse::parse_schema(&schema_text).map_err(|e| e.to_string())?;
    let mut db = Database::new(schema);
    for spec in args.many("table") {
        let (rel, file) = spec
            .split_once('=')
            .ok_or_else(|| format!("--table takes Rel=FILE, got `{spec}`"))?;
        let reader = fs::File::open(file)
            .map_err(|e| format!("{file}: {e}"))
            .map(std::io::BufReader::new)?;
        let n = csv::load_relation(&mut db, rel, reader).map_err(|e| e.to_string())?;
        obs.note(format!("loaded {n} rows into {rel}"));
    }
    db.validate().map_err(|e| e.to_string())?;
    Ok(db)
}

fn build_explainer<'a>(db: &'a Database, args: &Args, obs: &Obs) -> Result<Explainer<'a>, String> {
    let question_file = args.one("question")?;
    let question_text =
        fs::read_to_string(question_file).map_err(|e| format!("{question_file}: {e}"))?;
    let source = SourceFile::question(question_file, question_text.as_str());
    let analysis = analyze::analyze_question_against(db.schema(), &source);
    if analysis.has_errors() {
        return Err(format!(
            "question rejected by `exq check`:\n\n{}",
            analysis.render_pretty(&[&source])
        ));
    }
    let question =
        qparse::parse_question(db.schema(), &question_text).map_err(|e| e.to_string())?;
    let mut explainer =
        Explainer::new(db, question).exec(args.exec()?.with_metrics(obs.sink.clone()));
    if let Some(attrs) = args.optional("attrs") {
        let names: Vec<&str> = attrs.split(',').map(str::trim).collect();
        explainer = explainer.attr_names(&names).map_err(|e| e.to_string())?;
    }
    if let Some(s) = args.optional("min-support") {
        explainer =
            explainer.min_support(s.parse().map_err(|_| format!("bad --min-support `{s}`"))?);
    }
    if let Some(s) = args.optional("strategy") {
        explainer = explainer.topk_strategy(match s {
            "nominimal" => TopKStrategy::NoMinimal,
            "selfjoin" => TopKStrategy::MinimalSelfJoin,
            "append" => TopKStrategy::MinimalAppend,
            other => return Err(format!("unknown strategy `{other}`")),
        });
    }
    if let Some(p) = args.optional("polarity") {
        explainer = explainer.polarity(match p {
            "general" => MinimalityPolarity::PreferGeneral,
            "specific" => MinimalityPolarity::PreferSpecific,
            other => return Err(format!("unknown polarity `{other}`")),
        });
    }
    if args.optional("naive").is_some() {
        explainer = explainer.force_naive();
    }
    Ok(explainer)
}

fn cmd_schema(args: &Args) -> Result<(), String> {
    let schema_file = args.one("schema")?;
    let text = fs::read_to_string(schema_file).map_err(|e| format!("{schema_file}: {e}"))?;
    let schema = parse::parse_schema(&text).map_err(|e| e.to_string())?;
    print!("{schema}");
    let g = schema.causal_graph();
    println!(
        "back-and-forth keys: {} (simple: {}, max per relation: {})",
        schema.back_and_forth_count(),
        g.is_simple(),
        g.max_back_and_forth_per_relation()
    );
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let db = load_database(args, &obs)?;
    let reduced = exq::relstore::semijoin::is_reduced(&db, &db.full_view());
    println!(
        "ok: {} relations, {} tuples, semijoin-reduced: {reduced}",
        db.schema().relation_count(),
        db.total_tuples()
    );
    if !reduced {
        println!("note: the explanation engine assumes a reduced instance (Section 2)");
    }
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let db = load_database(args, &obs)?;
    let explainer = build_explainer(&db, args, &obs)?;
    let k: usize = args
        .optional("top")
        .map_or(Ok(5), |s| s.parse().map_err(|_| format!("bad --top `{s}`")))?;
    let kind = match args.optional("by").unwrap_or("interv") {
        "interv" => DegreeKind::Intervention,
        "aggr" => DegreeKind::Aggravation,
        other => return Err(format!("unknown degree `{other}` (interv|aggr)")),
    };
    let q_d = explainer
        .question()
        .query
        .eval(&db)
        .map_err(|e| e.to_string())?;
    if !obs.json {
        println!("Q(D) = {q_d}");
    }
    let (table, choice) = explainer.table().map_err(|e| e.to_string())?;
    if !obs.json {
        println!(
            "{} candidate explanations (engine: {choice:?})",
            table.len()
        );
    }
    if let Some(path) = args.optional("dump-m") {
        fs::write(path, table.to_csv(&db)).map_err(|e| format!("{path}: {e}"))?;
        obs.note(format!("wrote M to {path}"));
    }
    let ranked = explainer.top(kind, k).map_err(|e| e.to_string())?;
    if obs.json {
        // One JSON document on stdout, nothing on stderr — same
        // serializer the exq-serve HTTP endpoints use.
        let snapshot = obs.sink.snapshot();
        println!(
            "{}",
            jsonout::explain_doc(&db, q_d, choice, table.len(), &ranked, &snapshot)
        );
    } else {
        for r in &ranked {
            println!(
                "{:>3}. {}  ({:.6})",
                r.rank,
                r.explanation.display(&db),
                r.degree
            );
        }
    }
    obs.finish()
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let exec = args.exec()?.with_metrics(obs.sink.clone());
    let db = load_database(args, &obs)?;
    print!("{}", exq::relstore::stats::profile_with(&db, &exec));
    obs.finish()
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let db = load_database(args, &obs)?;
    let explainer = build_explainer(&db, args, &obs)?;
    let k: usize = args
        .optional("top")
        .map_or(Ok(5), |s| s.parse().map_err(|_| format!("bad --top `{s}`")))?;
    let config = exq::core::report::ReportConfig {
        top_k: k,
        drill_best: true,
        // Same sink the explainer records into, so the report's metrics
        // section sees the whole run.
        exec: args.exec()?.with_metrics(obs.sink.clone()),
    };
    if obs.json {
        let doc = jsonout::report_doc(&explainer, &config).map_err(|e| e.to_string())?;
        println!("{doc}");
    } else {
        let text = exq::core::report::generate(&explainer, &config).map_err(|e| e.to_string())?;
        print!("{text}");
    }
    obs.finish()
}

fn cmd_drill(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let db = load_database(args, &obs)?;
    let explainer = build_explainer(&db, args, &obs)?;
    let phi_text = args.one("phi")?;
    let pred = parse::parse_predicate(db.schema(), phi_text).map_err(|e| e.to_string())?;
    let phi = Explanation::from_predicate(&pred)
        .ok_or("--phi must be a conjunction of comparisons (no or/not)")?;
    let report = explainer.explain(&phi).map_err(|e| e.to_string())?;
    if obs.json {
        let snapshot = obs.sink.snapshot();
        println!(
            "{}",
            jsonout::drill_doc(&db, &phi.display(&db).to_string(), &report, &snapshot)
        );
        return obs.finish();
    }
    println!("phi       = {}", phi.display(&db));
    println!("mu_interv = {}", report.mu_interv);
    println!("mu_aggr   = {}", report.mu_aggr);
    println!("mu_hybrid = {}", report.mu_hybrid);
    println!(
        "intervention: {} tuples deleted in {} iterations",
        report.intervention.total_deleted(),
        report.intervention.iterations
    );
    for (rel, delta) in report.intervention.delta.iter().enumerate() {
        if !delta.is_empty() {
            println!(
                "  {}: {} tuples",
                db.schema().relation(rel).name,
                delta.count()
            );
        }
    }
    obs.finish()
}

/// Parse one `--preload NAME=SOURCE` spec into a catalog entry.
/// `SOURCE` is either a directory (schema.exq + per-relation CSVs) or
/// `gen:NAME` for a built-in seeded generator.
fn preload_dataset(
    catalog: &mut exq::serve::Catalog,
    spec: &str,
    exec: &ExecConfig,
) -> Result<(), String> {
    use exq::datagen::{dblp, natality, paper_examples};
    use std::sync::Arc;
    let (name, source) = spec
        .split_once('=')
        .ok_or_else(|| format!("--preload takes NAME=DIR or NAME=gen:SPEC, got `{spec}`"))?;
    match source.strip_prefix("gen:") {
        Some(generator) => {
            let db = match generator {
                "dblp" => dblp::generate(&dblp::DblpConfig::default()),
                "dblp-small" => dblp::generate(&dblp::DblpConfig {
                    papers_per_year_base: 6,
                    authors_per_institution: 4,
                    ..dblp::DblpConfig::default()
                }),
                "natality" => natality::generate(&natality::NatalityConfig::default()),
                "figure3" => paper_examples::figure3(),
                other => {
                    return Err(format!(
                        "unknown generator `{other}` (dblp|dblp-small|natality|figure3)"
                    ))
                }
            };
            catalog.insert_database(name, Arc::new(db), exec)
        }
        None => catalog.load_dir(name, std::path::Path::new(source), exec),
    }
}

/// `exq serve`: load the catalog, bind, serve until SIGINT/SIGTERM,
/// then drain in-flight requests and flush the final metrics snapshot.
/// With `--router N` the process instead becomes the front of a sharded
/// multi-process tier (see [`cmd_serve_router`]).
fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.optional("router").is_some() {
        return cmd_serve_router(args);
    }
    let obs = Obs::from_args(args)?;
    let addr = args.optional("addr").unwrap_or("127.0.0.1:8080");
    let exec = args.exec()?;
    let cache_mb: usize = args.optional("cache-mb").map_or(Ok(32), |s| {
        s.parse().map_err(|_| format!("bad --cache-mb `{s}`"))
    })?;
    let queue_depth: usize = args.optional("queue-depth").map_or(Ok(64), |s| {
        s.parse().map_err(|_| format!("bad --queue-depth `{s}`"))
    })?;
    let shard_id: Option<u64> = match args.optional("shard-id") {
        None => None,
        Some(s) => Some(
            s.parse()
                .map_err(|_| format!("bad --shard-id `{s}` (need an integer)"))?,
        ),
    };
    let trace_slow_ms: Option<u64> = match args.optional("trace-slow-ms") {
        None => None,
        Some(s) => Some(
            s.parse()
                .map_err(|_| format!("bad --trace-slow-ms `{s}` (need milliseconds)"))?,
        ),
    };
    // Under `--state-dir` the worker persists retained traces next to
    // its warm-start cache file; shard-tagged so a fleet's files can
    // share one directory.
    let trace_retain: Option<std::path::PathBuf> = match args.optional("state-dir") {
        None => None,
        Some(dir) => {
            fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            Some(std::path::PathBuf::from(match shard_id {
                Some(id) => format!("{dir}/shard-{id}.traces.jsonl"),
                None => format!("{dir}/traces.jsonl"),
            }))
        }
    };
    let access_log = match args.optional("access-log") {
        None => exq::serve::AccessLog::disabled(),
        Some(path) => exq::serve::AccessLog::open(std::path::Path::new(path), false)
            .map_err(|e| format!("{path}: {e}"))?,
    };
    let preloads = args.many("preload");
    // A router worker may legitimately own zero datasets (the hash ring
    // assigned it none); standalone serve still demands a catalog.
    if preloads.is_empty() && shard_id.is_none() {
        return Err("serve needs at least one --preload NAME=DIR or NAME=gen:SPEC".to_string());
    }
    let mut catalog = exq::serve::Catalog::new();
    for spec in preloads {
        let t0 = std::time::Instant::now();
        preload_dataset(&mut catalog, spec, &exec)?;
        eprintln!("preloaded {spec} in {:.2?}", t0.elapsed());
    }

    exq::serve::signal::install();
    let sink = MetricsSink::recording();
    if obs.trace_out.is_some() {
        sink.enable_tracing(TRACE_RING_CAPACITY);
    }
    let config = exq::serve::ServerConfig {
        threads: match args.optional("threads") {
            // `--threads` controls the worker pool here; dataset
            // preparation above already used it via `exec`.
            Some(_) => exec.threads(),
            None => 4,
        },
        cache_bytes: cache_mb * 1024 * 1024,
        queue_depth,
        shard_id,
        cache_persist: args.optional("cache-persist").map(std::path::PathBuf::from),
        trace_slow_ms,
        trace_retain,
        access_log,
        ..exq::serve::ServerConfig::default()
    };
    let threads = config.threads;
    let handle = exq::serve::start_on(addr, catalog, config, sink.clone())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    // Machine-readable ready line (the CI smoke job and loadtest parse
    // the port from it), then serve until a signal lands.
    println!(
        "ready: listening on http://{} ({threads} workers)",
        handle.addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    while !exq::serve::signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received; draining in-flight requests");
    let flight_json = handle.recent_requests_json();
    let snapshot = handle.shutdown();
    if let Some(path) = &obs.metrics_out {
        let json = snapshot.to_json();
        if path == "-" {
            println!("{json}");
        } else {
            fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote final metrics snapshot to {path}");
            // Flight recorder lands next to the snapshot.
            let flight_path = match path.strip_suffix(".json") {
                Some(stem) => format!("{stem}.requests.json"),
                None => format!("{path}.requests.json"),
            };
            fs::write(&flight_path, flight_json + "\n")
                .map_err(|e| format!("{flight_path}: {e}"))?;
            eprintln!("wrote flight recorder to {flight_path}");
        }
    }
    if let Some(path) = &obs.trace_out {
        let json = sink
            .trace_chrome_json()
            .ok_or("tracing was not armed (internal error)")?;
        fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    eprintln!(
        "shutdown complete: {} requests served, {} cache hits / {} misses",
        snapshot.counter("server.requests"),
        snapshot.counter("server.cache.hits"),
        snapshot.counter("server.cache.misses"),
    );
    Ok(())
}

/// A per-shard sibling of a `--metrics`/`--trace-out` path:
/// `bench/serve.json` → `bench/serve.shard0.json`.
fn shard_sibling_path(path: &str, shard: usize) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.shard{shard}.json"),
        None => format!("{path}.shard{shard}"),
    }
}

/// `exq serve --router N`: the sharded multi-process serving tier.
///
/// This process becomes the *front*: it partitions the `--preload`
/// specs over N shards with the consistent-hash ring, spawns one
/// ordinary `exq serve` worker process per shard (loopback, port 0,
/// `--shard-id`, and — under `--state-dir` — a per-shard warm-start
/// cache file), and proxies requests to the owning worker. The
/// supervisor health-checks and restarts crashed workers with the
/// front answering bounded `503`s meanwhile. SIGTERM drains front
/// first, then the workers (each dumps its cache snapshot and metrics
/// file); with `--trace-out` the per-process Chrome traces are merged
/// into one two-tier timeline.
fn cmd_serve_router(args: &Args) -> Result<(), String> {
    let obs = Obs::from_args(args)?;
    let workers: usize = {
        let s = args.one("router")?;
        s.parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("bad --router `{s}` (need an integer >= 1)"))?
    };
    let addr = args.optional("addr").unwrap_or("127.0.0.1:8080");
    let queue_depth: usize = args.optional("queue-depth").map_or(Ok(64), |s| {
        s.parse().map_err(|_| format!("bad --queue-depth `{s}`"))
    })?;
    let rate_limit: Option<f64> = match args.optional("rate-limit") {
        None => None,
        Some(s) => Some(
            s.parse::<f64>()
                .ok()
                .filter(|&r| r > 0.0)
                .ok_or(format!("bad --rate-limit `{s}` (need a rate > 0)"))?,
        ),
    };
    let worker_threads: usize = args.optional("threads").map_or(Ok(4), |s| {
        s.parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("bad --threads `{s}` (need an integer >= 1)"))
    })?;
    let preloads = args.many("preload");
    if preloads.is_empty() {
        return Err("serve needs at least one --preload NAME=DIR or NAME=gen:SPEC".to_string());
    }
    let mut names = Vec::new();
    for spec in preloads {
        let (name, _) = spec
            .split_once('=')
            .ok_or_else(|| format!("--preload takes NAME=DIR or NAME=gen:SPEC, got `{spec}`"))?;
        names.push(name.to_string());
    }
    let shards = exq::router::ShardMap::new(workers);
    let mut groups: Vec<Vec<&str>> = vec![Vec::new(); workers];
    for (spec, name) in preloads.iter().zip(&names) {
        groups[shards.shard_of(name)].push(spec);
    }
    let state_dir = args.optional("state-dir");
    if let Some(dir) = state_dir {
        fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut specs = Vec::with_capacity(workers);
    for (shard, group) in groups.iter().enumerate() {
        let mut wargs: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            &worker_threads.to_string(),
            "--shard-id",
            &shard.to_string(),
        ]
        .map(str::to_string)
        .into();
        for flag in ["cache-mb", "queue-depth", "trace-slow-ms"] {
            if let Some(value) = args.optional(flag) {
                wargs.push(format!("--{flag}"));
                wargs.push(value.to_string());
            }
        }
        if let Some(dir) = state_dir {
            wargs.push("--cache-persist".to_string());
            wargs.push(format!("{dir}/shard-{shard}.cache"));
            // The worker derives its own `shard-N.traces.jsonl` from
            // the directory plus its `--shard-id`.
            wargs.push("--state-dir".to_string());
            wargs.push(dir.to_string());
        }
        if let Some(path) = args.optional("access-log").filter(|p| *p != "-") {
            wargs.push("--access-log".to_string());
            wargs.push(shard_sibling_path(path, shard));
        }
        if let Some(path) = obs.metrics_out.as_deref().filter(|p| *p != "-") {
            wargs.push("--metrics".to_string());
            wargs.push(shard_sibling_path(path, shard));
        }
        if let Some(path) = &obs.trace_out {
            wargs.push("--trace-out".to_string());
            wargs.push(shard_sibling_path(path, shard));
        }
        for spec in group {
            wargs.push("--preload".to_string());
            wargs.push((*spec).to_string());
        }
        specs.push(exq::router::WorkerSpec { shard, args: wargs });
    }

    exq::serve::signal::install();
    let sink = MetricsSink::recording();
    if obs.trace_out.is_some() {
        sink.enable_tracing(TRACE_RING_CAPACITY);
    }
    let config = exq::router::FrontConfig {
        threads: 4,
        queue_depth,
        workers,
        // A pooled keep-alive connection pins a worker thread; never
        // hold more than the worker can serve concurrently.
        per_worker_connections: worker_threads,
        rate_limit,
        datasets: names,
        // The front logs every request it answers (with the shard that
        // served it); workers log their own shard-sibling files. `-`
        // stays front-only: worker stdout is the supervisor's.
        access_log: match args.optional("access-log") {
            None => exq::serve::AccessLog::disabled(),
            Some(path) => exq::serve::AccessLog::open(std::path::Path::new(path), false)
                .map_err(|e| format!("{path}: {e}"))?,
        },
        ..exq::router::FrontConfig::default()
    };
    let front = exq::router::Front::start_on(addr, config, sink.clone())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let supervisor = exq::router::Supervisor::start(exe, specs, front.upstreams(), sink.clone(), 3)
        .map_err(|e| format!("spawning workers: {e}"))?;
    let pids: Vec<String> = supervisor
        .pids()
        .iter()
        .map(|p| p.map_or("-".to_string(), |pid| pid.to_string()))
        .collect();
    println!(
        "ready: listening on http://{} (router, {workers} shards, worker pids {})",
        front.addr(),
        pids.join(",")
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    while !exq::serve::signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received; draining front, then workers");
    // A terminal SIGINT reaches the whole process group: stop the
    // restart machinery *before* workers start exiting on their own.
    supervisor.halt_restarts();
    let snapshot = front.shutdown();
    supervisor.shutdown();
    if let Some(path) = &obs.metrics_out {
        let json = snapshot.to_json();
        if path == "-" {
            println!("{json}");
        } else {
            fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote front metrics snapshot to {path}");
        }
    }
    if let Some(path) = &obs.trace_out {
        let front_json = sink
            .trace_chrome_json()
            .ok_or("tracing was not armed (internal error)")?;
        let mut worker_traces = Vec::new();
        for shard in 0..workers {
            let shard_path = shard_sibling_path(path, shard);
            if let Ok(doc) = fs::read_to_string(&shard_path) {
                worker_traces.push((shard, doc));
            }
        }
        let merged = exq::router::trace::merge_chrome_traces(&front_json, &worker_traces);
        fs::write(path, merged).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote merged two-tier Chrome trace to {path} ({} worker traces)",
            worker_traces.len()
        );
    }
    eprintln!(
        "router shutdown complete: {} requests fronted, {} proxy errors, {} worker restarts",
        snapshot.counter("router.requests"),
        snapshot.counter("router.proxy.errors"),
        snapshot.counter("router.worker.restarts"),
    );
    Ok(())
}

/// Render one stored [`Value`](exq::relstore::Value) as a JSON cell for
/// an append request. Numbers use Rust's shortest round-trip `Display`;
/// non-finite floats fall back to strings, which the server re-parses
/// with the CSV rules.
fn value_to_json_cell(v: &exq::relstore::Value) -> String {
    use exq::relstore::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => f.to_string(),
        Value::Float(f) => format!("\"{f}\""),
        Value::Str(s) => format!("\"{}\"", exq::obs::escape_json(s)),
    }
}

/// `exq append`: batch-append CSV rows to a running server's dataset.
///
/// Loads the schema and CSVs locally (same parser as `exq explain`, but
/// without whole-database key validation — the *server* validates each
/// batch against its live data), then posts
/// `POST /v1/datasets/{name}/rows` requests of at most `--batch` rows,
/// one relation at a time in `--table` order. List referenced relations
/// before referencing ones so foreign keys resolve batch by batch.
fn cmd_append(args: &Args) -> Result<(), String> {
    let addr = args.one("addr")?;
    let dataset = args.one("dataset")?;
    let batch_size: usize = args.optional("batch").map_or(Ok(5000), |s| {
        s.parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("bad --batch `{s}` (need an integer >= 1)"))
    })?;
    let max_retries: u32 = args.optional("max-retries").map_or(Ok(5), |s| {
        s.parse()
            .map_err(|_| format!("bad --max-retries `{s}` (need an integer >= 0)"))
    })?;
    let schema_file = args.one("schema")?;
    let schema_text = fs::read_to_string(schema_file).map_err(|e| format!("{schema_file}: {e}"))?;
    let schema = parse::parse_schema(&schema_text).map_err(|e| e.to_string())?;

    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("bad --addr `{addr}` (need HOST:PORT)"))?;

    // A scratch database gives us the CSV reader's type coercion; key
    // and foreign-key checks happen server-side against the live data.
    let mut scratch = Database::new(schema);
    let mut loaded: Vec<(String, usize)> = Vec::new();
    for spec in args.many("table") {
        let (rel, file) = spec
            .split_once('=')
            .ok_or_else(|| format!("--table takes Rel=FILE, got `{spec}`"))?;
        let reader = fs::File::open(file)
            .map_err(|e| format!("{file}: {e}"))
            .map(std::io::BufReader::new)?;
        let n = csv::load_relation(&mut scratch, rel, reader).map_err(|e| e.to_string())?;
        loaded.push((rel.to_string(), n));
    }
    if loaded.iter().all(|(_, n)| *n == 0) {
        return Err("nothing to append (no --table rows)".to_string());
    }

    let path = format!("/v1/datasets/{dataset}/rows");
    // One keep-alive connection for the whole run: every batch reuses
    // the same TCP stream (and the same server worker thread) instead
    // of re-dialing per request. A busy server's `503` + `Retry-After`
    // is honored with bounded backoff rather than failing the run.
    let mut conn = exq::serve::client::Connection::new(sock_addr);
    let mut total = 0usize;
    let mut last_epoch = 0u64;
    for (rel, _) in &loaded {
        let rel_idx = scratch
            .schema()
            .relation_index(rel)
            .map_err(|e| e.to_string())?;
        let rows: Vec<String> = scratch
            .relation(rel_idx)
            .rows()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(value_to_json_cell).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        for chunk in rows.chunks(batch_size) {
            let body = format!(
                "{{\"rows\":{{\"{}\":[{}]}}}}",
                exq::obs::escape_json(rel),
                chunk.join(",")
            );
            let response = conn
                .post_json_retry(&path, &body, max_retries)
                .map_err(|e| format!("POST {path}: {e}"))?;
            if response.status == 503 {
                return Err(format!(
                    "POST {path} still busy after {max_retries} retries: {}",
                    response.text().trim()
                ));
            }
            if response.status != 200 {
                return Err(format!(
                    "POST {path} failed with {}: {}",
                    response.status,
                    response.text().trim()
                ));
            }
            last_epoch = response
                .header("x-exq-epoch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(last_epoch);
            total += chunk.len();
            eprintln!(
                "appended {} rows to {rel} (epoch {last_epoch})",
                chunk.len()
            );
        }
    }
    println!("appended {total} rows to {dataset}; epoch is now {last_epoch}");
    Ok(())
}

/// `exq check SCHEMA [QUESTION…] [--format pretty|json]`.
///
/// Positional arguments (unlike the other subcommands): the first path
/// is the schema, the rest are question files checked against it.
/// Exits 0 when clean (warnings allowed), 1 when any error-severity
/// diagnostic fires, 2 on usage errors.
fn cmd_check(argv: &[String]) -> ExitCode {
    let mut format = "pretty".to_string();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--format" => match argv.get(i + 1) {
                Some(v) if v == "pretty" || v == "json" => {
                    format = v.clone();
                    i += 2;
                }
                Some(v) => {
                    eprintln!("error: --format takes pretty|json, got `{v}`\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: missing value for --format\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}` for check\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let Some((schema_path, question_paths)) = paths.split_first() else {
        eprintln!("error: check needs a schema file\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> Result<String, String> {
        fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let schema = match read(schema_path) {
        Ok(text) => SourceFile::schema(schema_path.as_str(), text),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut questions = Vec::new();
    for path in question_paths {
        match read(path) {
            Ok(text) => questions.push(SourceFile::question(path.as_str(), text)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let analysis = analyze::analyze(Some(&schema), &questions);
    if format == "json" {
        println!("{}", analysis.render_json());
    } else {
        let sources: Vec<&SourceFile> = std::iter::once(&schema).chain(questions.iter()).collect();
        print!("{}", analysis.render_pretty(&sources));
    }
    if analysis.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `exq lint [PATHS…] [--format pretty|json] [--deny-warnings]
/// [--assume-crate NAME]`.
///
/// With no paths: finds the workspace root (walking up from the current
/// directory), lints every `crates/*/src` and root `src` Rust file, and
/// runs the cross-artifact audits (counter catalogue, Prometheus
/// naming, diagnostic-code table). With explicit paths: lints only
/// those files (audits skipped — they need the whole workspace);
/// `--assume-crate` pretends the files live in the named crate, which
/// is how CI's negative test injects a determinism violation. Exits 0
/// when clean, 1 on errors (or warnings under `--deny-warnings`), 2 on
/// usage errors.
fn cmd_lint(argv: &[String]) -> ExitCode {
    use exq::lint::{self, LintSource};
    let mut format = "pretty".to_string();
    let mut deny_warnings = false;
    let mut assume_crate: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--deny-warnings" => {
                deny_warnings = true;
                i += 1;
            }
            "--format" => match argv.get(i + 1) {
                Some(v) if v == "pretty" || v == "json" => {
                    format = v.clone();
                    i += 2;
                }
                Some(v) => {
                    eprintln!("error: --format takes pretty|json, got `{v}`\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: missing value for --format\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--assume-crate" => match argv.get(i + 1) {
                Some(v) => {
                    assume_crate = Some(v.clone());
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --assume-crate\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}` for lint\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }

    let mut sources: Vec<LintSource> = Vec::new();
    let mut extra_render_files = Vec::new();
    let mut diags;
    if paths.is_empty() {
        let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
        let Some(root) = lint::find_workspace_root(&cwd) else {
            eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        sources = match lint::collect_sources(&root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: collecting workspace sources: {e}");
                return ExitCode::from(2);
            }
        };
        diags = lint::lint_sources(&sources);
        match lint::audit::audit_workspace(&root, &sources) {
            Ok((audit_diags, extra)) => {
                diags.extend(audit_diags);
                extra_render_files = extra;
            }
            Err(e) => {
                eprintln!("error: cross-artifact audit: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for path in &paths {
            match fs::read_to_string(path) {
                Ok(text) => sources.push(LintSource::with_crate(
                    path.as_str(),
                    text,
                    assume_crate.as_deref(),
                )),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        diags = lint::lint_sources(&sources);
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == exq::lint::Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if format == "json" {
        println!("{}", lint::render_json(&diags));
    } else {
        let mut files = lint::to_source_files(&sources);
        files.extend(extra_render_files);
        let refs: Vec<&SourceFile> = files.iter().collect();
        print!("{}", lint::render_pretty(&diags, &refs));
        eprintln!(
            "exq lint: {} file(s), {errors} error(s), {warnings} warning(s)",
            sources.len()
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str =
    "usage: exq <check|lint|schema|validate|profile|explain|report|drill|serve|append> [--flags]
  exq check    SCHEMA [QUESTION...] [--format pretty|json]
  exq lint     [PATHS...] [--format pretty|json] [--deny-warnings] [--assume-crate NAME]
  exq schema   --schema FILE
  exq validate --schema FILE --table Rel=FILE...
  exq profile  --schema FILE --table Rel=FILE... [--threads N] [--metrics PATH|-] \\
               [--trace] [--trace-out PATH]
  exq report   --schema FILE --table Rel=FILE... --question FILE --attrs ... \\
               [--top K] [--threads N] [--format pretty|json] [--metrics PATH|-] \\
               [--trace] [--trace-out PATH]
  exq explain  --schema FILE --table Rel=FILE... --question FILE \\
               --attrs Rel.a,Rel.b [--top K] [--by interv|aggr] \\
               [--strategy nominimal|selfjoin|append] [--polarity general|specific] \\
               [--min-support N] [--naive] [--dump-m FILE] [--threads N] \\
               [--format pretty|json] [--metrics PATH|-] [--trace] [--trace-out PATH]
  exq drill    --schema FILE --table Rel=FILE... --question FILE --phi \"a = 'v'\" \\
               [--threads N] [--format pretty|json] [--metrics PATH|-] \\
               [--trace] [--trace-out PATH]
  exq serve    --addr HOST:PORT --preload NAME=DIR|NAME=gen:SPEC... \\
               [--threads N] [--cache-mb MB] [--queue-depth N] [--metrics PATH|-] \\
               [--router N] [--state-dir DIR] [--rate-limit R] [--trace-out PATH] \\
               [--shard-id I] [--cache-persist PATH] [--trace-slow-ms MS] \\
               [--access-log PATH|-]
  exq append   --addr HOST:PORT --dataset NAME --schema FILE --table Rel=FILE... \\
               [--batch N] [--max-retries N]

--threads N pins the executor to N OS threads (default: all available
cores). Results are bit-identical at every thread count.
--metrics PATH writes a JSON counter/span/histogram snapshot after the
run (`-` for stdout); counters and value-histogram buckets are
bit-identical at every thread count.
--trace prints a per-span timing tree to stderr. --trace-out PATH writes
the run as Chrome trace-event JSON (load in Perfetto/chrome://tracing).
--format json (explain, report, drill) emits one machine-readable JSON
document on stdout and keeps stderr empty — the same document shape
`exq serve` returns.
lint with no PATHS audits the whole workspace (rules L001-L006 plus the
counter-catalogue, Prometheus-naming, and diagnostic-code cross-audits);
with PATHS it lints just those files. --deny-warnings promotes warnings
to a failing exit; --assume-crate NAME applies crate-scoped rules as if
the files lived in crates/NAME (used by CI's injected-violation test).
serve runs until SIGINT/SIGTERM, then drains in-flight requests and
flushes a final metrics snapshot (--metrics PATH) plus the flight
recorder's last-requests ring (PATH.requests.json); while running it
exposes GET /metrics (Prometheus) and GET /v1/debug/requests.
Every serve response carries an X-Exq-Cost header (rows, candidates,
cube cells, cache outcome, epoch) and the JSON body a matching `cost`
block; requests tagged X-Exq-Tenant accumulate per-tenant
server.tenant.cost.* counters. --trace-slow-ms MS retains traces of
requests slower than MS (or any 5xx) under --state-dir as
traces.jsonl, browsable at GET /v1/debug/traces and flagged as
Prometheus exemplar comments; without the flag the slow bound adapts
to the live p99. --access-log PATH appends one JSON line per request
(`-` for stdout).
serve --router N spawns N worker processes, each owning a
consistent-hash shard of the --preload catalog, behind this process as
a routing front with per-tenant admission control (--rate-limit R
requests/s per X-Exq-Tenant), worker health checks and bounded
restarts; --state-dir DIR persists each worker's result cache for warm
restarts plus its retained traces (shard-N.traces.jsonl),
--metrics/--trace-out/--access-log write per-shard sibling files plus
the front's (traces are merged into one two-tier timeline). The
front's GET /metrics fans out to every live worker and renders one
fleet exposition: per-shard labelled families plus exact
bucket-merged aggregate histograms (a downed shard degrades the
scrape — router.scrape.partial — never fails it); /v1/debug/requests
and /v1/debug/traces are merged shard-tagged fan-ins. --shard-id and
--cache-persist are the worker-side halves of those flags.
append posts CSV rows to a running server (POST /v1/datasets/NAME/rows)
in --batch-row chunks (default 5000) over one keep-alive connection,
one relation per request in --table order; each accepted batch bumps
the dataset's epoch and the server maintains its join intermediates
incrementally. A 503 (busy/throttled) is retried with Retry-After-aware
backoff up to --max-retries times (default 5). List referenced
relations before referencing ones so foreign keys resolve.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `check` and `lint` take positional paths, unlike the --flag-only
    // commands.
    if argv.first().map(String::as_str) == Some("check") {
        return cmd_check(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("lint") {
        return cmd_lint(&argv[1..]);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "schema" => cmd_schema(&args),
        "validate" => cmd_validate(&args),
        "profile" => cmd_profile(&args),
        "explain" => cmd_explain(&args),
        "report" => cmd_report(&args),
        "drill" => cmd_drill(&args),
        "serve" => cmd_serve(&args),
        "append" => cmd_append(&args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
