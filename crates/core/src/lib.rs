//! # exq-core — intervention-based explanations for database queries
//!
//! A from-scratch implementation of *"A Formal Approach to Finding
//! Explanations for Database Queries"* (Roy & Suciu, SIGMOD 2014) on top of
//! the [`exq_relstore`] substrate.
//!
//! Given a **user question** `(Q, dir)` — a numerical query
//! `Q = E(q_1, …, q_m)` whose value the user finds surprisingly high or
//! low — the engine ranks **candidate explanations** (conjunctive
//! predicates φ) by how much they account for the surprise:
//!
//! * **by intervention** (`μ_interv`, Definition 2.7): delete the minimal
//!   set of tuples `Δ^φ` implied by φ under the causal semantics of the
//!   schema's foreign keys, and measure how far `Q(D − Δ^φ)` moves
//!   *against* the surprising direction;
//! * **by aggravation** (`μ_aggr`, Definition 2.4): restrict the database
//!   to the tuples satisfying φ and measure how far `Q(D_φ)` moves
//!   *along* it.
//!
//! The module map mirrors the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | §2 user questions, numerical queries | [`question`] |
//! | §2.1 candidate explanations | [`explanation`] |
//! | §2.2–§3 causal paths, program **P**, convergence | [`intervention`], [`causal`] |
//! | §2 degrees of explanation | [`degree`] |
//! | §4.1 intervention-additivity | [`additivity`] |
//! | §4.1 back-and-forth elimination | [`transform`] |
//! | §4.2 Algorithm 1 (data cubes) | [`cube_algo`], [`table_m`] |
//! | §4.2 naive baseline (Figure 12's "No Cube") | [`naive`] |
//! | §4.3 minimal top-K | [`topk`] |
//!
//! ## End-to-end example
//!
//! ```
//! use exq_core::prelude::*;
//! use exq_relstore::{Database, Predicate, SchemaBuilder, Universal, ValueType};
//!
//! // A single-table dataset: outcomes by group.
//! let schema = SchemaBuilder::new()
//!     .relation("R", &[("id", ValueType::Int), ("g", ValueType::Str), ("ok", ValueType::Str)], &["id"])
//!     .build()?;
//! let mut db = Database::new(schema);
//! for (i, (g, ok)) in [("a", "y"), ("a", "y"), ("a", "n"), ("b", "n")].iter().enumerate() {
//!     db.insert("R", vec![(i as i64).into(), (*g).into(), (*ok).into()])?;
//! }
//!
//! // "Why is the ratio of y to n so high?"
//! let ok = db.schema().attr("R", "ok")?;
//! let question = UserQuestion::new(
//!     NumericalQuery::ratio(
//!         AggregateQuery::count_star(Predicate::eq(ok, "y")),
//!         AggregateQuery::count_star(Predicate::eq(ok, "n")),
//!     ).with_smoothing(1e-4),
//!     Direction::High,
//! );
//!
//! // Algorithm 1 over the explanation attribute g, then minimal top-K.
//! let u = Universal::compute(&db, &db.full_view());
//! let dims = vec![db.schema().attr("R", "g")?];
//! let m = exq_core::cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())?;
//! let top = exq_core::topk::top_k(
//!     &m, DegreeKind::Intervention, 3, TopKStrategy::MinimalSelfJoin,
//!     MinimalityPolarity::PreferGeneral,
//! );
//! assert_eq!(top[0].explanation.display(&db).to_string(), "[R.g = a]");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod additivity;
pub mod causal;
pub mod cube_algo;
pub mod degree;
pub mod error;
pub mod explainer;
pub mod explanation;
pub mod hybrid;
pub mod intervention;
pub mod jsonout;
pub mod naive;
pub mod prepared;
pub mod qparse;
pub mod question;
pub mod report;
pub mod rich;
pub mod table_m;
pub mod topk;
pub mod transform;

pub use error::{Error, Result};

/// The commonly used types, for glob import.
pub mod prelude {
    pub use crate::cube_algo::CubeAlgoConfig;
    pub use crate::explainer::{DegreeReport, EngineChoice, Explainer};
    pub use crate::explanation::Explanation;
    pub use crate::intervention::{Intervention, InterventionEngine};
    pub use crate::question::{AggregateQuery, Direction, NumExpr, NumericalQuery, UserQuestion};
    pub use crate::table_m::{ExplanationRow, ExplanationTable};
    pub use crate::topk::{DegreeKind, MinimalityPolarity, Ranked, TopKStrategy};
}
