//! The hybrid degree of explanation (Section 6(iii)).
//!
//! Aggravation is always cube-computable but ignores causal paths;
//! intervention honours causal paths but is cube-computable only for
//! intervention-additive queries. The paper's discussion proposes a
//! *hybrid*: a degree that uses some — but not all — causal structure and
//! can **always** be evaluated by the data cube.
//!
//! The hybrid implemented here is the *subtractive* degree:
//!
//! ```text
//! μ_hybrid(φ) = sign · E(u_1 − v_1, …, u_m − v_m)
//!   where u_j = q_j(D),  v_j = q_j(D_φ)
//! ```
//!
//! It removes exactly the direct contribution of the φ-satisfying
//! universal tuples (the Rule (i) seeds and their immediate join
//! partners), but does not charge φ for the *indirect* deletions the
//! backward cascade and semijoin reduction would add. Three properties
//! make it the natural middle point:
//!
//! * it **equals μ_interv exactly** whenever the query is
//!   intervention-additive (Definition 4.2) — in that case
//!   `q_j(D − Δ^φ) = u_j − v_j` by definition;
//! * it is a **lower bound on the causal effect** for monotone count
//!   queries: the true intervention deletes a superset of the direct
//!   tuples, so `q_j(D − Δ^φ) ≤ u_j − v_j` for counts;
//! * it is computed from the same cubes as μ_aggr, so it is *always*
//!   available in one cube pass (it is exactly the μ_interv column that
//!   [`crate::cube_algo`] produces under
//!   [`CubeAlgoConfig::unchecked`](crate::cube_algo::CubeAlgoConfig)).

use crate::error::Result;
use crate::explanation::Explanation;
use crate::question::UserQuestion;
use exq_relstore::aggregate::evaluate;
use exq_relstore::{Database, Predicate, Universal};

/// `μ_hybrid(φ)` by direct evaluation (the cube pipeline computes the
/// same quantity for all candidates at once).
pub fn mu_hybrid(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    phi: &Explanation,
) -> Result<f64> {
    mu_hybrid_predicate(db, u, question, &phi.conjunction().to_predicate())
}

/// [`mu_hybrid`] for an arbitrary boolean predicate.
pub fn mu_hybrid_predicate(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    phi: &Predicate,
) -> Result<f64> {
    let mut residual_vals = Vec::with_capacity(question.query.arity());
    for q in &question.query.aggregates {
        let total = evaluate(db, u, &q.selection, &q.func)?;
        let sel = Predicate::and([phi.clone(), q.selection.clone()]);
        let direct = evaluate(db, u, &sel, &q.func)?;
        residual_vals.push(total - direct);
    }
    Ok(question.direction.interv_sign() * question.query.combine(&residual_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_algo::{explanation_table, CubeAlgoConfig};
    use crate::degree::mu_interv;
    use crate::intervention::InterventionEngine;
    use crate::question::{AggregateQuery, Direction, NumericalQuery};
    use exq_relstore::aggregate::AggFunc;
    use exq_relstore::{Atom, SchemaBuilder, ValueType as T};

    /// Figure 3 with the back-and-forth key (COUNT(*) not additive).
    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db
    }

    #[test]
    fn hybrid_equals_interv_when_additive() {
        // COUNT(DISTINCT pubid) is additive on this schema.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let u = engine.universal();
        let venue = db.schema().attr("Publication", "venue").unwrap();
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: AggFunc::CountDistinct(pubid),
                selection: Predicate::eq(venue, "SIGMOD"),
            }),
            Direction::High,
        );
        for name in ["JG", "RR", "CM"] {
            let phi = Explanation::new(vec![Atom::eq(
                db.schema().attr("Author", "name").unwrap(),
                name,
            )]);
            let h = mu_hybrid(&db, u, &question, &phi).unwrap();
            let (i, _) = mu_interv(&engine, &question, &phi).unwrap();
            assert_eq!(h, i, "hybrid ≠ interv for {name}");
        }
    }

    #[test]
    fn hybrid_upper_bounds_interv_for_counts() {
        // COUNT(*) on the back-and-forth schema is NOT additive: the true
        // intervention deletes extra tuples, so Q(D−Δ) ≤ u − v, and with
        // dir = high (sign −1) μ_hybrid ≤ μ_interv.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let u = engine.universal();
        let venue = db.schema().attr("Publication", "venue").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(venue, "SIGMOD"))),
            Direction::High,
        );
        let mut diverged = false;
        for name in ["JG", "RR", "CM"] {
            let phi = Explanation::new(vec![Atom::eq(
                db.schema().attr("Author", "name").unwrap(),
                name,
            )]);
            let h = mu_hybrid(&db, u, &question, &phi).unwrap();
            let (i, _) = mu_interv(&engine, &question, &phi).unwrap();
            assert!(h <= i + 1e-12, "count bound violated for {name}: {h} > {i}");
            diverged |= (h - i).abs() > 1e-12;
        }
        assert!(
            diverged,
            "the back-and-forth cascade must show up somewhere"
        );
    }

    #[test]
    fn hybrid_is_the_unchecked_cube_column() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let venue = db.schema().attr("Publication", "venue").unwrap();
        let question = UserQuestion::new(
            NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(venue, "SIGMOD"))),
            Direction::High,
        );
        let dims = vec![db.schema().attr("Author", "name").unwrap()];
        let m = explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::unchecked()).unwrap();
        for row in &m.rows {
            let phi = m.explanation(row);
            let h = mu_hybrid(&db, &u, &question, &phi).unwrap();
            assert!(
                (row.mu_interv - h).abs() < 1e-12,
                "cube row {:?}",
                row.coord
            );
        }
    }
}
