//! The naive ("No Cube") baseline of Figure 12.
//!
//! Enumerates every candidate equality explanation over `A'` and, for each
//! one, runs program **P** and re-evaluates `Q` on the residual database.
//! Exact for *any* numerical query — no additivity needed — but every
//! candidate costs a fixpoint computation plus a universal-relation
//! evaluation, which is why the paper's Figure 12 shows the cube winning
//! dramatically. Used here both as the benchmark baseline and as ground
//! truth in the cube-correctness tests.

use crate::degree::{mu_aggr, mu_interv_of};
use crate::error::Result;
use crate::explanation::{enumerate_candidates, Explanation};
use crate::intervention::InterventionEngine;
use crate::question::UserQuestion;
use crate::table_m::{ExplanationRow, ExplanationTable};
use exq_relstore::aggregate::evaluate;
use exq_relstore::{par, AttrRef, Database, ExecConfig, Predicate};

/// Compute the explanation table `M` by brute force.
pub fn explanation_table_naive(
    db: &Database,
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    dims: &[AttrRef],
) -> Result<ExplanationTable> {
    explanation_table_naive_with(db, engine, question, dims, &ExecConfig::sequential())
}

/// [`explanation_table_naive`] with the per-candidate work fanned out
/// over `threads` OS threads.
pub fn explanation_table_naive_parallel(
    db: &Database,
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    dims: &[AttrRef],
    threads: usize,
) -> Result<ExplanationTable> {
    assert!(threads >= 1, "need at least one worker");
    explanation_table_naive_with(
        db,
        engine,
        question,
        dims,
        &ExecConfig::with_threads(threads),
    )
}

/// [`explanation_table_naive`] on an explicit executor — the Section 6(i)
/// "optimize the iterative algorithm" direction. Program **P** runs
/// against shared immutable state (`&Database`, the pre-computed
/// universal relation, the backward-cascade maps), so candidates
/// partition embarrassingly; each worker builds its own row set and the
/// results are stitched back in candidate order, making the output
/// bit-identical to the sequential path. If candidates fail, the error
/// returned is the **first failing candidate's in candidate order** —
/// never a thread-completion-order artifact.
pub fn explanation_table_naive_with(
    db: &Database,
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    dims: &[AttrRef],
    exec: &ExecConfig,
) -> Result<ExplanationTable> {
    let u = engine.universal();
    // Same candidate set as Algorithm 1: explanations observed under at
    // least one sub-query selection.
    let relevance = Predicate::or(
        question
            .query
            .aggregates
            .iter()
            .map(|q| q.selection.clone()),
    );
    let candidates = enumerate_candidates(db, u, dims, &relevance);
    let sink = exec.metrics();
    let _span = sink.span("naive");
    sink.incr("naive.runs");
    sink.add("engine.candidates_evaluated", candidates.len() as u64);

    let block = par::even_block_size(exec, candidates.len());
    let parts = par::try_map_blocks(exec, &candidates, block, |_, chunk| -> Result<_> {
        let mut rows = Vec::with_capacity(chunk.len());
        for phi in chunk {
            // Per-candidate wall-clock timing; the span *count* (one per
            // candidate) is deterministic, the duration is not.
            rows.push(sink.time("naive.candidate", || {
                candidate_row(db, engine, question, dims, phi)
            })?);
        }
        Ok(rows)
    })?;
    let mut rows: Vec<ExplanationRow> = parts.into_iter().flatten().collect();
    rows.sort_by(|a, b| a.coord.cmp(&b.coord));

    // Totals after the candidate sweep, so the error surfaced by a failing
    // run is the deterministic per-candidate one above, not a phase-order
    // accident.
    let totals = question.query.aggregate_values(db, u)?;
    Ok(ExplanationTable {
        dims: dims.to_vec(),
        totals,
        rows,
    })
}

/// One candidate's full evaluation: program **P**, `μ_interv`, the `v_j`
/// column values, and `μ_aggr`.
fn candidate_row(
    db: &Database,
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    dims: &[AttrRef],
    phi: &Explanation,
) -> Result<ExplanationRow> {
    // μ_interv: program P then direct evaluation of Q(D − Δ^φ).
    let iv = engine.compute(phi);
    let mu_i = mu_interv_of(db, question, &iv)?;

    // μ_aggr and the v_j values over σ_φ(U).
    let u = engine.universal();
    let phi_pred = phi.conjunction().to_predicate();
    let mut values = Vec::with_capacity(question.query.arity());
    for q in &question.query.aggregates {
        let sel = Predicate::and([phi_pred.clone(), q.selection.clone()]);
        values.push(evaluate(db, u, &sel, &q.func)?);
    }
    let mu_a = mu_aggr(db, u, question, phi)?;

    Ok(ExplanationRow {
        coord: phi
            .to_coord(dims)
            .expect("enumerated candidates are equality-only over dims"),
        values,
        mu_interv: mu_i,
        mu_aggr: mu_a,
    })
}

/// Compute the degrees of a *single* explanation exactly (the drill-down
/// path: a user clicks one explanation and wants its exact effect).
pub fn degrees_of(
    db: &Database,
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    phi: &Explanation,
) -> Result<(f64, f64)> {
    let iv = engine.compute(phi);
    let mu_i = mu_interv_of(db, question, &iv)?;
    let mu_a = mu_aggr(db, engine.universal(), question, phi)?;
    Ok((mu_i, mu_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_algo::{explanation_table, CubeAlgoConfig};
    use crate::question::{AggregateQuery, Direction, NumericalQuery};
    use exq_relstore::{SchemaBuilder, Universal, Value, ValueType as T};

    fn flat_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[
                    ("id", T::Int),
                    ("g", T::Str),
                    ("h", T::Str),
                    ("outcome", T::Str),
                ],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let rows = [
            ("a", "x", "good"),
            ("a", "x", "good"),
            ("a", "y", "good"),
            ("a", "y", "poor"),
            ("b", "x", "good"),
            ("b", "y", "poor"),
            ("b", "y", "poor"),
        ];
        for (i, (g, h, o)) in rows.iter().enumerate() {
            db.insert(
                "R",
                vec![(i as i64).into(), (*g).into(), (*h).into(), (*o).into()],
            )
            .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let outcome = db.schema().attr("R", "outcome").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(outcome, "good")),
                AggregateQuery::count_star(Predicate::eq(outcome, "poor")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    /// On a single-table schema with no foreign keys, COUNT(*) is
    /// intervention-additive, so the cube and naive tables must agree
    /// exactly — this is the headline correctness test for Algorithm 1.
    #[test]
    fn naive_and_cube_tables_agree_when_additive() {
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let q = question(&db);
        let dims = vec![
            db.schema().attr("R", "g").unwrap(),
            db.schema().attr("R", "h").unwrap(),
        ];

        let naive = explanation_table_naive(&db, &engine, &q, &dims).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let cube = explanation_table(&db, &u, &q, &dims, CubeAlgoConfig::checked()).unwrap();

        assert_eq!(naive.totals, cube.totals);
        assert_eq!(naive.len(), cube.len());
        for (n, c) in naive.rows.iter().zip(&cube.rows) {
            assert_eq!(n.coord, c.coord);
            assert_eq!(n.values, c.values, "v_j mismatch at {:?}", n.coord);
            assert!(
                (n.mu_interv - c.mu_interv).abs() < 1e-9,
                "μ_interv mismatch at {:?}: naive {} cube {}",
                n.coord,
                n.mu_interv,
                c.mu_interv
            );
            assert!(
                (n.mu_aggr - c.mu_aggr).abs() < 1e-9,
                "μ_aggr mismatch at {:?}",
                n.coord
            );
        }
    }

    #[test]
    fn single_explanation_drilldown() {
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let q = question(&db);
        let g = db.schema().attr("R", "g").unwrap();
        let phi = Explanation::new(vec![exq_relstore::Atom::eq(g, "a")]);
        let (mu_i, mu_a) = degrees_of(&db, &engine, &q, &phi).unwrap();
        // Removing g=a leaves 1 good, 2 poor: μ_interv = -(1+ε)/(2+ε).
        let eps = 1e-4;
        assert!((mu_i - (-(1.0 + eps) / (2.0 + eps))).abs() < 1e-12);
        assert!((mu_a - (3.0 + eps) / (1.0 + eps)).abs() < 1e-12);
    }

    #[test]
    fn parallel_naive_matches_sequential() {
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let q = question(&db);
        let dims = vec![
            db.schema().attr("R", "g").unwrap(),
            db.schema().attr("R", "h").unwrap(),
        ];
        let sequential = explanation_table_naive(&db, &engine, &q, &dims).unwrap();
        for threads in [1, 2, 5, 16] {
            let parallel =
                explanation_table_naive_parallel(&db, &engine, &q, &dims, threads).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_error_is_first_failing_candidates_in_candidate_order() {
        // Two groups fail with *different* errors: removing g=a leaves
        // group b's non-numeric y in the residual (NotNumeric on R.y),
        // removing g=b leaves group a's non-numeric x (NotNumeric on R.x).
        // The reported error must be candidate a's — the first in candidate
        // order — at every thread count, not whichever worker finished
        // first.
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("x", T::Any), ("y", T::Any)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![0.into(), "a".into(), "bad-a".into(), 1.into()])
            .unwrap();
        db.insert("R", vec![1.into(), "b".into(), 1.into(), "bad-b".into()])
            .unwrap();
        let x = db.schema().attr("R", "x").unwrap();
        let y = db.schema().attr("R", "y").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery {
                    func: exq_relstore::aggregate::AggFunc::Sum(x),
                    selection: Predicate::True,
                },
                AggregateQuery {
                    func: exq_relstore::aggregate::AggFunc::Sum(y),
                    selection: Predicate::True,
                },
            ),
            Direction::High,
        );
        let engine = InterventionEngine::new(&db);
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        let sequential = explanation_table_naive(&db, &engine, &q, &dims).unwrap_err();
        assert!(
            sequential.to_string().contains("R.y"),
            "candidate g=a fails first, on the residual's y column: {sequential}"
        );
        for threads in [2, 7, 64] {
            let parallel =
                explanation_table_naive_parallel(&db, &engine, &q, &dims, threads).unwrap_err();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_naive_with_more_threads_than_candidates() {
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let q = question(&db);
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        let sequential = explanation_table_naive(&db, &engine, &q, &dims).unwrap();
        assert!(sequential.len() < 64);
        let parallel = explanation_table_naive_parallel(&db, &engine, &q, &dims, 64).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_naive_with_no_candidates() {
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let outcome = db.schema().attr("R", "outcome").unwrap();
        // No tuple matches either selection → empty candidate set.
        let q = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(outcome, "zzz")),
                AggregateQuery::count_star(Predicate::eq(outcome, "qqq")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        );
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        for threads in [1, 8] {
            let t = explanation_table_naive_parallel(&db, &engine, &q, &dims, threads).unwrap();
            assert!(t.is_empty());
            assert_eq!(t.totals, vec![0.0, 0.0]);
        }
    }

    #[test]
    fn naive_handles_non_additive_queries() {
        // SUM over a single table: the cube pipeline refuses, the naive
        // engine answers.
        let db = flat_db();
        let engine = InterventionEngine::new(&db);
        let id = db.schema().attr("R", "id").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: exq_relstore::aggregate::AggFunc::Sum(id),
                selection: Predicate::True,
            }),
            Direction::Low,
        );
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        let t = explanation_table_naive(&db, &engine, &q, &dims).unwrap();
        // ids: g=a → {0,1,2,3} sums to 6; g=b → {4,5,6} sums to 15.
        // μ_interv(g=a) = +Q(D−Δ) = 15 (dir low).
        let row = t.find(&[Value::str("a")]).unwrap();
        assert_eq!(row.mu_interv, 15.0);
        assert_eq!(row.values, vec![6.0]);
    }
}
