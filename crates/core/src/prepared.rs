//! Pre-built, shareable pipeline intermediates for a resident database.
//!
//! A one-shot `explain` pays for the expensive intermediates — the
//! semijoin reduction and the universal relation — on every call. A
//! resident service (many questions against the same database, the
//! setting of the paper's §6 prototype) wants them built **once** and
//! shared. [`PreparedDb`] is that unit: it owns the database behind an
//! `Arc`, reduces it, joins it, and hands out [`Explainer`]s seeded with
//! the shared universal relation via [`Explainer::with_universal`].
//!
//! Semijoin reduction only removes tuples that participate in **no**
//! universal tuple (Yannakakis), and the join expands surviving root rows
//! in ascending row-id order either way — so the universal relation
//! computed over the reduced view is bit-identical to the one computed
//! over the full view, and every explanation produced through a
//! `PreparedDb` is bit-identical to the one-shot pipeline's. The tests
//! below pin that contract.
//!
//! ```
//! use exq_core::prepared::PreparedDb;
//! use exq_core::prelude::*;
//! use exq_relstore::{Database, Predicate, SchemaBuilder, ValueType};
//! use std::sync::Arc;
//!
//! let schema = SchemaBuilder::new()
//!     .relation("R", &[("id", ValueType::Int), ("g", ValueType::Str)], &["id"])
//!     .build()?;
//! let mut db = Database::new(schema);
//! db.insert("R", vec![1.into(), "a".into()])?;
//! db.insert("R", vec![2.into(), "b".into()])?;
//! let prepared = PreparedDb::build(Arc::new(db));
//! let g = prepared.db().schema().attr("R", "g")?;
//! let question = UserQuestion::new(
//!     NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(g, "a"))),
//!     Direction::High,
//! );
//! // Two questions, one join.
//! let top = prepared.explainer(question.clone()).attr_names(&["R.g"])?.top(DegreeKind::Intervention, 1)?;
//! assert_eq!(top.len(), 1);
//! let again = prepared.explainer(question).attr_names(&["R.g"])?.top(DegreeKind::Intervention, 1)?;
//! assert_eq!(top[0].degree, again[0].degree);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::explainer::Explainer;
use crate::question::UserQuestion;
use exq_relstore::{semijoin, AppendBatch, Database, ExecConfig, Universal, View};
use std::sync::Arc;

/// A database with its expensive intermediates built once: the
/// semijoin-reduced view and the universal relation, both shared via
/// `Arc` so any number of concurrent explainers can borrow them.
#[derive(Debug, Clone)]
pub struct PreparedDb {
    db: Arc<Database>,
    reduced: Arc<View>,
    universal: Arc<Universal>,
}

impl PreparedDb {
    /// Build the intermediates sequentially.
    pub fn build(db: Arc<Database>) -> PreparedDb {
        PreparedDb::build_with(db, &ExecConfig::sequential())
    }

    /// Build the intermediates on `exec`'s workers, recording the usual
    /// `semijoin.*`/`join.*` counters into its metrics sink. Results are
    /// bit-identical at every thread count.
    pub fn build_with(db: Arc<Database>, exec: &ExecConfig) -> PreparedDb {
        let _span = exec.metrics().span("prepare");
        // Columnar projections first: the reduction and join below (and
        // every later query) read them, and building them here attributes
        // the one-time dictionary scan to preparation, not the first query.
        let _ = db.columns();
        let mut view = db.full_view();
        semijoin::reduce_in_place_with(&db, &mut view, exec);
        let universal = Arc::new(Universal::compute_with(&db, &view, exec));
        PreparedDb {
            db,
            reduced: Arc::new(view),
            universal,
        }
    }

    /// [`PreparedDb::append_with`] on the sequential executor.
    pub fn append(&self, batch: AppendBatch) -> exq_relstore::Result<(PreparedDb, usize)> {
        self.append_with(batch, &ExecConfig::sequential())
    }

    /// Apply a row-append batch and return a **new** `PreparedDb` whose
    /// intermediates are delta-maintained, plus the number of rows
    /// appended. `self` is untouched — explainers holding the old
    /// intermediates keep answering against the pre-append epoch, which
    /// is what lets a server swap epochs without quiescing readers.
    ///
    /// The maintenance work is proportional to the delta, not the
    /// database: [`Database::append_batch`] extends the columnar store
    /// in place (dictionary codes and column prefixes never change),
    /// [`Universal::extend_for_append_with`] joins only the tuple
    /// combinations that involve a new row (the paper's program-**P**
    /// fixpoint run forward from the appended seed), and the reduced
    /// view grows by exactly the rows those new tuples touch — full
    /// semijoin reduction keeps precisely the rows participating in
    /// some universal tuple, appends never *un*-reduce an old row, so
    /// old-live ∪ delta-touched is the new reduction. The differential
    /// suite (`tests/incremental.rs`) pins all three against a
    /// from-scratch [`PreparedDb::build_with`] at every epoch and
    /// thread count.
    ///
    /// On any validation error the batch is rolled back atomically and
    /// `self` remains the only epoch.
    pub fn append_with(
        &self,
        batch: AppendBatch,
        exec: &ExecConfig,
    ) -> exq_relstore::Result<(PreparedDb, usize)> {
        let _span = exec.metrics().span("ingest.apply");
        let old_lens: Vec<usize> = (0..self.db.schema().relation_count())
            .map(|rel| self.db.relation_len(rel))
            .collect();
        let mut db = (*self.db).clone();
        let appended = db.append_batch(batch)?;
        let (universal, touched) =
            Universal::extend_for_append_with(&self.universal, &db, &old_lens, exec);
        let mut reduced = (*self.reduced).clone();
        for (live, t) in reduced.live.iter_mut().zip(&touched) {
            live.grow(t.capacity());
            live.union_with(t);
        }
        Ok((
            PreparedDb {
                db: Arc::new(db),
                reduced: Arc::new(reduced),
                universal: Arc::new(universal),
            },
            appended,
        ))
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Shared handle to the database.
    pub fn db_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The semijoin-reduced view the universal relation was joined over.
    pub fn reduced(&self) -> &View {
        &self.reduced
    }

    /// The pre-computed universal relation.
    pub fn universal(&self) -> &Universal {
        &self.universal
    }

    /// Shared handle to the universal relation.
    pub fn universal_arc(&self) -> Arc<Universal> {
        Arc::clone(&self.universal)
    }

    /// Tuples that survive the semijoin reduction (= tuples participating
    /// in at least one universal tuple).
    pub fn surviving_tuples(&self) -> usize {
        self.reduced.total_live()
    }

    /// An [`Explainer`] for one question, seeded with the shared
    /// universal relation — no per-question join.
    pub fn explainer(&self, question: UserQuestion) -> Explainer<'_> {
        Explainer::new(&self.db, question).with_universal(self.universal_arc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use exq_relstore::aggregate::AggFunc;
    use exq_relstore::{Predicate, SchemaBuilder, ValueType as T};

    /// Two joined relations with a dangling `A` row the semijoin drops.
    fn linked_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("A", &[("id", T::Int), ("g", T::Str)], &["id"])
            .relation(
                "B",
                &[("id", T::Int), ("a", T::Int), ("ok", T::Str)],
                &["id"],
            )
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, g) in [(1, "x"), (2, "y"), (3, "dangling")] {
            db.insert("A", vec![id.into(), g.into()]).unwrap();
        }
        for (id, a, ok) in [(10, 1, "y"), (11, 1, "n"), (12, 2, "y"), (13, 2, "y")] {
            db.insert("B", vec![id.into(), a.into(), ok.into()])
                .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let ok = db.schema().attr("B", "ok").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    #[test]
    fn reduction_drops_dangling_rows_only() {
        let db = linked_db();
        let total = db.total_tuples();
        let prepared = PreparedDb::build(Arc::new(db));
        assert_eq!(prepared.surviving_tuples(), total - 1);
    }

    #[test]
    fn prepared_table_is_bit_identical_to_one_shot() {
        let db = linked_db();
        let (one_shot, _) = Explainer::new(&db, question(&db))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        let prepared = PreparedDb::build(Arc::new(db));
        let (shared, _) = prepared
            .explainer(question(prepared.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        assert_eq!(one_shot, shared);
    }

    #[test]
    fn prepared_universal_is_shared_not_recomputed() {
        let db = linked_db();
        let prepared = PreparedDb::build(Arc::new(db));
        let sink = exq_obs::MetricsSink::recording();
        let exec = ExecConfig::sequential().with_metrics(sink.clone());
        let q = question(prepared.db());
        let explainer = prepared
            .explainer(q)
            .exec(exec)
            .attr_names(&["A.g"])
            .unwrap();
        explainer.table().unwrap();
        // The seeded universal short-circuits the join: no join counters
        // fire under the explainer's own sink.
        assert_eq!(sink.snapshot().counter("join.runs"), 0);
    }

    #[test]
    fn drill_through_prepared_matches_one_shot() {
        let db = linked_db();
        let g = db.schema().attr("A", "g").unwrap();
        let phi = crate::explanation::Explanation::new(vec![exq_relstore::Atom::eq(g, "x")]);
        let one_shot = Explainer::new(&db, question(&db))
            .attr_names(&["A.g"])
            .unwrap()
            .explain(&phi)
            .unwrap();
        let prepared = PreparedDb::build(Arc::new(db));
        let shared = prepared
            .explainer(question(prepared.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .explain(&phi)
            .unwrap();
        assert_eq!(one_shot.mu_interv, shared.mu_interv);
        assert_eq!(one_shot.mu_aggr, shared.mu_aggr);
        assert_eq!(one_shot.mu_hybrid, shared.mu_hybrid);
        assert_eq!(
            one_shot.intervention.total_deleted(),
            shared.intervention.total_deleted()
        );
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let db = Arc::new(linked_db());
        let base = PreparedDb::build(Arc::clone(&db));
        let (base_table, _) = base
            .explainer(question(base.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        for threads in [2, 7] {
            let p = PreparedDb::build_with(Arc::clone(&db), &ExecConfig::with_threads(threads));
            assert_eq!(p.surviving_tuples(), base.surviving_tuples());
            let (t, _) = p
                .explainer(question(p.db()))
                .attr_names(&["A.g"])
                .unwrap()
                .table()
                .unwrap();
            assert_eq!(base_table, t, "threads = {threads}");
        }
    }

    fn linked_batch() -> AppendBatch {
        vec![
            ("A".into(), vec![vec![4.into(), "x".into()]]),
            (
                "B".into(),
                vec![
                    vec![14.into(), 4.into(), "n".into()],
                    vec![15.into(), 3.into(), "y".into()],
                ],
            ),
        ]
    }

    #[test]
    fn append_matches_rebuild_from_scratch() {
        let prepared = PreparedDb::build(Arc::new(linked_db()));
        let (appended, n) = prepared.append(linked_batch()).unwrap();
        assert_eq!(n, 3);

        let rebuilt = PreparedDb::build(Arc::new((*appended.db).clone()));
        assert_eq!(appended.reduced(), rebuilt.reduced());
        assert_eq!(appended.universal().len(), rebuilt.universal().len());
        assert!(appended.universal().iter().eq(rebuilt.universal().iter()));

        let (inc_table, _) = appended
            .explainer(question(appended.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        let (rebuilt_table, _) = rebuilt
            .explainer(question(rebuilt.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        assert_eq!(inc_table, rebuilt_table);
    }

    #[test]
    fn append_makes_previously_dangling_rows_live() {
        // Row A(3) dangles until the batch gives it a B row; the reduced
        // view must pick up both it and the new rows.
        let prepared = PreparedDb::build(Arc::new(linked_db()));
        let a = prepared.db().schema().relation_index("A").unwrap();
        assert!(!prepared.reduced().live(a).contains(2));
        let (appended, _) = prepared.append(linked_batch()).unwrap();
        assert!(appended.reduced().live(a).contains(2));
        assert!(appended.reduced().live(a).contains(3));
    }

    #[test]
    fn append_leaves_old_epoch_readable() {
        let prepared = PreparedDb::build(Arc::new(linked_db()));
        let (before, _) = prepared
            .explainer(question(prepared.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        let (appended, _) = prepared.append(linked_batch()).unwrap();
        // The old epoch still answers identically, from its own rows.
        let (after_old, _) = prepared
            .explainer(question(prepared.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        assert_eq!(before, after_old);
        assert_eq!(
            prepared.db().total_tuples() + 3,
            appended.db().total_tuples()
        );
    }

    #[test]
    fn append_failure_changes_nothing() {
        let prepared = PreparedDb::build(Arc::new(linked_db()));
        // Dangling FK: B row referencing a missing A key.
        let err = prepared.append(vec![(
            "B".into(),
            vec![vec![99.into(), 42.into(), "y".into()]],
        )]);
        assert!(err.is_err());
        assert_eq!(prepared.db().total_tuples(), 7);
    }

    #[test]
    fn parallel_append_is_bit_identical() {
        let prepared = PreparedDb::build(Arc::new(linked_db()));
        let (base, _) = prepared.append(linked_batch()).unwrap();
        let (base_table, _) = base
            .explainer(question(base.db()))
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        for threads in [2, 7] {
            let exec = ExecConfig::with_threads(threads);
            let (p, _) = prepared.append_with(linked_batch(), &exec).unwrap();
            assert_eq!(p.reduced(), base.reduced(), "threads = {threads}");
            assert!(p.universal().iter().eq(base.universal().iter()));
            let (t, _) = p
                .explainer(question(p.db()))
                .attr_names(&["A.g"])
                .unwrap()
                .table()
                .unwrap();
            assert_eq!(base_table, t, "threads = {threads}");
        }
    }

    #[test]
    fn non_additive_question_also_reuses_universal() {
        let db = linked_db();
        let id = db.schema().attr("B", "id").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: AggFunc::Sum(id),
                selection: Predicate::True,
            }),
            Direction::Low,
        );
        let (one_shot, choice) = Explainer::new(&db, q.clone())
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        assert_eq!(choice, crate::explainer::EngineChoice::Naive);
        let prepared = PreparedDb::build(Arc::new(db));
        let (shared, _) = prepared
            .explainer(q)
            .attr_names(&["A.g"])
            .unwrap()
            .table()
            .unwrap();
        assert_eq!(one_shot, shared);
    }
}
