//! Text format for user questions.
//!
//! A *question file* declares the aggregate sub-queries, the combining
//! arithmetic expression, the direction, and (optionally) the smoothing
//! constant — everything in Definition 2.1 — so a question can live in
//! configuration instead of Rust code:
//!
//! ```text
//! # Q_Marital (Section 5.1)
//! agg q1 = count(*) where marital = 'married' and ap = 'good'
//! agg q2 = count(*) where marital = 'married' and ap = 'poor'
//! agg q3 = count(*) where marital = 'unmarried' and ap = 'good'
//! agg q4 = count(*) where marital = 'unmarried' and ap = 'poor'
//! expr (q1 / q2) / (q3 / q4)
//! dir high
//! smoothing 0.0001
//! ```
//!
//! Aggregates: `count(*)`, `count(distinct Attr)`, `sum(Attr)`,
//! `avg(Attr)`, `min(Attr)`, `max(Attr)`, each with an optional `where`
//! clause in the [`exq_relstore::parse`] predicate language. Expressions
//! support `+ - * /`, unary `-`, `log(…)`, `exp(…)`, parentheses, numeric
//! literals, and the declared aggregate names.

use crate::error::{Error, Result};
use crate::question::{AggregateQuery, Direction, NumExpr, NumericalQuery, UserQuestion};
use exq_relstore::aggregate::AggFunc;
use exq_relstore::parse::{parse_predicate_at, resolve_attr};
use exq_relstore::text::{off_of, strip_comment};
use exq_relstore::{DatabaseSchema, Predicate};

fn perr(line: usize, col: usize, message: impl Into<String>) -> Error {
    Error::Store(exq_relstore::Error::Parse {
        line,
        col,
        message: message.into(),
    })
}

/// Parse a question file against a schema.
pub fn parse_question(schema: &DatabaseSchema, text: &str) -> Result<UserQuestion> {
    let mut names: Vec<String> = Vec::new();
    let mut aggregates: Vec<AggregateQuery> = Vec::new();
    let mut expr: Option<NumExpr> = None;
    let mut dir: Option<Direction> = None;
    let mut smoothing = 0.0f64;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("agg ") {
            let (name, spec) = rest.split_once('=').ok_or_else(|| {
                perr(
                    line_no,
                    off_of(raw, rest) + 1,
                    "expected `agg name = function(...)`",
                )
            })?;
            let name_t = name.trim();
            if name_t.is_empty() || names.iter().any(|n| n == name_t) {
                return Err(perr(
                    line_no,
                    off_of(raw, if name_t.is_empty() { rest } else { name_t }) + 1,
                    format!("missing or duplicate aggregate name `{name_t}`"),
                ));
            }
            aggregates.push(parse_aggregate(schema, raw, spec.trim(), line_no)?);
            names.push(name_t.to_string());
        } else if let Some(rest) = line.strip_prefix("expr ") {
            expr = Some(parse_num_expr(
                rest.trim(),
                &names,
                line_no,
                off_of(raw, rest.trim()),
            )?);
        } else if let Some(rest) = line.strip_prefix("dir ") {
            dir = Some(match rest.trim() {
                "high" => Direction::High,
                "low" => Direction::Low,
                other => {
                    return Err(perr(
                        line_no,
                        off_of(raw, rest.trim()) + 1,
                        format!("direction must be high|low, got `{other}`"),
                    ))
                }
            });
        } else if let Some(rest) = line.strip_prefix("smoothing ") {
            smoothing = rest.trim().parse().map_err(|_| {
                perr(
                    line_no,
                    off_of(raw, rest.trim()) + 1,
                    format!("bad smoothing constant `{}`", rest.trim()),
                )
            })?;
        } else {
            return Err(perr(
                line_no,
                off_of(raw, line) + 1,
                format!("expected agg/expr/dir/smoothing, got `{line}`"),
            ));
        }
    }

    let dir = dir.ok_or_else(|| perr(0, 0, "missing `dir high|low`"))?;
    let expr = match expr {
        Some(e) => e,
        // Default: single aggregate.
        None if aggregates.len() == 1 => NumExpr::Agg(0),
        None => {
            return Err(perr(
                0,
                0,
                "missing `expr …` (required with several aggregates)",
            ))
        }
    };
    let query = NumericalQuery::new(aggregates, expr)?.with_smoothing(smoothing);
    Ok(UserQuestion::new(query, dir))
}

/// `function(args) [where predicate]`. `raw` is the full source line
/// `spec` came from, for column reporting.
fn parse_aggregate(
    schema: &DatabaseSchema,
    raw: &str,
    spec: &str,
    line: usize,
) -> Result<AggregateQuery> {
    let (func_part, where_part) = match spec_split_where(spec) {
        Some((f, w)) => (f.trim(), Some(w.trim())),
        None => (spec.trim(), None),
    };
    let at = |sub: &str| off_of(raw, sub) + 1;
    let open = func_part
        .find('(')
        .ok_or_else(|| perr(line, at(func_part), "expected `(` in aggregate function"))?;
    if !func_part.ends_with(')') {
        return Err(perr(
            line,
            at(func_part) + func_part.chars().count(),
            "expected `)` after aggregate arguments",
        ));
    }
    let fname = func_part[..open].trim().to_ascii_lowercase();
    let arg = func_part[open + 1..func_part.len() - 1].trim();
    let attr_of = |name: &str| {
        resolve_attr(schema, name)
            .map_err(|e| match e {
                // resolve_attr has no position information; patch in the
                // argument's location.
                exq_relstore::Error::Parse {
                    col: 0, message, ..
                } => exq_relstore::Error::Parse {
                    line,
                    col: at(name),
                    message,
                },
                other => other,
            })
            .map_err(Error::Store)
    };
    let func = match fname.as_str() {
        "count" => {
            if arg == "*" {
                AggFunc::CountStar
            } else if let Some(a) = arg.strip_prefix("distinct ") {
                AggFunc::CountDistinct(attr_of(a.trim())?)
            } else {
                return Err(perr(line, at(arg), "count takes `*` or `distinct Attr`"));
            }
        }
        "sum" => AggFunc::Sum(attr_of(arg)?),
        "avg" => AggFunc::Avg(attr_of(arg)?),
        "min" => AggFunc::Min(attr_of(arg)?),
        "max" => AggFunc::Max(attr_of(arg)?),
        other => {
            return Err(perr(
                line,
                at(func_part),
                format!("unknown aggregate `{other}`"),
            ))
        }
    };
    let selection = match where_part {
        Some(w) => parse_predicate_at(schema, w, line, off_of(raw, w)).map_err(Error::Store)?,
        None => Predicate::True,
    };
    Ok(AggregateQuery { func, selection })
}

/// Split at the top-level ` where ` keyword (outside quotes).
// exq-lint: allow(L006): the strict variant of analyze's tolerant split_where; they must diverge (this one refuses, that one recovers)
fn spec_split_where(spec: &str) -> Option<(&str, &str)> {
    let lower = spec.to_ascii_lowercase();
    let mut in_quote: Option<char> = None;
    let bytes = lower.as_bytes();
    for i in 0..bytes.len() {
        let c = bytes[i] as char;
        match in_quote {
            Some(q) if c == q => in_quote = None,
            Some(_) => {}
            None if c == '\'' || c == '"' => in_quote = Some(c),
            None => {
                if lower[i..].starts_with("where ")
                    && (i == 0 || bytes[i - 1].is_ascii_whitespace())
                {
                    return Some((&spec[..i], &spec[i + "where ".len()..]));
                }
            }
        }
    }
    None
}

// --------------------------------------------------------------------
// Arithmetic expressions over aggregate names
// --------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum ETok {
    Num(f64),
    Name(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Log,
    Exp,
}

/// Tokenize an expression; each token carries its 1-based char column
/// within `text` (offset by the caller's `col0` when reporting).
fn etokenize(text: &str, line: usize, col0: usize) -> Result<Vec<(ETok, usize)>> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let col = i + 1;
        match c {
            c if c.is_whitespace() => i += 1,
            '+' => {
                out.push((ETok::Plus, col));
                i += 1;
            }
            '-' => {
                out.push((ETok::Minus, col));
                i += 1;
            }
            '*' => {
                out.push((ETok::Star, col));
                i += 1;
            }
            '/' => {
                out.push((ETok::Slash, col));
                i += 1;
            }
            '(' => {
                out.push((ETok::LParen, col));
                i += 1;
            }
            ')' => {
                out.push((ETok::RParen, col));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push((
                    ETok::Num(
                        text.parse()
                            .map_err(|_| perr(line, col0 + col, format!("bad number `{text}`")))?,
                    ),
                    col,
                ));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "log" => out.push((ETok::Log, col)),
                    "exp" => out.push((ETok::Exp, col)),
                    _ => out.push((ETok::Name(word), col)),
                }
            }
            other => {
                return Err(perr(
                    line,
                    col0 + col,
                    format!("unexpected character `{other}` in expr"),
                ))
            }
        }
    }
    Ok(out)
}

struct EParser<'a> {
    tokens: Vec<(ETok, usize)>,
    names: &'a [String],
    pos: usize,
    line: usize,
    col0: usize,
    end_col: usize,
}

impl EParser<'_> {
    fn peek(&self) -> Option<&ETok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// Column of the current token (or end-of-input), in source
    /// coordinates.
    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.end_col, |&(_, col)| col)
            + self.col0
    }

    // exq-lint: allow(L006): cursor advance over this parser's own ETok stream; see relstore::parse::next
    fn next(&mut self) -> Option<ETok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<NumExpr> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(ETok::Plus) => {
                    self.next();
                    acc = NumExpr::Add(Box::new(acc), Box::new(self.term()?));
                }
                Some(ETok::Minus) => {
                    self.next();
                    acc = NumExpr::Sub(Box::new(acc), Box::new(self.term()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<NumExpr> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(ETok::Star) => {
                    self.next();
                    acc = NumExpr::Mul(Box::new(acc), Box::new(self.factor()?));
                }
                Some(ETok::Slash) => {
                    self.next();
                    acc = NumExpr::Div(Box::new(acc), Box::new(self.factor()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<NumExpr> {
        let col = self.here();
        match self.next() {
            Some(ETok::Minus) => Ok(NumExpr::Neg(Box::new(self.factor()?))),
            Some(ETok::Num(n)) => Ok(NumExpr::Const(n)),
            Some(ETok::Name(name)) => {
                let idx = self.names.iter().position(|n| *n == name).ok_or_else(|| {
                    perr(self.line, col, format!("unknown aggregate name `{name}`"))
                })?;
                Ok(NumExpr::Agg(idx))
            }
            Some(ETok::LParen) => {
                let inner = self.expr()?;
                let close = self.here();
                match self.next() {
                    Some(ETok::RParen) => Ok(inner),
                    _ => Err(perr(self.line, close, "expected `)` in expr")),
                }
            }
            Some(ETok::Log) => Ok(NumExpr::Log(Box::new(self.parenthesized()?))),
            Some(ETok::Exp) => Ok(NumExpr::Exp(Box::new(self.parenthesized()?))),
            other => Err(perr(
                self.line,
                col,
                format!("unexpected token in expr: {other:?}"),
            )),
        }
    }

    fn parenthesized(&mut self) -> Result<NumExpr> {
        let col = self.here();
        match self.next() {
            Some(ETok::LParen) => {}
            _ => return Err(perr(self.line, col, "expected `(` after log/exp")),
        }
        let inner = self.expr()?;
        let close = self.here();
        match self.next() {
            Some(ETok::RParen) => Ok(inner),
            _ => Err(perr(
                self.line,
                close,
                "expected `)` after log/exp argument",
            )),
        }
    }
}

/// Parse an arithmetic expression over aggregate names. `col0` is the
/// 0-based char offset of `text` within its source line.
fn parse_num_expr(text: &str, names: &[String], line: usize, col0: usize) -> Result<NumExpr> {
    let tokens = etokenize(text, line, col0)?;
    let mut parser = EParser {
        tokens,
        names,
        pos: 0,
        line,
        col0,
        end_col: text.chars().count() + 1,
    };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        let col = parser.here();
        return Err(perr(line, col, "trailing tokens in expr"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::parse::parse_schema;
    use exq_relstore::Database;

    fn schema() -> DatabaseSchema {
        parse_schema("relation R(id: int key, marital: str, ap: str, x: int)").unwrap()
    }

    fn sample_db() -> Database {
        let mut db = Database::new(schema());
        for (i, (m, ap, x)) in [
            ("married", "good", 10),
            ("married", "poor", 2),
            ("unmarried", "good", 5),
            ("unmarried", "poor", 5),
        ]
        .iter()
        .enumerate()
        {
            db.insert(
                "R",
                vec![(i as i64).into(), (*m).into(), (*ap).into(), (*x).into()],
            )
            .unwrap();
        }
        db
    }

    const Q_MARITAL: &str = "
# Q_Marital
agg q1 = count(*) where marital = 'married' and ap = 'good'
agg q2 = count(*) where marital = 'married' and ap = 'poor'
agg q3 = count(*) where marital = 'unmarried' and ap = 'good'
agg q4 = count(*) where marital = 'unmarried' and ap = 'poor'
expr (q1 / q2) / (q3 / q4)
dir high
smoothing 0.0001
";

    #[test]
    fn parses_and_evaluates_q_marital() {
        let db = sample_db();
        let q = parse_question(db.schema(), Q_MARITAL).unwrap();
        assert_eq!(q.direction, Direction::High);
        assert_eq!(q.query.arity(), 4);
        assert_eq!(q.query.smoothing, 1e-4);
        // (1/... counts: married 1 good? No: 1 row each → (1/1)/(1/1)=1.
        let v = q.query.eval(&db).unwrap();
        assert!((v - 1.0).abs() < 1e-3, "Q = {v}");
    }

    #[test]
    fn single_aggregate_defaults_expr() {
        let db = sample_db();
        let q = parse_question(db.schema(), "agg n = count(*)\ndir low\n").unwrap();
        assert_eq!(q.query.eval(&db).unwrap(), 4.0);
        assert_eq!(q.direction, Direction::Low);
    }

    #[test]
    fn all_aggregate_functions_parse() {
        let s = schema();
        for spec in [
            "count(*)",
            "count(distinct R.marital)",
            "count(distinct marital)",
            "sum(x)",
            "avg(R.x)",
            "min(x)",
            "max(x)",
        ] {
            parse_aggregate(&s, spec, spec, 1).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
        }
    }

    #[test]
    fn where_clause_optional_and_quoted_where_safe() {
        let s = schema();
        let a = parse_aggregate(
            &s,
            "count(*) where marital = 'where '",
            "count(*) where marital = 'where '",
            1,
        )
        .unwrap();
        assert_ne!(a.selection, Predicate::True);
        let b = parse_aggregate(&s, "count(*)", "count(*)", 1).unwrap();
        assert_eq!(b.selection, Predicate::True);
    }

    #[test]
    fn expression_grammar() {
        let names = vec!["a".to_string(), "b".to_string()];
        for (text, vals, expected) in [
            ("a + b", [2.0, 3.0], 5.0),
            ("a - b * 2", [10.0, 3.0], 4.0),
            ("(a - b) * 2", [10.0, 3.0], 14.0),
            ("-a / b", [6.0, 3.0], -2.0),
            ("log(exp(a))", [2.5, 0.0], 2.5),
            ("a / b / 2", [8.0, 2.0], 2.0),
            ("0.5 * a", [8.0, 0.0], 4.0),
        ] {
            let e = parse_num_expr(text, &names, 1, 0).unwrap();
            assert!((e.eval(&vals) - expected).abs() < 1e-12, "`{text}`");
        }
    }

    #[test]
    fn question_errors() {
        let s = schema();
        for (text, fragment) in [
            ("agg q1 = count(*)\n", "missing `dir"),
            (
                "agg q = count(*)\nagg q = count(*)\ndir high",
                "duplicate aggregate name",
            ),
            (
                "agg a = count(*)\nagg b = count(*)\ndir high",
                "missing `expr",
            ),
            (
                "agg a = count(*)\nexpr a + zz\ndir high",
                "unknown aggregate name",
            ),
            ("dir sideways", "high|low"),
            ("bogus line", "expected agg/expr/dir/smoothing"),
            ("agg a = frobnicate(x)\ndir high", "unknown aggregate"),
            ("agg a = count(x)\ndir high", "count takes"),
            ("agg a = count(*)\nsmoothing abc\ndir high", "bad smoothing"),
            (
                "agg a = count(*)\nexpr a +\ndir high",
                "unexpected token in expr",
            ),
            ("agg a = count(*)\nexpr a b\ndir high", "trailing tokens"),
        ] {
            let err = parse_question(&s, text).unwrap_err().to_string();
            assert!(
                err.contains(fragment),
                "`{text}` → `{err}` (wanted `{fragment}`)"
            );
        }
    }

    #[test]
    fn regression_style_expression() {
        // A hand-written slope over three window counts.
        let db = sample_db();
        let q = parse_question(
            db.schema(),
            "agg w1 = count(*) where x >= 10\n\
             agg w2 = count(*) where x = 5\n\
             expr w2 - w1\n\
             dir high",
        )
        .unwrap();
        assert_eq!(q.query.eval(&db).unwrap(), 1.0);
    }
}
