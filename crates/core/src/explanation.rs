//! Candidate explanations (Definition 2.3).
//!
//! A candidate explanation is a conjunction of atomic predicates
//! `[R_i.A op c]`. The cube pipeline of Section 4 restricts to equality
//! atoms over a chosen attribute set `A'`, in which case an explanation is
//! exactly a cube *coordinate*: one optional value per attribute of `A'`.

use exq_relstore::cube::Coord;
use exq_relstore::{Atom, AttrRef, CmpOp, Conjunction, Database, Universal, Value};
use std::collections::HashSet;
use std::fmt;

/// A candidate explanation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Explanation {
    conjunction: Conjunction,
}

impl Explanation {
    /// From an arbitrary conjunction of atoms.
    pub fn new(atoms: Vec<Atom>) -> Explanation {
        Explanation {
            conjunction: Conjunction::new(atoms),
        }
    }

    /// The trivial explanation (true everywhere). Excluded from rankings
    /// (Section 4.3) but useful as an algebraic identity.
    pub fn trivial() -> Explanation {
        Explanation {
            conjunction: Conjunction::trivial(),
        }
    }

    /// An equality-only explanation from a cube coordinate over dimension
    /// attributes `dims`: non-null coordinates become equality atoms.
    pub fn from_coord(dims: &[AttrRef], coord: &[Value]) -> Explanation {
        assert_eq!(dims.len(), coord.len(), "coordinate arity mismatch");
        let atoms = dims
            .iter()
            .zip(coord)
            .filter(|(_, v)| !v.is_null())
            .map(|(&attr, v)| Atom::eq(attr, v.clone()))
            .collect();
        Explanation {
            conjunction: Conjunction::new(atoms),
        }
    }

    /// Convert a predicate into an explanation, if it is a conjunction of
    /// atoms (arbitrarily nested `And`s are flattened). Returns `None`
    /// for predicates containing `Or`/`Not`/`False` — those are *rich*
    /// explanations (see [`crate::rich`]), not Definition 2.3 candidates.
    pub fn from_predicate(pred: &exq_relstore::Predicate) -> Option<Explanation> {
        use exq_relstore::Predicate as P;
        fn collect(p: &P, out: &mut Vec<Atom>) -> bool {
            match p {
                P::True => true,
                P::Atom(a) => {
                    out.push(a.clone());
                    true
                }
                P::And(parts) => parts.iter().all(|q| collect(q, out)),
                P::Or(_) | P::Not(_) | P::False => false,
            }
        }
        let mut atoms = Vec::new();
        collect(pred, &mut atoms).then(|| Explanation::new(atoms))
    }

    /// Render this explanation as a coordinate over `dims`, if it is
    /// equality-only and every atom's attribute is in `dims`.
    pub fn to_coord(&self, dims: &[AttrRef]) -> Option<Coord> {
        let mut coord = vec![Value::Null; dims.len()];
        for atom in &self.conjunction.atoms {
            if atom.op != CmpOp::Eq {
                return None;
            }
            let pos = dims.iter().position(|&d| d == atom.attr)?;
            coord[pos] = atom.value.clone();
        }
        Some(coord.into_boxed_slice())
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.conjunction.atoms
    }

    /// Number of conjuncts — the "length" minimality prefers to keep small.
    /// (The emptiness check is [`Explanation::is_trivial`].)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.conjunction.len()
    }

    /// Whether this is the trivial explanation.
    pub fn is_trivial(&self) -> bool {
        self.conjunction.is_empty()
    }

    /// The underlying conjunction.
    pub fn conjunction(&self) -> &Conjunction {
        &self.conjunction
    }

    /// Evaluate against a universal tuple.
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        self.conjunction.eval(db, utuple)
    }

    /// Whether `self` *generalizes* `other`: every `(attribute, op, value)`
    /// atom of `self` is also an atom of `other`. Used by the minimality
    /// dominance test of Section 4.3 ("the non-null pairs of φ' are a
    /// subset of those of φ").
    pub fn generalizes(&self, other: &Explanation) -> bool {
        self.conjunction
            .atoms
            .iter()
            .all(|a| other.conjunction.atoms.contains(a))
    }

    /// Whether `self` *strictly* generalizes `other` (subset, not equal).
    pub fn strictly_generalizes(&self, other: &Explanation) -> bool {
        self.len() < other.len() && self.generalizes(other)
    }

    /// Render with schema names, e.g.
    /// `[Author.name = JG ∧ Publication.year = 2001]`.
    pub fn display<'a>(&'a self, db: &'a Database) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Explanation, &'a Database);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.is_trivial() {
                    return write!(f, "[true]");
                }
                write!(f, "[")?;
                for (i, a) in self.0.atoms().iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(
                        f,
                        "{} {} {}",
                        self.1.schema().attr_name(a.attr),
                        a.op,
                        a.value
                    )?;
                }
                write!(f, "]")
            }
        }
        D(self, db)
    }
}

/// Enumerate every candidate equality explanation over `dims` that is
/// *supported by the data*: the non-trivial coordinates observed in the
/// universal relation among tuples satisfying `filter`, i.e. exactly the
/// non-total rows the cubes over `dims` would contain. This is the
/// candidate set both the cube pipeline (implicitly) and the naive
/// baseline (explicitly) iterate over; the naive baseline passes the
/// disjunction of the sub-query selections so both pipelines see the same
/// candidates (Algorithm 1's full outer join only retains explanations
/// appearing in at least one cube — the rest have all-zero values).
pub fn enumerate_candidates(
    db: &Database,
    u: &Universal,
    dims: &[AttrRef],
    filter: &exq_relstore::Predicate,
) -> Vec<Explanation> {
    let d = dims.len();
    let mut uniq: HashSet<Coord> = HashSet::new();
    let mut base: Vec<Value> = Vec::with_capacity(d);
    for t in u.iter() {
        if !filter.eval(db, t) {
            continue;
        }
        base.clear();
        base.extend(dims.iter().map(|&a| db.value(a, t[a.rel] as usize).clone()));
        // All non-empty subsets of the dimensions.
        for mask in 1u32..(1 << d) {
            let coord: Coord = base
                .iter()
                .enumerate()
                .map(|(j, v)| {
                    if mask & (1 << j) != 0 {
                        v.clone()
                    } else {
                        Value::Null
                    }
                })
                .collect();
            uniq.insert(coord);
        }
    }
    let mut coords: Vec<Coord> = uniq.into_iter().collect();
    coords.sort(); // deterministic order
    coords
        .iter()
        .map(|c| Explanation::from_coord(dims, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{Predicate, SchemaBuilder, ValueType as T};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("h", T::Str)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, h)) in [("a", "x"), ("a", "y"), ("b", "x")].iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), (*g).into(), (*h).into()])
                .unwrap();
        }
        db
    }

    fn dims(db: &Database) -> Vec<AttrRef> {
        vec![
            db.schema().attr("R", "g").unwrap(),
            db.schema().attr("R", "h").unwrap(),
        ]
    }

    #[test]
    fn coord_round_trip() {
        let db = db();
        let dims = dims(&db);
        let coord: Coord = vec![Value::str("a"), Value::Null].into_boxed_slice();
        let e = Explanation::from_coord(&dims, &coord);
        assert_eq!(e.len(), 1);
        assert_eq!(e.to_coord(&dims).unwrap(), coord);
        assert!(!e.is_trivial());
        assert!(Explanation::from_coord(&dims, &[Value::Null, Value::Null]).is_trivial());
    }

    #[test]
    fn to_coord_rejects_inequalities_and_foreign_attrs() {
        let db = db();
        let dims = dims(&db);
        let g = db.schema().attr("R", "g").unwrap();
        let id = db.schema().attr("R", "id").unwrap();
        let ineq = Explanation::new(vec![Atom {
            attr: g,
            op: CmpOp::Gt,
            value: "a".into(),
        }]);
        assert!(ineq.to_coord(&dims).is_none());
        let foreign = Explanation::new(vec![Atom::eq(id, 1)]);
        assert!(foreign.to_coord(&dims).is_none());
    }

    #[test]
    fn generalization_partial_order() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let h = db.schema().attr("R", "h").unwrap();
        let short = Explanation::new(vec![Atom::eq(g, "a")]);
        let long = Explanation::new(vec![Atom::eq(g, "a"), Atom::eq(h, "x")]);
        let other = Explanation::new(vec![Atom::eq(g, "b")]);
        assert!(short.generalizes(&long));
        assert!(short.strictly_generalizes(&long));
        assert!(!long.generalizes(&short));
        assert!(!other.generalizes(&long));
        assert!(short.generalizes(&short));
        assert!(!short.strictly_generalizes(&short));
        assert!(Explanation::trivial().strictly_generalizes(&short));
    }

    #[test]
    fn eval_matches_conjunction_semantics() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let h = db.schema().attr("R", "h").unwrap();
        let e = Explanation::new(vec![Atom::eq(g, "a"), Atom::eq(h, "x")]);
        assert!(e.eval(&db, &[0]));
        assert!(!e.eval(&db, &[1]));
        assert!(!e.eval(&db, &[2]));
    }

    #[test]
    fn enumerate_candidates_observed_only() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        let cands = enumerate_candidates(&db, &u, &dims(&db), &Predicate::True);
        // Observed combos: (a,x),(a,y),(b,x); singles: g∈{a,b}, h∈{x,y}.
        // Total: 3 pairs + 2 + 2 = 7 (no trivial). (b,y) is unobserved.
        assert_eq!(cands.len(), 7);
        let g = db.schema().attr("R", "g").unwrap();
        let h = db.schema().attr("R", "h").unwrap();
        let unobserved = Explanation::new(vec![Atom::eq(g, "b"), Atom::eq(h, "y")]);
        assert!(!cands.contains(&unobserved));
        assert!(cands.iter().all(|c| !c.is_trivial()));
    }

    #[test]
    fn from_predicate_accepts_conjunctions_only() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let h = db.schema().attr("R", "h").unwrap();
        let conj = Predicate::and([
            Predicate::eq(g, "a"),
            Predicate::and([Predicate::eq(h, "x"), Predicate::True]),
        ]);
        let e = Explanation::from_predicate(&conj).unwrap();
        assert_eq!(e.len(), 2);

        assert!(Explanation::from_predicate(&Predicate::True)
            .unwrap()
            .is_trivial());
        assert!(Explanation::from_predicate(&Predicate::or([Predicate::eq(g, "a")])).is_none());
        assert!(Explanation::from_predicate(&Predicate::not(Predicate::eq(g, "a"))).is_none());
        assert!(Explanation::from_predicate(&Predicate::False).is_none());
    }

    #[test]
    fn display_formats() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let e = Explanation::new(vec![Atom::eq(g, "a")]);
        assert_eq!(e.display(&db).to_string(), "[R.g = a]");
        assert_eq!(Explanation::trivial().display(&db).to_string(), "[true]");
    }

    #[test]
    fn selection_predicate_from_explanation() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let e = Explanation::new(vec![Atom::eq(g, "a")]);
        let p = e.conjunction().to_predicate();
        assert_eq!(p, Predicate::And(vec![Predicate::eq(g, "a")]));
    }
}
