//! Minimal top-K explanations (Section 4.3).
//!
//! Blindly taking the K highest-degree rows of `M` returns redundant
//! answers: `[name=RR ∧ inst=MS]` is *dominated* by both `[name=RR]` and
//! `[inst=MS]` when its degree is no higher. An explanation φ is
//! **minimal** when no other explanation φ' has `μ(φ) ≤ μ(φ')` while φ'
//! constrains a strict subset of φ's `(attribute, value)` pairs.
//!
//! Three strategies are implemented, matching the paper's evaluation
//! (Figure 14):
//!
//! * [`TopKStrategy::NoMinimal`] — plain top-K by degree (may be
//!   redundant; fastest);
//! * [`TopKStrategy::MinimalSelfJoin`] — one pass marking dominated rows
//!   via a self-join (quadratic in `|M|`);
//! * [`TopKStrategy::MinimalAppend`] — K iterated top-1 scans, each
//!   excluding specializations of the already-output explanations (the
//!   `(¬φ_1) ∧ … ∧ (¬φ_{i−1})` WHERE-clause trick).
//!
//! Footnote 12's alternative polarity — prefer *specific* explanations —
//! is available via [`MinimalityPolarity::PreferSpecific`].

use crate::explanation::Explanation;
use crate::table_m::{ExplanationRow, ExplanationTable};

/// Which degree column of `M` to rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeKind {
    /// Rank by `μ_interv`.
    Intervention,
    /// Rank by `μ_aggr`.
    Aggravation,
}

impl DegreeKind {
    fn of(self, row: &ExplanationRow) -> f64 {
        match self {
            DegreeKind::Intervention => row.mu_interv,
            DegreeKind::Aggravation => row.mu_aggr,
        }
    }
}

/// Top-K output strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKStrategy {
    /// Sorted top-K, no minimality filter.
    NoMinimal,
    /// Filter dominated rows with a self-join, then top-K.
    MinimalSelfJoin,
    /// Iterated top-1 with accumulated negation filters.
    MinimalAppend,
}

/// Which end of the generalization order minimality prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinimalityPolarity {
    /// Prefer general explanations (fewer conditions, higher support) —
    /// the paper's default.
    #[default]
    PreferGeneral,
    /// Prefer specific explanations (more conditions, lower support) —
    /// footnote 12's alternative.
    PreferSpecific,
}

/// One ranked explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// 1-based rank.
    pub rank: usize,
    /// Index of the row in the source table.
    pub row: usize,
    /// The explanation.
    pub explanation: Explanation,
    /// The ranking degree.
    pub degree: f64,
}

/// Compute the top-K explanations of `table`.
pub fn top_k(
    table: &ExplanationTable,
    kind: DegreeKind,
    k: usize,
    strategy: TopKStrategy,
    polarity: MinimalityPolarity,
) -> Vec<Ranked> {
    let picked: Vec<usize> = match strategy {
        TopKStrategy::NoMinimal => table
            .sorted_indices(|r| kind.of(r))
            .into_iter()
            .take(k)
            .collect(),
        TopKStrategy::MinimalSelfJoin => {
            let order = table.sorted_indices(|r| kind.of(r));
            order
                .into_iter()
                .filter(|&i| !is_dominated(table, kind, polarity, i))
                .take(k)
                .collect()
        }
        TopKStrategy::MinimalAppend => minimal_append(table, kind, polarity, k),
    };
    picked
        .into_iter()
        .enumerate()
        .map(|(i, row)| Ranked {
            rank: i + 1,
            row,
            explanation: table.explanation(&table.rows[row]),
            degree: kind.of(&table.rows[row]),
        })
        .collect()
}

/// Kendall rank correlation (tau-a) between two degree columns of `M` —
/// how much do two notions of explanation agree on the ranking? `1.0` =
/// identical order, `-1.0` = reversed, `0.0` = unrelated. The paper
/// observes qualitatively that intervention and aggravation surface
/// different explanation shapes (Figures 10 vs 11); this quantifies it.
pub fn rank_correlation(table: &ExplanationTable, a: DegreeKind, b: DegreeKind) -> f64 {
    let n = table.rows.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a.of(&table.rows[i]) - a.of(&table.rows[j]);
            let db = b.of(&table.rows[i]) - b.of(&table.rows[j]);
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Self-join dominance test: is row `i` dominated by any other row?
fn is_dominated(
    table: &ExplanationTable,
    kind: DegreeKind,
    polarity: MinimalityPolarity,
    i: usize,
) -> bool {
    let phi = &table.rows[i];
    let mu = kind.of(phi);
    table.rows.iter().enumerate().any(|(j, other)| {
        if i == j {
            return false;
        }
        let simpler = match polarity {
            // φ' strictly generalizes φ: φ' pairs ⊊ φ pairs.
            MinimalityPolarity::PreferGeneral => {
                other.arity() < phi.arity() && other.coord_generalizes(phi)
            }
            // φ' strictly specializes φ.
            MinimalityPolarity::PreferSpecific => {
                other.arity() > phi.arity() && phi.coord_generalizes(other)
            }
        };
        simpler && mu <= kind.of(other)
    })
}

/// Iterated top-1 with accumulated exclusion predicates.
fn minimal_append(
    table: &ExplanationTable,
    kind: DegreeKind,
    polarity: MinimalityPolarity,
    k: usize,
) -> Vec<usize> {
    // Pre-sorted order realizes the paper's dummy-value tie-break: among
    // equal degrees the shorter explanation (more nulls) sorts first. For
    // PreferSpecific the tie-break flips to longer-first.
    let mut order = table.sorted_indices(|r| kind.of(r));
    if polarity == MinimalityPolarity::PreferSpecific {
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&table.rows[a], &table.rows[b]);
            kind.of(rb)
                .total_cmp(&kind.of(ra))
                .then_with(|| rb.arity().cmp(&ra.arity()))
                .then_with(|| ra.coord.cmp(&rb.coord))
        });
    }
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    for _ in 0..k {
        let next = order.iter().copied().find(|&i| {
            !picked.iter().any(|&p| {
                let prev = &table.rows[p];
                let row = &table.rows[i];
                match polarity {
                    // Row i "satisfies φ_prev": it specializes (or equals)
                    // a previously output explanation → excluded by the
                    // ¬φ_prev clause.
                    MinimalityPolarity::PreferGeneral => prev.coord_generalizes(row),
                    MinimalityPolarity::PreferSpecific => row.coord_generalizes(prev),
                }
            })
        });
        match next {
            Some(i) => picked.push(i),
            None => break,
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::Value;

    fn row(coord: Vec<Value>, mu: f64) -> ExplanationRow {
        ExplanationRow {
            coord: coord.into_boxed_slice(),
            values: vec![],
            mu_interv: mu,
            mu_aggr: -mu,
        }
    }

    /// The Section 4.3 motivating scenario: [name=RR] and [inst=MS] both
    /// have the same degree as their conjunction, which is redundant.
    fn redundant_table() -> ExplanationTable {
        use exq_relstore::AttrRef;
        ExplanationTable {
            dims: vec![AttrRef { rel: 0, col: 0 }, AttrRef { rel: 0, col: 1 }],
            totals: vec![],
            rows: vec![
                row(vec![Value::str("RR"), Value::Null], 10.0), // 0: φ1
                row(vec![Value::Null, Value::str("MS")], 10.0), // 1: φ2
                row(vec![Value::str("RR"), Value::str("MS")], 10.0), // 2: φ3 redundant
                row(vec![Value::str("JG"), Value::Null], 7.0),  // 3
                row(vec![Value::str("JG"), Value::str("IBM")], 8.0), // 4: better than its generalization
            ],
        }
    }

    #[test]
    fn no_minimal_keeps_redundant_rows() {
        let t = redundant_table();
        let out = top_k(
            &t,
            DegreeKind::Intervention,
            3,
            TopKStrategy::NoMinimal,
            MinimalityPolarity::PreferGeneral,
        );
        assert_eq!(out.len(), 3);
        // The redundant conjunction appears (ranks 1-3 are the three 10.0
        // rows, shorter ones first).
        assert_eq!(out[2].row, 2);
        assert_eq!(out[0].degree, 10.0);
    }

    #[test]
    fn self_join_filters_dominated() {
        let t = redundant_table();
        let out = top_k(
            &t,
            DegreeKind::Intervention,
            5,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        );
        let rows: Vec<usize> = out.iter().map(|r| r.row).collect();
        assert!(!rows.contains(&2), "φ3 is dominated by φ1 and φ2");
        assert!(rows.contains(&0) && rows.contains(&1));
        // Row 4 strictly beats its generalization (8 > 7) → minimal.
        assert!(rows.contains(&4));
        assert!(
            rows.contains(&3),
            "row 3 is not dominated: 7 > nothing above it generalizes"
        );
    }

    #[test]
    fn append_matches_self_join_on_distinct_degrees() {
        let t = redundant_table();
        for k in 1..=5 {
            let a = top_k(
                &t,
                DegreeKind::Intervention,
                k,
                TopKStrategy::MinimalSelfJoin,
                MinimalityPolarity::PreferGeneral,
            );
            let b = top_k(
                &t,
                DegreeKind::Intervention,
                k,
                TopKStrategy::MinimalAppend,
                MinimalityPolarity::PreferGeneral,
            );
            let ra: Vec<usize> = a.iter().map(|r| r.row).collect();
            let rb: Vec<usize> = b.iter().map(|r| r.row).collect();
            assert_eq!(ra, rb, "k={k}");
        }
    }

    #[test]
    fn aggravation_degree_ranks_by_other_column() {
        let t = redundant_table();
        let out = top_k(
            &t,
            DegreeKind::Aggravation,
            1,
            TopKStrategy::NoMinimal,
            MinimalityPolarity::PreferGeneral,
        );
        // mu_aggr = -mu_interv, so the 7.0 row (μ_aggr = -7) is best.
        assert_eq!(out[0].row, 3);
    }

    #[test]
    fn prefer_specific_flips_dominance() {
        let t = redundant_table();
        let out = top_k(
            &t,
            DegreeKind::Intervention,
            5,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferSpecific,
        );
        let rows: Vec<usize> = out.iter().map(|r| r.row).collect();
        // Now the *general* rows 0 and 1 are dominated by their equal-degree
        // specialization 2.
        assert!(rows.contains(&2));
        assert!(!rows.contains(&0) && !rows.contains(&1));
        // Row 3 (JG) is dominated by row 4 (JG∧IBM, higher degree).
        assert!(!rows.contains(&3));
        assert!(rows.contains(&4));
    }

    #[test]
    fn append_prefer_specific() {
        let t = redundant_table();
        let out = top_k(
            &t,
            DegreeKind::Intervention,
            5,
            TopKStrategy::MinimalAppend,
            MinimalityPolarity::PreferSpecific,
        );
        let rows: Vec<usize> = out.iter().map(|r| r.row).collect();
        assert_eq!(rows[0], 2, "longest of the 10.0 ties first");
        assert!(!rows.contains(&0) && !rows.contains(&1));
    }

    #[test]
    fn k_larger_than_table() {
        let t = redundant_table();
        for strategy in [
            TopKStrategy::NoMinimal,
            TopKStrategy::MinimalSelfJoin,
            TopKStrategy::MinimalAppend,
        ] {
            let out = top_k(
                &t,
                DegreeKind::Intervention,
                100,
                strategy,
                MinimalityPolarity::PreferGeneral,
            );
            assert!(out.len() <= 5);
            assert!(!out.is_empty());
            // Ranks are 1-based and contiguous.
            for (i, r) in out.iter().enumerate() {
                assert_eq!(r.rank, i + 1);
            }
        }
    }

    #[test]
    fn rank_correlation_extremes() {
        // mu_aggr = -mu_interv in the fixture → exactly reversed up to
        // ties (tau-a leaves tied pairs out of the numerator, so the
        // self-correlation of a table with ties is < 1 by the same
        // amount).
        let t = redundant_table();
        let reversed = rank_correlation(&t, DegreeKind::Intervention, DegreeKind::Aggravation);
        let same = rank_correlation(&t, DegreeKind::Intervention, DegreeKind::Intervention);
        assert_eq!(reversed, -same);
        assert!(same > 0.5 && reversed < -0.5);

        // Tiny/singleton tables are trivially correlated.
        let one = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![row(vec![Value::Int(1)], 1.0)],
        };
        assert_eq!(
            rank_correlation(&one, DegreeKind::Intervention, DegreeKind::Aggravation),
            1.0
        );
    }

    #[test]
    fn rank_correlation_partial_agreement() {
        let t = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![
                ExplanationRow {
                    coord: vec![Value::Int(0)].into_boxed_slice(),
                    values: vec![],
                    mu_interv: 1.0,
                    mu_aggr: 1.0,
                },
                ExplanationRow {
                    coord: vec![Value::Int(1)].into_boxed_slice(),
                    values: vec![],
                    mu_interv: 2.0,
                    mu_aggr: 3.0,
                },
                ExplanationRow {
                    coord: vec![Value::Int(2)].into_boxed_slice(),
                    values: vec![],
                    mu_interv: 3.0,
                    mu_aggr: 2.0,
                },
            ],
        };
        // Pairs: (0,1) concordant, (0,2) concordant, (1,2) discordant:
        // tau = (2 - 1) / 3.
        let tau = rank_correlation(&t, DegreeKind::Intervention, DegreeKind::Aggravation);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_yields_empty_ranking() {
        let t = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![],
        };
        for strategy in [
            TopKStrategy::NoMinimal,
            TopKStrategy::MinimalSelfJoin,
            TopKStrategy::MinimalAppend,
        ] {
            assert!(top_k(
                &t,
                DegreeKind::Intervention,
                3,
                strategy,
                MinimalityPolarity::PreferGeneral
            )
            .is_empty());
        }
    }
}
