//! The data causal graph (Definitions 3.8–3.9).
//!
//! Nodes are tuples; a **solid** edge `t_i → t_j` means deleting `t_i`
//! forces deleting `t_j` (cascade, or dangling after semijoin reduction); a
//! **dotted** edge `t_j → t_i` is the backward cascade of a back-and-forth
//! foreign key. The *causal length* of a path is its number of dotted
//! edges; Proposition 3.10 bounds the iterations of program **P** by
//! `2q + 2` where `q` is the maximum causal length over paths starting at a
//! seed tuple.
//!
//! This graph is a diagnostic/verification structure: computing it is
//! `O(|U| · k²)` and maximum-causal-length search enumerates simple paths,
//! so use it on test- and example-sized instances (as the paper does in its
//! figures), not inside the hot explanation pipeline.

use exq_relstore::{Database, FkKind, TupleSet, Universal};
use std::collections::HashMap;

/// Static convergence guarantee for program **P** on a schema, per
/// Section 3's propositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceBound {
    /// No back-and-forth keys: at most two productive iterations
    /// (Proposition 3.5); `Δ^φ` is expressible without recursion.
    TwoSteps,
    /// Simple acyclic schema causal graph, at most one back-and-forth key
    /// per referencing relation: at most `2s + 2` iterations
    /// (Proposition 3.11) — the contained bound. Recursion can be
    /// unrolled into a fixed pipeline.
    Unrollable {
        /// The `2s + 2` iteration bound.
        iterations: usize,
    },
    /// Some relation carries several back-and-forth keys (the Example 3.7
    /// shape): only the data-dependent bounds apply (`n`, Prop 3.4;
    /// `2q + 2`, Prop 3.10) and genuine recursion is required.
    RequiresRecursion,
}

/// Classify a schema by the strongest applicable convergence proposition.
pub fn convergence_bound(schema: &exq_relstore::DatabaseSchema) -> ConvergenceBound {
    if !schema.has_back_and_forth() {
        return ConvergenceBound::TwoSteps;
    }
    let g = schema.causal_graph();
    if g.is_simple() && g.max_back_and_forth_per_relation() <= 1 {
        ConvergenceBound::Unrollable {
            iterations: 2 * schema.back_and_forth_count() + 2,
        }
    } else {
        ConvergenceBound::RequiresRecursion
    }
}

/// A node of the data causal graph: a tuple identified by `(relation,
/// row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Relation index.
    pub rel: usize,
    /// Row index within the relation.
    pub row: u32,
}

/// An edge of the data causal graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Cascade / dangling implication (Definition 3.8, item 1).
    Solid,
    /// Backward cascade of a back-and-forth key (item 2).
    Dotted,
}

/// The data causal graph of a database instance.
#[derive(Debug, Clone)]
pub struct DataCausalGraph {
    /// All tuple nodes, sorted.
    pub nodes: Vec<TupleId>,
    /// Adjacency: for each node (by its index in `nodes`), the outgoing
    /// `(target node index, kind)` edges. When both a solid and a dotted
    /// edge exist between two nodes only the dotted one is kept, matching
    /// the paper's figures.
    pub edges: Vec<Vec<(usize, EdgeKind)>>,
    index_of: HashMap<TupleId, usize>,
}

impl DataCausalGraph {
    /// Build the graph over the full database.
    pub fn build(db: &Database) -> DataCausalGraph {
        let u = Universal::compute(db, &db.full_view());
        DataCausalGraph::build_with_universal(db, &u)
    }

    /// Build the graph with a pre-computed universal relation.
    pub fn build_with_universal(db: &Database, u: &Universal) -> DataCausalGraph {
        let k = db.schema().relation_count();
        let mut nodes = Vec::new();
        for rel in 0..k {
            for row in 0..db.relation_len(rel) {
                nodes.push(TupleId {
                    rel,
                    row: row as u32,
                });
            }
        }
        let index_of: HashMap<TupleId, usize> =
            nodes.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut edges: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); nodes.len()];

        // Solid edges (item 1): t_i → t_j iff every universal tuple
        // containing t_j also contains t_i. For each (t_j, R_i) pair,
        // record the distinct R_i rows co-occurring with t_j; a unique
        // co-occurrence that covers all of t_j's universal tuples is an
        // implication. (Co-occurrence per universal tuple is unique by
        // construction, so "one distinct partner" suffices.)
        // companions[(t_j, R_i)] = Some(row) while unique, None once mixed.
        let mut companions: HashMap<(TupleId, usize), Option<u32>> = HashMap::new();
        let mut appears: HashMap<TupleId, bool> = HashMap::new();
        for t in u.iter() {
            for rel_j in 0..k {
                let tj = TupleId {
                    rel: rel_j,
                    row: t[rel_j],
                };
                appears.insert(tj, true);
                for (rel_i, &row_i) in t.iter().enumerate() {
                    if rel_i == rel_j {
                        continue;
                    }
                    companions
                        .entry((tj, rel_i))
                        .and_modify(|c| {
                            if *c != Some(row_i) {
                                *c = None;
                            }
                        })
                        .or_insert(Some(row_i));
                }
            }
        }
        // Drain in sorted key order: the per-node edge lists must not
        // inherit the companion map's hash order, or sibling solid
        // edges would come out in a different order run to run.
        let mut ordered: Vec<_> = companions.into_iter().collect();
        ordered.sort_unstable();
        for ((tj, rel_i), companion) in ordered {
            if let Some(row_i) = companion {
                let ti = TupleId {
                    rel: rel_i,
                    row: row_i,
                };
                edges[index_of[&ti]].push((index_of[&tj], EdgeKind::Solid));
            }
        }

        // Dotted edges (item 2): back-and-forth fks by key equality.
        for fk in db.schema().foreign_keys() {
            if fk.kind != FkKind::BackAndForth {
                continue;
            }
            let full = TupleSet::full(db.relation_len(fk.to_rel));
            let index = exq_relstore::index::HashIndex::build(db, fk.to_rel, &fk.to_cols, &full);
            let from = db.relation(fk.from_rel);
            let mut key = Vec::new();
            for row_j in 0..from.len() {
                from.project_into(row_j, &fk.from_cols, &mut key);
                if let Some(&row_i) = index.get(&key).first() {
                    let tj = TupleId {
                        rel: fk.from_rel,
                        row: row_j as u32,
                    };
                    let ti = TupleId {
                        rel: fk.to_rel,
                        row: row_i,
                    };
                    let (src, dst) = (index_of[&tj], index_of[&ti]);
                    // Replace a duplicate solid edge if present (figures
                    // omit the solid edge when a dotted one exists).
                    edges[src].retain(|&(d, _)| d != dst);
                    edges[src].push((dst, EdgeKind::Dotted));
                }
            }
        }

        for adj in &mut edges {
            adj.sort_unstable_by_key(|&(d, k)| (d, k == EdgeKind::Dotted));
            adj.dedup();
        }
        DataCausalGraph {
            nodes,
            edges,
            index_of,
        }
    }

    /// Node index of a tuple.
    pub fn node(&self, t: TupleId) -> Option<usize> {
        self.index_of.get(&t).copied()
    }

    /// Outgoing edges of a tuple.
    pub fn out_edges(&self, t: TupleId) -> &[(usize, EdgeKind)] {
        &self.edges[self.index_of[&t]]
    }

    /// Whether the data causal graph contains a directed cycle. Footnote 9
    /// of the paper: *"causal graphs can have cycles even if the schema is
    /// acyclic, as is the case with our running example"* — e.g.
    /// `s1 ┄→ t1 → s1` whenever a publication and one of its authorship
    /// records are mutually necessary.
    pub fn has_cycle(&self) -> bool {
        // Iterative three-colour DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if colour[start] != Colour::White {
                continue;
            }
            // Stack of (node, next edge index).
            let mut stack = vec![(start, 0usize)];
            colour[start] = Colour::Grey;
            while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
                if let Some(&(next, _)) = self.edges[node].get(*edge_idx) {
                    *edge_idx += 1;
                    match colour[next] {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour[next] = Colour::Grey;
                            stack.push((next, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Maximum causal length (number of dotted edges) over all *simple*
    /// directed paths starting at any of `starts`. Exhaustive DFS — the
    /// paths are simple, so this is exponential in the worst case; callers
    /// pass test-sized instances. `node_budget` caps the number of DFS
    /// expansions (returns `None` when exceeded).
    pub fn max_causal_length_from(&self, starts: &[TupleId], node_budget: usize) -> Option<usize> {
        let mut best = 0usize;
        let mut budget = node_budget;
        let mut on_path = vec![false; self.nodes.len()];
        for &s in starts {
            let Some(start) = self.node(s) else { continue };
            if !self.dfs(start, 0, &mut best, &mut on_path, &mut budget) {
                return None;
            }
        }
        Some(best)
    }

    fn dfs(
        &self,
        node: usize,
        dotted_so_far: usize,
        best: &mut usize,
        on_path: &mut Vec<bool>,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        *best = (*best).max(dotted_so_far);
        on_path[node] = true;
        for &(next, kind) in &self.edges[node] {
            if on_path[next] {
                continue;
            }
            let d = dotted_so_far + usize::from(kind == EdgeKind::Dotted);
            if !self.dfs(next, d, best, on_path, budget) {
                on_path[node] = false;
                return false;
            }
        }
        on_path[node] = false;
        true
    }

    /// The seed tuples of an intervention as [`TupleId`]s.
    pub fn tuple_ids(seeds: &[TupleSet]) -> Vec<TupleId> {
        seeds
            .iter()
            .enumerate()
            .flat_map(|(rel, set)| {
                set.iter().map(move |row| TupleId {
                    rel,
                    row: row as u32,
                })
            })
            .collect()
    }

    /// Render the graph as readable text (for the `repro fig6` harness).
    pub fn render(&self, db: &Database) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, t) in self.nodes.iter().enumerate() {
            let rel = db.schema().relation(t.rel);
            let row = db.relation(t.rel).row(t.row as usize);
            let values: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{}[{}]({})", rel.name, t.row, values.join(","));
            for &(dst, kind) in &self.edges[i] {
                let d = self.nodes[dst];
                let arrow = match kind {
                    EdgeKind::Solid => "──▶",
                    EdgeKind::Dotted => "┄┄▶",
                };
                let _ = writeln!(
                    out,
                    "  {arrow} {}[{}]",
                    db.schema().relation(d.rel).name,
                    d.row
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{SchemaBuilder, ValueType as T};

    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db
    }

    fn tid(db: &Database, rel: &str, row: u32) -> TupleId {
        TupleId {
            rel: db.schema().relation_index(rel).unwrap(),
            row,
        }
    }

    #[test]
    fn figure6_edges() {
        let db = figure3_db();
        let g = DataCausalGraph::build(&db);
        // r1 → s1 (author to authored rows: solid cascade).
        let r1 = tid(&db, "Author", 0);
        let s1 = tid(&db, "Authored", 0);
        let t1 = tid(&db, "Publication", 0);
        assert!(g
            .out_edges(r1)
            .iter()
            .any(|&(d, k)| d == g.node(s1).unwrap() && k == EdgeKind::Solid));
        // s1 ┄→ t1 (dotted, back-and-forth).
        assert!(g
            .out_edges(s1)
            .iter()
            .any(|&(d, k)| d == g.node(t1).unwrap() && k == EdgeKind::Dotted));
        // t1 → s1 and t1 → s2 (publication to authored rows).
        let s2 = tid(&db, "Authored", 1);
        let t1_out = g.out_edges(t1);
        assert!(t1_out.iter().any(|&(d, _)| d == g.node(s1).unwrap()));
        assert!(t1_out.iter().any(|&(d, _)| d == g.node(s2).unwrap()));
    }

    #[test]
    fn semijoin_induced_solid_edges() {
        // s1 is A1's row on P1; if s1 is the only Authored row of A1 then
        // deleting s1 dangles A1 → solid edge s1 → r1. In Figure 3, A1 has
        // two rows, so no such edge; but A2's rows... each author has two
        // rows, each publication two rows, so the only reverse solid edges
        // come from uniqueness, which this instance lacks. Build a smaller
        // instance to check.
        let schema = SchemaBuilder::new()
            .relation("Author", &[("id", T::Str), ("name", T::Str)], &["id"])
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation("Publication", &[("pubid", T::Str)], &["pubid"])
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("Author", vec!["A1".into(), "X".into()]).unwrap();
        db.insert("Authored", vec!["A1".into(), "P1".into()])
            .unwrap();
        db.insert("Publication", vec!["P1".into()]).unwrap();
        let g = DataCausalGraph::build(&db);
        let r1 = tid(&db, "Author", 0);
        let s1 = tid(&db, "Authored", 0);
        // Unique co-occurrence in both directions: solid edge s1 → r1 too.
        assert!(g
            .out_edges(s1)
            .iter()
            .any(|&(d, _)| d == g.node(r1).unwrap()));
        assert!(g
            .out_edges(r1)
            .iter()
            .any(|&(d, _)| d == g.node(s1).unwrap()));
    }

    #[test]
    fn causal_path_of_running_example_has_length_one() {
        // Figure 6's P = r1 → s1 ┄→ t1 → s2 has causal length 1; with a
        // single back-and-forth key no simple path exceeds 1 — wait, a
        // path can alternate through distinct publications: r1 → s3 ┄→ t2
        // → s4 … Each Authored node has one dotted edge, but a simple path
        // revisits no node; the max equals the number of distinct Authored
        // tuples on the path. For this instance the max is small; assert
        // the Prop 3.10 bound holds for the seed of Example 2.8.
        let db = figure3_db();
        let g = DataCausalGraph::build(&db);
        let engine = crate::intervention::InterventionEngine::new(&db);
        let phi = crate::explanation::Explanation::new(vec![
            exq_relstore::Atom::eq(db.schema().attr("Author", "name").unwrap(), "JG"),
            exq_relstore::Atom::eq(db.schema().attr("Publication", "year").unwrap(), 2001),
        ]);
        let iv = engine.compute(&phi);
        let starts = DataCausalGraph::tuple_ids(&iv.seeds);
        let q = g.max_causal_length_from(&starts, 1_000_000).unwrap();
        assert!(
            iv.iterations <= 2 * q + 2,
            "iterations {} exceed 2q+2 with q={q}",
            iv.iterations
        );
    }

    #[test]
    fn footnote_9_data_cycles_despite_acyclic_schema() {
        // The running example's schema is acyclic, but the data causal
        // graph has the cycle s1 ┄→ t1 → s1.
        let db = figure3_db();
        let g = DataCausalGraph::build(&db);
        assert!(g.has_cycle());

        // A plain parent-child instance with a standard key and fan-out
        // has no data-level cycle.
        use exq_relstore::{SchemaBuilder, ValueType as T};
        let schema = SchemaBuilder::new()
            .relation("P", &[("id", T::Int)], &["id"])
            .relation("C", &[("id", T::Int), ("p", T::Int)], &["id"])
            .standard_fk("C", &["p"], "P")
            .build()
            .unwrap();
        let mut db = exq_relstore::Database::new(schema);
        db.insert("P", vec![1.into()]).unwrap();
        db.insert("C", vec![10.into(), 1.into()]).unwrap();
        db.insert("C", vec![11.into(), 1.into()]).unwrap();
        let g = DataCausalGraph::build(&db);
        assert!(
            !g.has_cycle(),
            "P→C edges only; no C row is necessary for P"
        );
    }

    #[test]
    fn convergence_bound_classification() {
        use exq_relstore::{SchemaBuilder, ValueType as T};
        // Running example: one back-and-forth key → unrollable in 4.
        assert_eq!(
            convergence_bound(figure3_db().schema()),
            ConvergenceBound::Unrollable { iterations: 4 }
        );
        // Standard keys only → two steps.
        let std_only = SchemaBuilder::new()
            .relation("A", &[("id", T::Int)], &["id"])
            .relation("B", &[("id", T::Int), ("a", T::Int)], &["id"])
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap();
        assert_eq!(convergence_bound(&std_only), ConvergenceBound::TwoSteps);
        // Example 3.7's chain schema: two back-and-forth keys on R3 →
        // recursion required.
        let chain = SchemaBuilder::new()
            .relation("R1", &[("a", T::Str)], &["a"])
            .relation("R2", &[("b", T::Str)], &["b"])
            .relation("R3", &[("c", T::Str), ("a", T::Str), ("b", T::Str)], &["c"])
            .back_and_forth_fk("R3", &["a"], "R1")
            .back_and_forth_fk("R3", &["b"], "R2")
            .build()
            .unwrap();
        assert_eq!(
            convergence_bound(&chain),
            ConvergenceBound::RequiresRecursion
        );
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let db = figure3_db();
        let g = DataCausalGraph::build(&db);
        let starts: Vec<TupleId> = g.nodes.clone();
        assert_eq!(g.max_causal_length_from(&starts, 0), None);
    }

    #[test]
    fn render_mentions_tuples() {
        let db = figure3_db();
        let g = DataCausalGraph::build(&db);
        let text = g.render(&db);
        assert!(text.contains("Author[0](A1,JG,C.edu,edu)"));
        assert!(text.contains("┄┄▶"));
    }
}
