//! Numerical queries and user questions (Section 2, Eq. (1)).
//!
//! A *numerical query* is `Q = E(q_1, …, q_m)`: an arithmetic expression
//! `E` over `m` single-aggregate SQL queries, each of which aggregates the
//! universal relation under its own selection predicate. A *user question*
//! pairs `Q` with a direction — does the user find the value surprisingly
//! `high` or `low`?

use exq_relstore::aggregate::{evaluate, AggFunc};
use exq_relstore::{Database, Predicate, Result, Universal, View};

/// One aggregate sub-query `q_j = SELECT agg(…) FROM R_1 ⋈ … ⋈ R_k WHERE
/// selection`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// The aggregate.
    pub func: AggFunc,
    /// The `WHERE` clause, evaluated per universal tuple.
    pub selection: Predicate,
}

impl AggregateQuery {
    /// `COUNT(*) WHERE selection`.
    pub fn count_star(selection: Predicate) -> AggregateQuery {
        AggregateQuery {
            func: AggFunc::CountStar,
            selection,
        }
    }

    /// Evaluate over a pre-computed universal relation.
    pub fn eval(&self, db: &Database, u: &Universal) -> Result<f64> {
        evaluate(db, u, &self.selection, &self.func)
    }
}

/// The arithmetic expression `E` over aggregate values, by index.
#[derive(Debug, Clone, PartialEq)]
pub enum NumExpr {
    /// A constant.
    Const(f64),
    /// The value of aggregate `q_{i+1}` (0-based index).
    Agg(usize),
    /// Sum.
    Add(Box<NumExpr>, Box<NumExpr>),
    /// Difference.
    Sub(Box<NumExpr>, Box<NumExpr>),
    /// Product.
    Mul(Box<NumExpr>, Box<NumExpr>),
    /// Quotient. Division by zero follows IEEE 754 (`±∞`/NaN) — the paper
    /// reports `∞` degrees (Figure 11) rather than erroring; callers that
    /// want finite ranks use [`NumericalQuery::smoothing`].
    Div(Box<NumExpr>, Box<NumExpr>),
    /// Natural logarithm.
    Log(Box<NumExpr>),
    /// Exponential.
    Exp(Box<NumExpr>),
    /// Negation.
    Neg(Box<NumExpr>),
}

impl NumExpr {
    /// `a / b` convenience constructor. (Not `std::ops::Div`: these build
    /// expression *trees*, they do not evaluate.)
    #[allow(clippy::should_implement_trait)]
    pub fn div(a: NumExpr, b: NumExpr) -> NumExpr {
        NumExpr::Div(Box::new(a), Box::new(b))
    }

    /// `a * b` convenience constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: NumExpr, b: NumExpr) -> NumExpr {
        NumExpr::Mul(Box::new(a), Box::new(b))
    }

    /// Evaluate against the aggregate values `vals`.
    pub fn eval(&self, vals: &[f64]) -> f64 {
        match self {
            NumExpr::Const(c) => *c,
            NumExpr::Agg(i) => vals[*i],
            NumExpr::Add(a, b) => a.eval(vals) + b.eval(vals),
            NumExpr::Sub(a, b) => a.eval(vals) - b.eval(vals),
            NumExpr::Mul(a, b) => a.eval(vals) * b.eval(vals),
            NumExpr::Div(a, b) => a.eval(vals) / b.eval(vals),
            NumExpr::Log(a) => a.eval(vals).ln(),
            NumExpr::Exp(a) => a.eval(vals).exp(),
            NumExpr::Neg(a) => -a.eval(vals),
        }
    }

    /// Render with aggregate names (e.g. `(q1 / q2)`); parses back with
    /// `exq_core::qparse`'s expression grammar.
    pub fn render(&self, names: &[String]) -> String {
        match self {
            NumExpr::Const(c) => c.to_string(),
            NumExpr::Agg(i) => names
                .get(*i)
                .cloned()
                .unwrap_or_else(|| format!("q{}", i + 1)),
            NumExpr::Add(a, b) => format!("({} + {})", a.render(names), b.render(names)),
            NumExpr::Sub(a, b) => format!("({} - {})", a.render(names), b.render(names)),
            NumExpr::Mul(a, b) => format!("({} * {})", a.render(names), b.render(names)),
            NumExpr::Div(a, b) => format!("({} / {})", a.render(names), b.render(names)),
            NumExpr::Log(a) => format!("log({})", a.render(names)),
            NumExpr::Exp(a) => format!("exp({})", a.render(names)),
            NumExpr::Neg(a) => format!("(-{})", a.render(names)),
        }
    }

    /// The largest aggregate index referenced, if any.
    pub fn max_agg_index(&self) -> Option<usize> {
        match self {
            NumExpr::Const(_) => None,
            NumExpr::Agg(i) => Some(*i),
            NumExpr::Add(a, b) | NumExpr::Sub(a, b) | NumExpr::Mul(a, b) | NumExpr::Div(a, b) => {
                match (a.max_agg_index(), b.max_agg_index()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            NumExpr::Log(a) | NumExpr::Exp(a) | NumExpr::Neg(a) => a.max_agg_index(),
        }
    }
}

/// A numerical query `Q = E(q_1, …, q_m)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericalQuery {
    /// The aggregate sub-queries `q_1, …, q_m`.
    pub aggregates: Vec<AggregateQuery>,
    /// The combining expression.
    pub expr: NumExpr,
    /// Added to every aggregate value before `expr` is evaluated — the
    /// paper's "+0.0001 to all counts to avoid division by zero"
    /// (Section 5.1.1). Zero by default.
    pub smoothing: f64,
}

impl NumericalQuery {
    /// Build a query, checking that `expr` only references declared
    /// aggregates.
    pub fn new(aggregates: Vec<AggregateQuery>, expr: NumExpr) -> Result<NumericalQuery> {
        if let Some(max) = expr.max_agg_index() {
            if max >= aggregates.len() {
                return Err(exq_relstore::Error::BadAggregateIndex {
                    index: max,
                    count: aggregates.len(),
                });
            }
        }
        Ok(NumericalQuery {
            aggregates,
            expr,
            smoothing: 0.0,
        })
    }

    /// A single-aggregate query `Q = q_1`.
    pub fn single(q: AggregateQuery) -> NumericalQuery {
        NumericalQuery {
            aggregates: vec![q],
            expr: NumExpr::Agg(0),
            smoothing: 0.0,
        }
    }

    /// The ratio `q_1 / q_2` (e.g. `Q_Race`, Section 5.1).
    pub fn ratio(q1: AggregateQuery, q2: AggregateQuery) -> NumericalQuery {
        NumericalQuery {
            aggregates: vec![q1, q2],
            expr: NumExpr::div(NumExpr::Agg(0), NumExpr::Agg(1)),
            smoothing: 0.0,
        }
    }

    /// The double ratio `(q_1/q_2) / (q_3/q_4)` (the running example's
    /// "bump" query and `Q_Marital`).
    pub fn double_ratio(
        q1: AggregateQuery,
        q2: AggregateQuery,
        q3: AggregateQuery,
        q4: AggregateQuery,
    ) -> NumericalQuery {
        NumericalQuery {
            aggregates: vec![q1, q2, q3, q4],
            expr: NumExpr::div(
                NumExpr::div(NumExpr::Agg(0), NumExpr::Agg(1)),
                NumExpr::div(NumExpr::Agg(2), NumExpr::Agg(3)),
            ),
            smoothing: 0.0,
        }
    }

    /// The least-squares regression slope over a *series* of aggregates —
    /// the Section 6(iv) complex question "why is this sequence of bars
    /// increasing?". With x-positions `0, 1, …, t−1`, the slope of the
    /// fitted line through `(x_j, q_j)` is the linear combination
    /// `Σ_j (x_j − x̄) q_j / Σ_j (x_j − x̄)²`, which is expressible as a
    /// [`NumExpr`] over the aggregates. Ask `(slope, high)` to explain an
    /// increase, `(slope, low)` a decrease.
    pub fn regression_slope(series: Vec<AggregateQuery>) -> NumericalQuery {
        let t = series.len();
        assert!(t >= 2, "a slope needs at least two points");
        let mean = (t as f64 - 1.0) / 2.0;
        let denom: f64 = (0..t).map(|x| (x as f64 - mean).powi(2)).sum();
        let mut expr: Option<NumExpr> = None;
        for (j, x) in (0..t).enumerate() {
            let coeff = (x as f64 - mean) / denom;
            let term = NumExpr::mul(NumExpr::Const(coeff), NumExpr::Agg(j));
            expr = Some(match expr {
                None => term,
                Some(acc) => NumExpr::Add(Box::new(acc), Box::new(term)),
            });
        }
        NumericalQuery {
            aggregates: series,
            expr: expr.expect("t >= 2"),
            smoothing: 0.0,
        }
    }

    /// Set the smoothing constant (builder style).
    pub fn with_smoothing(mut self, eps: f64) -> NumericalQuery {
        self.smoothing = eps;
        self
    }

    /// Number of aggregate sub-queries (`m`).
    pub fn arity(&self) -> usize {
        self.aggregates.len()
    }

    /// Evaluate `E` on pre-computed aggregate values, applying smoothing.
    pub fn combine(&self, vals: &[f64]) -> f64 {
        if self.smoothing == 0.0 {
            self.expr.eval(vals)
        } else {
            let smoothed: Vec<f64> = vals.iter().map(|v| v + self.smoothing).collect();
            self.expr.eval(&smoothed)
        }
    }

    /// Evaluate all aggregates over a pre-computed universal relation.
    pub fn aggregate_values(&self, db: &Database, u: &Universal) -> Result<Vec<f64>> {
        self.aggregates.iter().map(|q| q.eval(db, u)).collect()
    }

    /// Evaluate `Q` over a pre-computed universal relation.
    pub fn eval_universal(&self, db: &Database, u: &Universal) -> Result<f64> {
        Ok(self.combine(&self.aggregate_values(db, u)?))
    }

    /// Evaluate `Q` on a database view (`D`, `D − Δ`, …), computing its
    /// universal relation.
    pub fn eval_view(&self, db: &Database, view: &View) -> Result<f64> {
        let u = Universal::compute(db, view);
        self.eval_universal(db, &u)
    }

    /// Evaluate `Q` on the full database.
    pub fn eval(&self, db: &Database) -> Result<f64> {
        self.eval_view(db, &db.full_view())
    }
}

/// Is the observed value higher or lower than the user expected?
/// (Definition 2.1.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The user thinks `Q` is higher than expected.
    High,
    /// The user thinks `Q` is lower than expected.
    Low,
}

impl Direction {
    /// Sign applied to `Q(D − Δ^φ)` in `μ_interv` (Definition 2.7):
    /// interventions should move `Q` *against* the direction.
    pub fn interv_sign(self) -> f64 {
        match self {
            Direction::Low => 1.0,
            Direction::High => -1.0,
        }
    }

    /// Sign applied to `Q(D_φ)` in `μ_aggr` (Definition 2.4): aggravation
    /// should move `Q` *along* the direction.
    pub fn aggr_sign(self) -> f64 {
        match self {
            Direction::Low => -1.0,
            Direction::High => 1.0,
        }
    }
}

/// A user question `(Q, dir)` (Definition 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct UserQuestion {
    /// The numerical query.
    pub query: NumericalQuery,
    /// The direction of surprise.
    pub direction: Direction,
}

impl UserQuestion {
    /// Pair a query with a direction.
    pub fn new(query: NumericalQuery, direction: Direction) -> UserQuestion {
        UserQuestion { query, direction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{SchemaBuilder, ValueType as T};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("g", T::Str)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, g) in ["a", "a", "a", "b"].iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), (*g).into()])
                .unwrap();
        }
        db
    }

    #[test]
    fn expr_eval() {
        let e = NumExpr::div(
            NumExpr::Add(Box::new(NumExpr::Agg(0)), Box::new(NumExpr::Const(1.0))),
            NumExpr::Agg(1),
        );
        assert_eq!(e.eval(&[3.0, 2.0]), 2.0);
        assert_eq!(e.max_agg_index(), Some(1));
        assert_eq!(NumExpr::Const(5.0).max_agg_index(), None);
        assert_eq!(NumExpr::Log(Box::new(NumExpr::Const(1.0))).eval(&[]), 0.0);
        assert_eq!(NumExpr::Exp(Box::new(NumExpr::Const(0.0))).eval(&[]), 1.0);
        assert_eq!(NumExpr::Neg(Box::new(NumExpr::Agg(0))).eval(&[2.0]), -2.0);
        assert_eq!(
            NumExpr::Sub(Box::new(NumExpr::Agg(0)), Box::new(NumExpr::Agg(1))).eval(&[5.0, 2.0]),
            3.0
        );
        assert_eq!(
            NumExpr::mul(NumExpr::Const(3.0), NumExpr::Const(4.0)).eval(&[]),
            12.0
        );
    }

    #[test]
    fn new_checks_agg_indices() {
        let q = AggregateQuery::count_star(Predicate::True);
        assert!(NumericalQuery::new(vec![q.clone()], NumExpr::Agg(0)).is_ok());
        assert!(NumericalQuery::new(vec![q], NumExpr::Agg(1)).is_err());
    }

    #[test]
    fn ratio_query_on_data() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let q = NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(g, "a")),
            AggregateQuery::count_star(Predicate::eq(g, "b")),
        );
        assert_eq!(q.eval(&db).unwrap(), 3.0);
        assert_eq!(q.arity(), 2);
    }

    #[test]
    fn division_by_zero_yields_infinity_without_smoothing() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let q = NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::eq(g, "a")),
            AggregateQuery::count_star(Predicate::eq(g, "zzz")),
        );
        assert!(q.eval(&db).unwrap().is_infinite());
        let smoothed = q.with_smoothing(1e-4);
        assert!(smoothed.eval(&db).unwrap().is_finite());
    }

    #[test]
    fn double_ratio_shape() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let a = AggregateQuery::count_star(Predicate::eq(g, "a"));
        let b = AggregateQuery::count_star(Predicate::eq(g, "b"));
        let q = NumericalQuery::double_ratio(a.clone(), b.clone(), b, a);
        // (3/1)/(1/3) = 9
        assert_eq!(q.eval(&db).unwrap(), 9.0);
        assert_eq!(q.arity(), 4);
    }

    #[test]
    fn regression_slope_matches_least_squares() {
        // Perfectly linear series y = 2x + 1 → slope 2.
        let q = NumericalQuery::regression_slope(vec![
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery::count_star(Predicate::True),
        ]);
        let slope = q.combine(&[1.0, 3.0, 5.0, 7.0]);
        assert!((slope - 2.0).abs() < 1e-12);
        // Flat series → slope 0; decreasing → negative.
        assert!(q.combine(&[4.0, 4.0, 4.0, 4.0]).abs() < 1e-12);
        assert!(q.combine(&[9.0, 6.0, 4.0, 1.0]) < 0.0);
        // Two points: slope = y1 − y0.
        let q2 = NumericalQuery::regression_slope(vec![
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery::count_star(Predicate::True),
        ]);
        assert!((q2.combine(&[1.0, 4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn regression_slope_over_data() {
        // Counts per group g: a → 3, b → 1; series (count(a), count(b))
        // decreases, so the slope is negative.
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let q = NumericalQuery::regression_slope(vec![
            AggregateQuery::count_star(Predicate::eq(g, "a")),
            AggregateQuery::count_star(Predicate::eq(g, "b")),
        ]);
        assert_eq!(q.eval(&db).unwrap(), -2.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn regression_slope_needs_two_points() {
        NumericalQuery::regression_slope(vec![AggregateQuery::count_star(Predicate::True)]);
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::High.interv_sign(), -1.0);
        assert_eq!(Direction::Low.interv_sign(), 1.0);
        assert_eq!(Direction::High.aggr_sign(), 1.0);
        assert_eq!(Direction::Low.aggr_sign(), -1.0);
    }

    #[test]
    fn eval_on_view_respects_live_set() {
        let db = db();
        let q = NumericalQuery::single(AggregateQuery::count_star(Predicate::True));
        let mut delta = db.empty_delta();
        delta[0].insert(0);
        delta[0].insert(3);
        assert_eq!(q.eval_view(&db, &db.view_minus(&delta)).unwrap(), 2.0);
    }
}
