//! Program **P**: computing the minimal intervention `Δ^φ` (Section 3).
//!
//! The intervention associated with a candidate explanation φ is the unique
//! minimal `Δ = (Δ_1, …, Δ_k)` such that (Definition 2.6):
//!
//! 1. `Δ` is *closed* under the causal semantics of every foreign key
//!    (cascade, and backward cascade for back-and-forth keys);
//! 2. the residual database `D − Δ` is semijoin-reduced;
//! 3. no tuple of `U(D − Δ)` satisfies φ.
//!
//! Theorem 3.3 shows `Δ^φ` is the least fixpoint of the monotone recursive
//! program **P** with rules
//!
//! ```text
//! (i)   Δ_i = R_i − Π_{A_i} σ_{¬φ}(R_1 ⋈ … ⋈ R_k)            (seeds)
//! (ii)  Δ_i = R_i − Π_{A_i}((R_1 − Δ_1) ⋈ … ⋈ (R_k − Δ_k))   (semijoin reduction / cascade)
//! (iii) Δ_i = R_i ⋉_{pk=fk} Δ_j   for every back-and-forth fk (backward cascade)
//! ```
//!
//! This module evaluates **P** with *synchronous* (immediate-consequence)
//! iteration — `Δ^{ℓ+1} = T(Δ^ℓ)` with all rule bodies reading `Δ^ℓ` — so
//! the reported iteration counts are comparable to the paper's convergence
//! propositions: two steps with no back-and-forth keys (Prop 3.5), `2q+2`
//! in general (Prop 3.10), and Θ(n) on the adversarial chain of
//! Example 3.7.
//!
//! ```
//! use exq_core::explanation::Explanation;
//! use exq_core::intervention::{is_valid_intervention, InterventionEngine};
//! use exq_relstore::{Atom, Database, SchemaBuilder, ValueType};
//!
//! // An author necessary for her paper: back-and-forth key.
//! let schema = SchemaBuilder::new()
//!     .relation("Author", &[("id", ValueType::Str), ("dom", ValueType::Str)], &["id"])
//!     .relation("Authored", &[("id", ValueType::Str), ("pubid", ValueType::Str)], &["id", "pubid"])
//!     .relation("Publication", &[("pubid", ValueType::Str)], &["pubid"])
//!     .standard_fk("Authored", &["id"], "Author")
//!     .back_and_forth_fk("Authored", &["pubid"], "Publication")
//!     .build()?;
//! let mut db = Database::new(schema);
//! db.insert("Author", vec!["A1".into(), "edu".into()])?;
//! db.insert("Author", vec!["A2".into(), "com".into()])?;
//! db.insert("Authored", vec!["A1".into(), "P1".into()])?;
//! db.insert("Authored", vec!["A2".into(), "P1".into()])?;
//! db.insert("Publication", vec!["P1".into()])?;
//! db.validate()?;
//!
//! let engine = InterventionEngine::new(&db);
//! let phi = Explanation::new(vec![Atom::eq(db.schema().attr("Author", "dom")?, "com")]);
//! let iv = engine.compute(&phi);
//! // Deleting A2 backward-cascades to P1, which cascades to A1's record,
//! // which dangles A1: the whole instance goes.
//! assert_eq!(iv.total_deleted(), 5);
//! assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));
//! # Ok::<(), exq_relstore::Error>(())
//! ```
//!
//! One counting subtlety: Rule (ii) as written is the projection of the
//! *full* residual join, i.e. a complete semijoin reduction per iteration
//! (Prop 3.5's proof depends on exactly this — "Rule (ii) in isolation can
//! fire at most once"). Under that reading the Example 3.7 chain converges
//! in `n − 2` iterations, one fewer than the paper's informal step-by-step
//! trace (which lets a dangling tuple drop only one cascade hop per
//! iteration, giving `n − 1`). The fixpoint is identical either way; the
//! linear lower bound — and hence the need for recursion when a relation
//! carries two back-and-forth keys — is unaffected.

use crate::explanation::Explanation;
use exq_relstore::index::HashIndex;
use exq_relstore::{
    semijoin, Conjunction, Database, ExecConfig, FkKind, Predicate, TupleSet, Universal,
};

/// The result of running program **P**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intervention {
    /// The minimal intervention `Δ^φ`: deleted rows per relation.
    pub delta: Vec<TupleSet>,
    /// Seed tuples `Δ¹` computed by Rule (i).
    pub seeds: Vec<TupleSet>,
    /// Number of synchronous iterations until the fixpoint
    /// (`Δ^ℓ = Δ^{ℓ+1}` with `ℓ` minimal).
    pub iterations: usize,
}

impl Intervention {
    /// Total number of deleted tuples.
    pub fn total_deleted(&self) -> usize {
        self.delta.iter().map(TupleSet::count).sum()
    }

    /// Whether nothing is deleted (φ matched no universal tuple).
    pub fn is_empty(&self) -> bool {
        self.delta.iter().all(TupleSet::is_empty)
    }
}

/// Evaluates program **P** against one database, amortizing the universal
/// relation and the backward-cascade maps across many explanations — the
/// shape both the naive top-K algorithm and per-explanation drill-downs
/// need.
#[derive(Debug)]
pub struct InterventionEngine<'a> {
    db: &'a Database,
    universal: Universal,
    /// For each back-and-forth fk: `(from_rel, to_rel, row map)` where
    /// `row map[j]` is the (unique, by pk) referenced row of `to_rel`.
    bf_maps: Vec<(usize, usize, Vec<u32>)>,
    /// Executor for the per-iteration semijoin reductions. Sequential by
    /// default: the naive table already parallelizes *across* candidates,
    /// and nesting parallel reductions inside that would oversubscribe.
    exec: ExecConfig,
}

impl<'a> InterventionEngine<'a> {
    /// Build an engine over the full database. `db` must be validated and
    /// semijoin-reduced (the paper's standing assumption, Section 2).
    pub fn new(db: &'a Database) -> InterventionEngine<'a> {
        let universal = Universal::compute(db, &db.full_view());
        InterventionEngine::with_universal(db, universal)
    }

    /// Build an engine reusing a pre-computed universal relation.
    pub fn with_universal(db: &'a Database, universal: Universal) -> InterventionEngine<'a> {
        let mut bf_maps = Vec::new();
        for fk in db.schema().foreign_keys() {
            if fk.kind != FkKind::BackAndForth {
                continue;
            }
            let full = TupleSet::full(db.relation_len(fk.to_rel));
            let index = HashIndex::build(db, fk.to_rel, &fk.to_cols, &full);
            let from = db.relation(fk.from_rel);
            let mut key = Vec::new();
            let map = (0..from.len())
                .map(|j| {
                    from.project_into(j, &fk.from_cols, &mut key);
                    // The target is unique because to_cols is a primary key;
                    // referential integrity guarantees it exists.
                    index.get(&key).first().copied().unwrap_or(u32::MAX)
                })
                .collect();
            bf_maps.push((fk.from_rel, fk.to_rel, map));
        }
        InterventionEngine {
            db,
            universal,
            bf_maps,
            exec: ExecConfig::sequential(),
        }
    }

    /// Run the per-iteration semijoin reductions on `exec`. Useful for
    /// single-candidate drill-downs on large databases; leave sequential
    /// when the engine is shared by parallel candidate workers.
    pub fn with_exec(mut self, exec: ExecConfig) -> InterventionEngine<'a> {
        self.exec = exec;
        self
    }

    /// The universal relation of the full database.
    pub fn universal(&self) -> &Universal {
        &self.universal
    }

    /// The database.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// Rule (i): the seed tuples
    /// `Δ¹_i = R_i − Π_{A_i} σ_{¬φ}(U(D))`.
    pub fn seeds(&self, phi: &Conjunction) -> Vec<TupleSet> {
        self.seeds_predicate(&phi.to_predicate())
    }

    /// Rule (i) for an arbitrary boolean predicate φ. Definitions 2.5–2.6
    /// and Theorem 3.3 never use conjunctivity, so the fixpoint machinery
    /// applies unchanged to the Section 6(ii) extensions (ranges,
    /// disjunctions) and the Section 4.1 disjunction rewrites.
    pub fn seeds_predicate(&self, phi: &Predicate) -> Vec<TupleSet> {
        let k = self.db.schema().relation_count();
        let mut kept: Vec<TupleSet> = (0..k)
            .map(|i| TupleSet::empty(self.db.relation_len(i)))
            .collect();
        for t in self.universal.iter() {
            if !phi.eval(self.db, t) {
                for (rel, &row) in t.iter().enumerate() {
                    kept[rel].insert(row as usize);
                }
            }
        }
        kept.into_iter().map(|k| k.complement()).collect()
    }

    /// Run program **P** for the explanation φ.
    pub fn compute(&self, phi: &Explanation) -> Intervention {
        self.compute_conjunction(phi.conjunction())
    }

    /// Run program **P** for a raw conjunction.
    pub fn compute_conjunction(&self, phi: &Conjunction) -> Intervention {
        self.compute_predicate(&phi.to_predicate())
    }

    /// Run program **P** for an arbitrary boolean predicate φ.
    pub fn compute_predicate(&self, phi: &Predicate) -> Intervention {
        let sink = self.exec.metrics();
        let _span = sink.span("fixpoint");
        let seeds = self.seeds_predicate(phi);
        let (delta, iterations) = self.close_from_seeds(&seeds);
        let iv = Intervention {
            delta,
            seeds,
            iterations,
        };
        // Theorem 4.5's convergence bound as an observable: iteration
        // totals per program-P run, plus seed and deletion volumes.
        sink.incr("fixpoint.runs");
        sink.add("fixpoint.iterations", iterations as u64);
        sink.add(
            "fixpoint.seed_rows",
            iv.seeds.iter().map(|s| s.count() as u64).sum(),
        );
        sink.add("fixpoint.deleted_rows", iv.total_deleted() as u64);
        iv
    }

    /// The Section 3.3 *non-recursive* evaluation: when the schema's
    /// convergence bound is static (no back-and-forth keys, or a simple
    /// acyclic causal graph with at most one back-and-forth key per
    /// relation — Propositions 3.5/3.11), `Δ^φ` is computable by a fixed
    /// pipeline with no fixpoint test:
    ///
    /// ```text
    /// seeds (Rule i) → reduce (Rule ii) → [cascade (Rule iii) → reduce (Rule ii)] × s
    /// ```
    ///
    /// Returns `None` when the schema requires genuine recursion (the
    /// Example 3.7 shape) — use [`InterventionEngine::compute`] there.
    /// The returned `iterations` counts the pipeline stages executed.
    pub fn compute_unrolled(&self, phi: &Explanation) -> Option<Intervention> {
        use crate::causal::{convergence_bound, ConvergenceBound};
        let s = match convergence_bound(self.db.schema()) {
            ConvergenceBound::TwoSteps => 0,
            ConvergenceBound::Unrollable { .. } => self.db.schema().back_and_forth_count(),
            ConvergenceBound::RequiresRecursion => return None,
        };
        let seeds = self.seeds_predicate(&phi.conjunction().to_predicate());
        let mut delta = seeds.clone();
        let mut stages = 1usize;

        let reduce_into = |delta: &mut Vec<TupleSet>| {
            let reduced = semijoin::reduce_with(self.db, &self.db.view_minus(delta), &self.exec);
            for (d, live) in delta.iter_mut().zip(&reduced.live) {
                d.union_with(&live.complement());
            }
        };

        reduce_into(&mut delta);
        stages += 1;
        for _ in 0..s {
            // Rule (iii) over the current Δ, all back-and-forth keys.
            let snapshot = delta.clone();
            for (from_rel, to_rel, map) in &self.bf_maps {
                for row_j in snapshot[*from_rel].iter() {
                    let row_i = map[row_j];
                    if row_i != u32::MAX {
                        delta[*to_rel].insert(row_i as usize);
                    }
                }
            }
            reduce_into(&mut delta);
            stages += 2;
        }
        let iv = Intervention {
            delta,
            seeds,
            iterations: stages,
        };
        let sink = self.exec.metrics();
        sink.incr("fixpoint.runs");
        sink.add("fixpoint.iterations", stages as u64);
        sink.add(
            "fixpoint.seed_rows",
            iv.seeds.iter().map(|s| s.count() as u64).sum(),
        );
        sink.add("fixpoint.deleted_rows", iv.total_deleted() as u64);
        Some(iv)
    }

    /// The least fixpoint of Rules (ii) and (iii) above an arbitrary seed
    /// set (synchronous iteration). Exposed separately because the closure
    /// of *any* valid seed superset is a valid intervention — the property
    /// minimality tests exploit.
    pub fn close_from_seeds(&self, seeds: &[TupleSet]) -> (Vec<TupleSet>, usize) {
        let mut delta = self.db.empty_delta();
        // Rows added in the previous round, per relation. Rule (iii) only
        // needs the frontier of Δ^ℓ: a row already in Δ^{ℓ−1} had its
        // (unique) backward-cascade target inserted the round after it
        // first appeared, so re-scanning it cannot change Δ^{ℓ+1}. This
        // keeps Rule (iii) linear in |Δ| per fixpoint run instead of
        // quadratic, without altering the synchronous iteration counts
        // (Δ⁰ = ∅, so the initial frontier is empty too).
        let mut frontier: Vec<TupleSet> = self.db.empty_delta();
        let mut iterations = 0usize;
        loop {
            let mut next = delta.clone();
            let mut changed = false;

            // Rule (i): seeds (constant body; a no-op after round one).
            for (n, s) in next.iter_mut().zip(seeds) {
                changed |= n.union_with(s);
            }

            // Rule (iii): backward cascade over the frontier of Δ^ℓ.
            for (from_rel, to_rel, map) in &self.bf_maps {
                for row_j in frontier[*from_rel].iter() {
                    let row_i = map[row_j];
                    if row_i != u32::MAX {
                        changed |= next[*to_rel].insert(row_i as usize);
                    }
                }
            }

            // Rule (ii): Δ_i = R_i − Π_{A_i}((R−Δ^ℓ) ⋈ …): everything not
            // surviving the semijoin reduction of the residual database.
            let reduced = semijoin::reduce_with(self.db, &self.db.view_minus(&delta), &self.exec);
            for (n, live) in next.iter_mut().zip(&reduced.live) {
                changed |= n.union_with(&live.complement());
            }

            if !changed {
                return (delta, iterations);
            }
            for ((f, n), d) in frontier.iter_mut().zip(&next).zip(&delta) {
                *f = n.clone();
                f.difference_with(d);
            }
            delta = next;
            iterations += 1;
        }
    }
}

/// Whether `delta` is closed under every foreign key's causal semantics
/// (Definition 2.5).
pub fn is_closed(db: &Database, delta: &[TupleSet]) -> bool {
    for fk in db.schema().foreign_keys() {
        let full = TupleSet::full(db.relation_len(fk.to_rel));
        let index = HashIndex::build(db, fk.to_rel, &fk.to_cols, &full);
        let from = db.relation(fk.from_rel);
        let mut key = Vec::new();
        for row_j in 0..from.len() {
            from.project_into(row_j, &fk.from_cols, &mut key);
            let Some(&row_i) = index.get(&key).first() else {
                continue; // dangling fk: no constraint to violate
            };
            let ti_deleted = delta[fk.to_rel].contains(row_i as usize);
            let tj_deleted = delta[fk.from_rel].contains(row_j);
            // Forth (cascade): t_i ∈ Δ ⇒ t_j ∈ Δ.
            if ti_deleted && !tj_deleted {
                return false;
            }
            // Back: t_j ∈ Δ ⇒ t_i ∈ Δ, for back-and-forth keys.
            if fk.kind == FkKind::BackAndForth && tj_deleted && !ti_deleted {
                return false;
            }
        }
    }
    true
}

/// Whether `delta` is a *valid* intervention for φ (Definition 2.6): closed,
/// residual semijoin-reduced, and no residual universal tuple satisfies φ.
pub fn is_valid_intervention(db: &Database, phi: &Conjunction, delta: &[TupleSet]) -> bool {
    is_valid_for_predicate(db, &phi.to_predicate(), delta)
}

/// [`is_valid_intervention`] for an arbitrary boolean predicate φ.
pub fn is_valid_for_predicate(db: &Database, phi: &Predicate, delta: &[TupleSet]) -> bool {
    if !is_closed(db, delta) {
        return false;
    }
    let residual = db.view_minus(delta);
    if !semijoin::is_reduced(db, &residual) {
        return false;
    }
    let u = Universal::compute(db, &residual);
    let no_phi_survivor = u.iter().all(|t| !phi.eval(db, t));
    no_phi_survivor
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{Atom, SchemaBuilder, ValueType as T};

    /// The Figure 3 running-example instance.
    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        // Row ids:        s1          s2          s3          s4          s5          s6
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    fn phi_jg_2001(db: &Database) -> Explanation {
        Explanation::new(vec![
            Atom::eq(db.schema().attr("Author", "name").unwrap(), "JG"),
            Atom::eq(db.schema().attr("Publication", "year").unwrap(), 2001),
        ])
    }

    #[test]
    fn example_28_intervention_is_asymmetric() {
        // Example 2.8: Δ_Author = ∅, Δ_Authored = {s1, s2},
        // Δ_Publication = {t1}.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let iv = engine.compute(&phi_jg_2001(&db));
        let author = db.schema().relation_index("Author").unwrap();
        let authored = db.schema().relation_index("Authored").unwrap();
        let publication = db.schema().relation_index("Publication").unwrap();
        assert!(iv.delta[author].is_empty(), "the author JG must survive");
        assert_eq!(
            iv.delta[authored].iter().collect::<Vec<_>>(),
            vec![0, 1],
            "s1 and s2"
        );
        assert_eq!(
            iv.delta[publication].iter().collect::<Vec<_>>(),
            vec![0],
            "t1"
        );
        assert_eq!(iv.total_deleted(), 3);
        assert!(is_valid_intervention(
            &db,
            phi_jg_2001(&db).conjunction(),
            &iv.delta
        ));
    }

    #[test]
    fn example_28_standard_fks_give_symmetric_intervention() {
        // With both keys standard, only s1 is deleted.
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .standard_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let src = figure3_db();
        let mut db = Database::new(schema);
        for rel in ["Author", "Authored", "Publication"] {
            let idx = src.schema().relation_index(rel).unwrap();
            for row in src.relation(idx).rows() {
                db.insert(rel, row.to_vec()).unwrap();
            }
        }
        let engine = InterventionEngine::new(&db);
        let iv = engine.compute(&phi_jg_2001(&db));
        let authored = db.schema().relation_index("Authored").unwrap();
        assert_eq!(iv.total_deleted(), 1);
        assert_eq!(
            iv.delta[authored].iter().collect::<Vec<_>>(),
            vec![0],
            "only s1"
        );
    }

    #[test]
    fn seeds_of_running_example() {
        // σ_φ(U) = {u1} only; the only tuple whose every universal
        // occurrence satisfies φ is s1.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let seeds = engine.seeds(phi_jg_2001(&db).conjunction());
        let authored = db.schema().relation_index("Authored").unwrap();
        assert_eq!(seeds[authored].iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(seeds.iter().map(TupleSet::count).sum::<usize>(), 1);
    }

    #[test]
    fn running_example_converges_within_prop_311_bound() {
        // One back-and-forth key, at most one per relation: ≤ 2s+2 = 4.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let iv = engine.compute(&phi_jg_2001(&db));
        assert!(iv.iterations <= 4, "got {}", iv.iterations);
    }

    #[test]
    fn empty_phi_match_gives_empty_intervention() {
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "NOBODY",
        )]);
        let iv = engine.compute(&phi);
        assert!(iv.is_empty());
        assert_eq!(iv.iterations, 0);
        assert!(is_valid_intervention(&db, phi.conjunction(), &iv.delta));
    }

    #[test]
    fn trivial_phi_deletes_everything() {
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let iv = engine.compute(&Explanation::trivial());
        assert_eq!(iv.total_deleted(), db.total_tuples());
    }

    #[test]
    fn closedness_detects_violations() {
        let db = figure3_db();
        // Deleting the author A1 without deleting her Authored rows
        // violates the cascade.
        let mut delta = db.empty_delta();
        let author = db.schema().relation_index("Author").unwrap();
        delta[author].insert(0);
        assert!(!is_closed(&db, &delta));

        // Deleting authored row s1 without deleting publication P1
        // violates the backward cascade.
        let mut delta = db.empty_delta();
        let authored = db.schema().relation_index("Authored").unwrap();
        delta[authored].insert(0);
        assert!(!is_closed(&db, &delta));

        // Deleting a publication alone violates the forward cascade on the
        // back-and-forth key.
        let mut delta = db.empty_delta();
        let publication = db.schema().relation_index("Publication").unwrap();
        delta[publication].insert(0);
        assert!(!is_closed(&db, &delta));

        // The empty intervention is closed.
        assert!(is_closed(&db, &db.empty_delta()));
    }

    #[test]
    fn unrolled_pipeline_matches_fixpoint() {
        // Running example: one back-and-forth key → unrollable.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let schema = db.schema();
        let candidates = [
            phi_jg_2001(&db),
            Explanation::new(vec![Atom::eq(schema.attr("Author", "name").unwrap(), "RR")]),
            Explanation::new(vec![Atom::eq(schema.attr("Author", "dom").unwrap(), "com")]),
            Explanation::new(vec![Atom::eq(
                schema.attr("Publication", "venue").unwrap(),
                "SIGMOD",
            )]),
            Explanation::trivial(),
            Explanation::new(vec![Atom::eq(
                schema.attr("Author", "name").unwrap(),
                "NOBODY",
            )]),
        ];
        for phi in candidates {
            let fixpoint = engine.compute(&phi);
            let unrolled = engine.compute_unrolled(&phi).expect("schema is unrollable");
            assert_eq!(
                unrolled.delta,
                fixpoint.delta,
                "mismatch for {}",
                phi.display(&db)
            );
            assert_eq!(unrolled.seeds, fixpoint.seeds);
        }
    }

    #[test]
    fn unrolled_refuses_recursive_schemas() {
        // Example 3.7's schema (two back-and-forth keys on R3).
        let schema = SchemaBuilder::new()
            .relation("R1", &[("a", T::Str)], &["a"])
            .relation("R2", &[("b", T::Str)], &["b"])
            .relation("R3", &[("c", T::Str), ("a", T::Str), ("b", T::Str)], &["c"])
            .back_and_forth_fk("R3", &["a"], "R1")
            .back_and_forth_fk("R3", &["b"], "R2")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R1", vec!["r1".into()]).unwrap();
        db.insert("R2", vec!["t0".into()]).unwrap();
        db.insert("R2", vec!["t1".into()]).unwrap();
        db.insert("R3", vec!["c1a".into(), "r1".into(), "t0".into()])
            .unwrap();
        db.insert("R3", vec!["c1b".into(), "r1".into(), "t1".into()])
            .unwrap();
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(vec![Atom::eq(db.schema().attr("R3", "c").unwrap(), "c1a")]);
        assert!(engine.compute_unrolled(&phi).is_none());
        assert!(!engine.compute(&phi).is_empty(), "the fixpoint still works");
    }

    #[test]
    fn minimality_against_closed_seed_supersets() {
        // Any closure of a seed superset is valid and must contain Δ^φ.
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let phi = phi_jg_2001(&db);
        let iv = engine.compute(&phi);
        let authored = db.schema().relation_index("Authored").unwrap();

        let mut bigger_seeds = iv.seeds.clone();
        bigger_seeds[authored].insert(4); // also delete s5 (A2, P3)
        let (bigger_delta, _) = engine.close_from_seeds(&bigger_seeds);
        assert!(is_valid_intervention(&db, phi.conjunction(), &bigger_delta));
        for (small, big) in iv.delta.iter().zip(&bigger_delta) {
            assert!(small.is_subset(big));
        }
        assert!(bigger_delta.iter().map(TupleSet::count).sum::<usize>() > iv.total_deleted());
    }

    #[test]
    fn residual_universal_never_satisfies_phi() {
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        for (rel, attr, val) in [
            ("Author", "name", "RR"),
            ("Author", "dom", "com"),
            ("Publication", "venue", "SIGMOD"),
        ] {
            let phi = Explanation::new(vec![Atom::eq(db.schema().attr(rel, attr).unwrap(), val)]);
            let iv = engine.compute(&phi);
            assert!(
                is_valid_intervention(&db, phi.conjunction(), &iv.delta),
                "invalid intervention for {rel}.{attr}={val}"
            );
        }
    }

    #[test]
    fn prop_34_iteration_bound() {
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let n = db.total_tuples();
        for (rel, attr, val) in [
            ("Author", "name", "JG"),
            ("Author", "inst", "M.com"),
            ("Publication", "year", "2001"),
        ] {
            let a = db.schema().attr(rel, attr).unwrap();
            let v: exq_relstore::Value = if attr == "year" {
                2001.into()
            } else {
                val.into()
            };
            let iv = engine.compute(&Explanation::new(vec![Atom::eq(a, v)]));
            assert!(iv.iterations <= n);
        }
    }
}
