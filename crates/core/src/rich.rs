//! Rich explanations: inequalities and disjunctions (Section 6(ii)).
//!
//! The paper's discussion section calls out two useful extensions of the
//! candidate-explanation language:
//!
//! * **ranges** — `[year > 1977 ∧ year < 1982]`, i.e. contiguous
//!   intervals of an ordered attribute;
//! * **disjunctions** — `[author = Levy ∨ author = Halevy]`, i.e. small
//!   value sets on one attribute.
//!
//! Both fit the formal framework unchanged: a rich explanation is still a
//! boolean predicate, its intervention is still the least fixpoint of
//! program **P** (Definitions 2.5–2.6 never use conjunctivity), and the
//! degrees are still Definitions 2.4/2.7. What changes is the *search
//! space*: the data cube no longer enumerates the candidates, so rich
//! candidates are generated explicitly ([`range_candidates`],
//! [`one_of_candidates`]) and evaluated with the exact per-candidate
//! engine — the paper's "naive iterative algorithm", whose optimization
//! the authors leave as future work.

use crate::degree::{mu_aggr_predicate, mu_interv_of};
use crate::error::Result;
use crate::intervention::InterventionEngine;
use crate::question::UserQuestion;
use exq_relstore::{AttrRef, CmpOp, Database, Predicate, Universal, Value};
use std::fmt;

/// One constraint of a rich explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RichPart {
    /// `attr = value` (the Definition 2.3 equality atom).
    Eq(AttrRef, Value),
    /// `lo ≤ attr ≤ hi` (inclusive range over an ordered attribute).
    Range {
        /// The constrained attribute.
        attr: AttrRef,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `attr ∈ values` (a small disjunction of equalities on one
    /// attribute).
    OneOf {
        /// The constrained attribute.
        attr: AttrRef,
        /// Accepted values (non-empty).
        values: Vec<Value>,
    },
}

impl RichPart {
    /// Lower to a [`Predicate`].
    pub fn to_predicate(&self) -> Predicate {
        match self {
            RichPart::Eq(attr, v) => Predicate::eq(*attr, v.clone()),
            RichPart::Range { attr, lo, hi } => Predicate::And(vec![
                Predicate::cmp(*attr, CmpOp::Ge, lo.clone()),
                Predicate::cmp(*attr, CmpOp::Le, hi.clone()),
            ]),
            RichPart::OneOf { attr, values } => Predicate::Or(
                values
                    .iter()
                    .map(|v| Predicate::eq(*attr, v.clone()))
                    .collect(),
            ),
        }
    }
}

/// A conjunction of rich constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RichExplanation {
    /// The conjoined parts.
    pub parts: Vec<RichPart>,
}

impl RichExplanation {
    /// From constraint parts.
    pub fn new(parts: Vec<RichPart>) -> RichExplanation {
        RichExplanation { parts }
    }

    /// Lower to a [`Predicate`] (conjunction of the lowered parts).
    pub fn to_predicate(&self) -> Predicate {
        Predicate::And(self.parts.iter().map(RichPart::to_predicate).collect())
    }

    /// Render with schema names.
    pub fn display<'a>(&'a self, db: &'a Database) -> RichDisplay<'a> {
        RichDisplay(self, db)
    }
}

/// Display adaptor pairing a rich explanation with its schema for
/// human-readable rendering.
pub struct RichDisplay<'a>(&'a RichExplanation, &'a Database);

impl fmt::Display for RichDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, part) in self.0.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            match part {
                RichPart::Eq(attr, v) => {
                    write!(f, "{} = {v}", self.1.schema().attr_name(*attr))?;
                }
                RichPart::Range { attr, lo, hi } => {
                    write!(f, "{lo} ≤ {} ≤ {hi}", self.1.schema().attr_name(*attr))?;
                }
                RichPart::OneOf { attr, values } => {
                    let name = self.1.schema().attr_name(*attr);
                    let vs: Vec<String> = values.iter().map(|v| format!("{name} = {v}")).collect();
                    write!(f, "({})", vs.join(" ∨ "))?;
                }
            }
        }
        write!(f, "]")
    }
}

/// All contiguous value ranges of an ordered attribute, over its distinct
/// values observed in the universal relation, with span at most
/// `max_span` values. `[v_i, v_j]` for every `i ≤ j < i + max_span` —
/// the "papers with 1977 < year < 1982" shape.
pub fn range_candidates(
    db: &Database,
    u: &Universal,
    attr: AttrRef,
    max_span: usize,
) -> Vec<RichExplanation> {
    let values = distinct_values(db, u, attr);
    let mut out = Vec::new();
    for i in 0..values.len() {
        for j in i..values.len().min(i + max_span) {
            out.push(RichExplanation::new(vec![RichPart::Range {
                attr,
                lo: values[i].clone(),
                hi: values[j].clone(),
            }]));
        }
    }
    out
}

/// All unordered value *pairs* of an attribute — the "Levy ∨ Halevy"
/// shape. Quadratic in the number of distinct values; intended for
/// low-cardinality attributes or pre-filtered value lists.
pub fn one_of_candidates(db: &Database, u: &Universal, attr: AttrRef) -> Vec<RichExplanation> {
    let values = distinct_values(db, u, attr);
    let mut out = Vec::new();
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            out.push(RichExplanation::new(vec![RichPart::OneOf {
                attr,
                values: vec![values[i].clone(), values[j].clone()],
            }]));
        }
    }
    out
}

fn distinct_values(db: &Database, u: &Universal, attr: AttrRef) -> Vec<Value> {
    let mut values: Vec<Value> = u
        .iter()
        .map(|t| db.value(attr, t[attr.rel] as usize).clone())
        .filter(|v| !v.is_null())
        .collect();
    values.sort();
    values.dedup();
    values
}

/// A rich explanation with its exact degrees.
#[derive(Debug, Clone)]
pub struct RankedRich {
    /// The explanation.
    pub explanation: RichExplanation,
    /// Exact `μ_interv` (program P + residual evaluation).
    pub mu_interv: f64,
    /// Exact `μ_aggr`.
    pub mu_aggr: f64,
}

/// Evaluate a candidate list exactly and return it sorted by `μ_interv`
/// descending (ties: by `μ_aggr`).
pub fn evaluate_candidates(
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    candidates: Vec<RichExplanation>,
) -> Result<Vec<RankedRich>> {
    let db = engine.db();
    let mut out = Vec::with_capacity(candidates.len());
    for explanation in candidates {
        let pred = explanation.to_predicate();
        let iv = engine.compute_predicate(&pred);
        let mu_interv = mu_interv_of(db, question, &iv)?;
        let mu_aggr = mu_aggr_predicate(db, engine.universal(), question, &pred)?;
        out.push(RankedRich {
            explanation,
            mu_interv,
            mu_aggr,
        });
    }
    out.sort_by(|a, b| {
        b.mu_interv
            .total_cmp(&a.mu_interv)
            .then(b.mu_aggr.total_cmp(&a.mu_aggr))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::{AggregateQuery, Direction, NumericalQuery};
    use exq_relstore::{SchemaBuilder, ValueType as T};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("year", T::Int), ("ok", T::Str)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let rows = [
            (1990, "y"),
            (1991, "y"),
            (1992, "n"),
            (1993, "n"),
            (1994, "y"),
            (1995, "y"),
        ];
        for (i, (y, ok)) in rows.iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), (*y).into(), (*ok).into()])
                .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let ok = db.schema().attr("R", "ok").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    #[test]
    fn parts_lower_to_predicates() {
        let db = db();
        let year = db.schema().attr("R", "year").unwrap();
        let u = Universal::compute(&db, &db.full_view());

        let range = RichPart::Range {
            attr: year,
            lo: 1991.into(),
            hi: 1993.into(),
        };
        let p = range.to_predicate();
        let hits = u.iter().filter(|t| p.eval(&db, t)).count();
        assert_eq!(hits, 3);

        let one_of = RichPart::OneOf {
            attr: year,
            values: vec![1990.into(), 1995.into()],
        };
        let p = one_of.to_predicate();
        let hits = u.iter().filter(|t| p.eval(&db, t)).count();
        assert_eq!(hits, 2);

        let eq = RichPart::Eq(year, 1992.into());
        assert_eq!(
            u.iter().filter(|t| eq.to_predicate().eval(&db, t)).count(),
            1
        );
    }

    #[test]
    fn range_candidate_generation() {
        let db = db();
        let year = db.schema().attr("R", "year").unwrap();
        let u = Universal::compute(&db, &db.full_view());
        // 6 distinct years, max span 3: 6 + 5 + 4 = 15 candidates.
        let cands = range_candidates(&db, &u, year, 3);
        assert_eq!(cands.len(), 15);
        // Full-span enumeration: 6+5+4+3+2+1 = 21.
        assert_eq!(range_candidates(&db, &u, year, 100).len(), 21);
    }

    #[test]
    fn one_of_candidate_generation() {
        let db = db();
        let ok = db.schema().attr("R", "ok").unwrap();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            one_of_candidates(&db, &u, ok).len(),
            1,
            "one pair from {{y,n}}"
        );
        let year = db.schema().attr("R", "year").unwrap();
        assert_eq!(one_of_candidates(&db, &u, year).len(), 15, "C(6,2)");
    }

    #[test]
    fn best_range_explains_the_bad_years() {
        // ok=n exactly in 1992-1993; (Q, low) asks why y/n is low, so the
        // best intervention removes the bad years.
        let db = db();
        let ok = db.schema().attr("R", "ok").unwrap();
        let year = db.schema().attr("R", "year").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::Low,
        );
        let engine = InterventionEngine::new(&db);
        let u = engine.universal().clone();
        let ranked = evaluate_candidates(&engine, &q, range_candidates(&db, &u, year, 2)).unwrap();
        let best = &ranked[0].explanation;
        assert_eq!(
            best.parts,
            vec![RichPart::Range {
                attr: year,
                lo: 1992.into(),
                hi: 1993.into()
            }],
            "best = the exact bad interval, got {}",
            RichDisplay(best, &db)
        );
    }

    #[test]
    fn disjunction_explanation_evaluates_exactly() {
        let db = db();
        let year = db.schema().attr("R", "year").unwrap();
        let q = question(&db);
        let engine = InterventionEngine::new(&db);
        let phi = RichExplanation::new(vec![RichPart::OneOf {
            attr: year,
            values: vec![1992.into(), 1993.into()],
        }]);
        let ranked = evaluate_candidates(&engine, &q, vec![phi]).unwrap();
        // Removing both bad years leaves 4 y, 0 n: μ_interv(high) =
        // -(4+ε)/ε — a huge negative value (this explanation makes the
        // HIGH ratio even higher when removed, so it ranks terribly).
        assert!(ranked[0].mu_interv < -1000.0);
        // Aggravation: restricting to the bad years gives y/n = ε/(2+ε),
        // sign + for high.
        assert!(ranked[0].mu_aggr < 1.0);
    }

    #[test]
    fn display_renders_all_part_kinds() {
        let db = db();
        let year = db.schema().attr("R", "year").unwrap();
        let ok = db.schema().attr("R", "ok").unwrap();
        let e = RichExplanation::new(vec![
            RichPart::Eq(ok, "y".into()),
            RichPart::Range {
                attr: year,
                lo: 1991.into(),
                hi: 1993.into(),
            },
            RichPart::OneOf {
                attr: year,
                values: vec![1990.into(), 1995.into()],
            },
        ]);
        let text = format!("{}", RichDisplay(&e, &db));
        assert!(text.contains("R.ok = y"));
        assert!(text.contains("1991 ≤ R.year ≤ 1993"));
        assert!(text.contains("R.year = 1990 ∨ R.year = 1995"));
    }

    #[test]
    fn rich_interventions_are_valid() {
        let db = db();
        let year = db.schema().attr("R", "year").unwrap();
        let engine = InterventionEngine::new(&db);
        let phi = RichExplanation::new(vec![RichPart::Range {
            attr: year,
            lo: 1991.into(),
            hi: 1994.into(),
        }]);
        let pred = phi.to_predicate();
        let iv = engine.compute_predicate(&pred);
        assert!(crate::intervention::is_valid_for_predicate(
            &db, &pred, &iv.delta
        ));
        assert_eq!(iv.total_deleted(), 4);
    }
}
