//! Degrees of explanation (Definitions 2.4 and 2.7), computed directly
//! (without the data cube).
//!
//! * **Aggravation** `μ_aggr(φ) = ± Q(D_φ)`: restrict the database to the
//!   tuples satisfying φ and re-evaluate `Q`. Because a candidate
//!   explanation is a conjunction of per-relation atoms, `σ_φ(U(D))` is
//!   itself the universal relation of `D_φ` (it equals the join of the
//!   selected relations), so `q_j(D_φ) = q_j(σ_φ(U))` — the identity
//!   Section 4.1 relies on.
//! * **Intervention** `μ_interv(φ) = ∓ Q(D − Δ^φ)`: run program **P** and
//!   re-evaluate `Q` on the residual database.
//!
//! These direct evaluations are the ground truth the cube pipeline
//! (`cube_algo`) is tested against, and the engine behind the naive
//! baseline of Figure 12.

use crate::explanation::Explanation;
use crate::intervention::{Intervention, InterventionEngine};
use crate::question::UserQuestion;
use exq_relstore::aggregate::evaluate;
use exq_relstore::{Database, Predicate, Result, Universal};

/// `μ_aggr(φ)` by direct evaluation over `σ_φ(U(D))`.
pub fn mu_aggr(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    phi: &Explanation,
) -> Result<f64> {
    mu_aggr_predicate(db, u, question, &phi.conjunction().to_predicate())
}

/// `μ_aggr` for an arbitrary boolean predicate φ, evaluated over
/// `σ_φ(U(D))`. For conjunctive φ this equals `Q(D_φ)` exactly (see the
/// module docs); for rich predicates (ranges, disjunctions — Section
/// 6(ii)) it is the natural sub-population reading of aggravation.
pub fn mu_aggr_predicate(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    phi: &Predicate,
) -> Result<f64> {
    let mut vals = Vec::with_capacity(question.query.arity());
    for q in &question.query.aggregates {
        let sel = Predicate::and([phi.clone(), q.selection.clone()]);
        vals.push(evaluate(db, u, &sel, &q.func)?);
    }
    Ok(question.direction.aggr_sign() * question.query.combine(&vals))
}

/// `μ_interv(φ)` by running program **P** and evaluating `Q(D − Δ^φ)`
/// directly. Returns the degree together with the intervention (callers
/// often want both).
pub fn mu_interv(
    engine: &InterventionEngine<'_>,
    question: &UserQuestion,
    phi: &Explanation,
) -> Result<(f64, Intervention)> {
    let iv = engine.compute(phi);
    let degree = mu_interv_of(engine.db(), question, &iv)?;
    Ok((degree, iv))
}

/// `μ_interv` for an already-computed intervention.
pub fn mu_interv_of(db: &Database, question: &UserQuestion, iv: &Intervention) -> Result<f64> {
    let residual = db.view_minus(&iv.delta);
    let q = question.query.eval_view(db, &residual)?;
    Ok(question.direction.interv_sign() * q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::{AggregateQuery, Direction, NumericalQuery};
    use exq_relstore::aggregate::AggFunc;
    use exq_relstore::{Atom, SchemaBuilder, ValueType as T};

    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db
    }

    /// `Q` = COUNT(DISTINCT pubid) of SIGMOD publications.
    fn sigmod_count(db: &Database) -> NumericalQuery {
        let venue = db.schema().attr("Publication", "venue").unwrap();
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        NumericalQuery::single(AggregateQuery {
            func: AggFunc::CountDistinct(pubid),
            selection: Predicate::eq(venue, "SIGMOD"),
        })
    }

    #[test]
    fn aggravation_of_author_explanation() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let question = UserQuestion::new(sigmod_count(&db), Direction::High);
        // φ = [Author.name = RR]: restricting to RR keeps P1 and P3, both
        // SIGMOD → Q(D_φ) = 2; sign is + for dir = high.
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "RR",
        )]);
        assert_eq!(mu_aggr(&db, &u, &question, &phi).unwrap(), 2.0);

        // φ = [Author.name = JG]: JG's pubs are P1 (SIGMOD) and P2 (VLDB).
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "JG",
        )]);
        assert_eq!(mu_aggr(&db, &u, &question, &phi).unwrap(), 1.0);
    }

    #[test]
    fn aggravation_sign_flips_with_direction() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "RR",
        )]);
        let high = UserQuestion::new(sigmod_count(&db), Direction::High);
        let low = UserQuestion::new(sigmod_count(&db), Direction::Low);
        assert_eq!(
            mu_aggr(&db, &u, &high, &phi).unwrap(),
            -mu_aggr(&db, &u, &low, &phi).unwrap()
        );
    }

    #[test]
    fn intervention_degree_on_running_example() {
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let question = UserQuestion::new(sigmod_count(&db), Direction::High);
        // φ = [name = RR]: deleting RR deletes his rows s2, s5, which
        // backward-cascade to P1 and P3 — both SIGMOD pubs vanish.
        // Q(D − Δ) = 0, μ = -0.
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "RR",
        )]);
        let (mu, iv) = mu_interv(&engine, &question, &phi).unwrap();
        assert_eq!(mu, 0.0);
        assert!(!iv.is_empty());

        // φ = [name = JG]: deleting JG kills P1 and P2; P3 (SIGMOD)
        // survives. Q(D − Δ) = 1, μ = -1 (dir = high).
        let phi = Explanation::new(vec![Atom::eq(
            db.schema().attr("Author", "name").unwrap(),
            "JG",
        )]);
        let (mu, _) = mu_interv(&engine, &question, &phi).unwrap();
        assert_eq!(mu, -1.0);
    }

    #[test]
    fn better_explanations_rank_higher_by_intervention() {
        // For (Q = #SIGMOD pubs, high), removing RR flattens Q more than
        // removing JG, so μ(RR) > μ(JG).
        let db = figure3_db();
        let engine = InterventionEngine::new(&db);
        let question = UserQuestion::new(sigmod_count(&db), Direction::High);
        let name = db.schema().attr("Author", "name").unwrap();
        let (mu_rr, _) = mu_interv(
            &engine,
            &question,
            &Explanation::new(vec![Atom::eq(name, "RR")]),
        )
        .unwrap();
        let (mu_jg, _) = mu_interv(
            &engine,
            &question,
            &Explanation::new(vec![Atom::eq(name, "JG")]),
        )
        .unwrap();
        assert!(mu_rr > mu_jg);
    }

    #[test]
    fn trivial_explanation_aggravates_to_original_value() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let question = UserQuestion::new(sigmod_count(&db), Direction::High);
        let q_d = question.query.eval(&db).unwrap();
        let mu = mu_aggr(&db, &u, &question, &Explanation::trivial()).unwrap();
        assert_eq!(mu, q_d);
    }
}
