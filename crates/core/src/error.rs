//! Error type for the explanation engine.

use std::fmt;

/// Errors raised by the explanation pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An error from the relational substrate.
    Store(exq_relstore::Error),
    /// Algorithm 1 was requested for a numerical query that fails both
    /// sufficient intervention-additivity conditions (Section 4.1). Use the
    /// naive engine, or the back-and-forth elimination transform.
    NotInterventionAdditive {
        /// Indices of the failing aggregate sub-queries.
        failing: Vec<usize>,
    },
    /// The back-and-forth elimination transform's structural preconditions
    /// were not met.
    TransformPrecondition(String),
}

impl Error {
    /// Stable diagnostic code, extending [`exq_relstore::Error::code`]'s
    /// catalogue: substrate errors delegate, engine-level errors use the
    /// `E2xx` range.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Store(e) => e.code(),
            Error::NotInterventionAdditive { .. } => "E201",
            Error::TransformPrecondition(_) => "E202",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Store(e) => write!(f, "{e}"),
            Error::NotInterventionAdditive { failing } => write!(
                f,
                "numerical query is not intervention-additive (aggregates {failing:?} fail both \
                 sufficient conditions); use the naive engine or the copy transform"
            ),
            Error::TransformPrecondition(msg) => {
                write!(f, "back-and-forth elimination precondition failed: {msg}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<exq_relstore::Error> for Error {
    fn from(e: exq_relstore::Error) -> Error {
        Error::Store(e)
    }
}

/// Result alias for the explanation engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let store: Error = exq_relstore::Error::UnknownRelation("X".to_string()).into();
        assert!(store.to_string().contains("unknown relation"));
        let add = Error::NotInterventionAdditive {
            failing: vec![1, 3],
        };
        assert!(add.to_string().contains("[1, 3]"));
        let tp = Error::TransformPrecondition("no".into());
        assert!(tp.to_string().contains("no"));
        use std::error::Error as _;
        assert!(store.source().is_some());
        assert!(add.source().is_none());
    }
}
