//! High-level façade: ask a question, get ranked explanations.
//!
//! [`Explainer`] wires the whole pipeline together — universal relation,
//! additivity check, Algorithm 1 or the exact naive fallback, support
//! pruning, minimal top-K — behind a builder API. It is the entry point a
//! downstream application uses; the lower-level modules stay available
//! for research-grade control.
//!
//! ```
//! use exq_core::explainer::Explainer;
//! use exq_core::prelude::*;
//! use exq_relstore::{Database, Predicate, SchemaBuilder, ValueType};
//!
//! let schema = SchemaBuilder::new()
//!     .relation("R", &[("id", ValueType::Int), ("g", ValueType::Str), ("ok", ValueType::Str)], &["id"])
//!     .build()?;
//! let mut db = Database::new(schema);
//! for (i, (g, ok)) in [("a", "y"), ("a", "y"), ("a", "n"), ("b", "n")].iter().enumerate() {
//!     db.insert("R", vec![(i as i64).into(), (*g).into(), (*ok).into()])?;
//! }
//! let ok = db.schema().attr("R", "ok")?;
//! let question = UserQuestion::new(
//!     NumericalQuery::ratio(
//!         AggregateQuery::count_star(Predicate::eq(ok, "y")),
//!         AggregateQuery::count_star(Predicate::eq(ok, "n")),
//!     ).with_smoothing(1e-4),
//!     Direction::High,
//! );
//! let explainer = Explainer::new(&db, question).attr_names(&["R.g"])?;
//! let top = explainer.top(DegreeKind::Intervention, 3)?;
//! assert_eq!(top[0].explanation.display(&db).to_string(), "[R.g = a]");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cube_algo::{self, CubeAlgoConfig};
use crate::degree;
use crate::error::Result;
use crate::explanation::Explanation;
use crate::hybrid;
use crate::intervention::{Intervention, InterventionEngine};
use crate::naive;
use crate::question::UserQuestion;
use crate::table_m::ExplanationTable;
use crate::topk::{self, DegreeKind, MinimalityPolarity, Ranked, TopKStrategy};
use exq_relstore::{AttrRef, Database, ExecConfig, Universal};
use std::cell::OnceCell;
use std::sync::Arc;

/// Which engine produced an explanation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Algorithm 1 (the query passed the additivity check, or was forced).
    Cube,
    /// Exact per-candidate evaluation (query not intervention-additive).
    Naive,
}

/// Full degree report for one explanation (the drill-down view).
#[derive(Debug, Clone)]
pub struct DegreeReport {
    /// Exact `μ_interv` (Definition 2.7).
    pub mu_interv: f64,
    /// `μ_aggr` (Definition 2.4).
    pub mu_aggr: f64,
    /// The hybrid degree (Section 6(iii)).
    pub mu_hybrid: f64,
    /// The computed intervention `Δ^φ`.
    pub intervention: Intervention,
}

/// The configured explanation pipeline.
#[derive(Debug)]
pub struct Explainer<'a> {
    db: &'a Database,
    question: UserQuestion,
    // Computed lazily so the executor choice (a builder call) is in
    // effect by the time the join runs. `Arc` so a pre-built universal
    // (e.g. from [`crate::prepared::PreparedDb`]) can be shared across
    // many explainers without copying tuple data.
    universal: OnceCell<Arc<Universal>>,
    dims: Vec<AttrRef>,
    cube_config: CubeAlgoConfig,
    min_support: Option<f64>,
    topk_strategy: TopKStrategy,
    polarity: MinimalityPolarity,
    force_naive: bool,
    exec: ExecConfig,
    // Materialized once per configuration; the builder methods consume
    // `self`, so a stale cache cannot be observed.
    table_cache: OnceCell<(ExplanationTable, EngineChoice)>,
}

impl<'a> Explainer<'a> {
    /// Create a pipeline for one user question. The universal relation is
    /// computed on first use and reused by every subsequent call.
    ///
    /// The library default executor is sequential; opt in to parallelism
    /// with [`Explainer::threads`] or [`Explainer::exec`]. Every parallel
    /// path is bit-identical to the sequential one.
    pub fn new(db: &'a Database, question: UserQuestion) -> Explainer<'a> {
        Explainer {
            db,
            question,
            universal: OnceCell::new(),
            dims: Vec::new(),
            cube_config: CubeAlgoConfig::checked(),
            min_support: None,
            topk_strategy: TopKStrategy::MinimalSelfJoin,
            polarity: MinimalityPolarity::PreferGeneral,
            force_naive: false,
            exec: ExecConfig::sequential(),
            table_cache: OnceCell::new(),
        }
    }

    /// Run the pipeline on `n` OS threads (clamped to at least one).
    pub fn threads(self, n: usize) -> Explainer<'a> {
        self.exec(ExecConfig::with_threads(n))
    }

    /// Run the pipeline on an explicit executor.
    pub fn exec(mut self, exec: ExecConfig) -> Explainer<'a> {
        self.exec = exec;
        self
    }

    /// Record pipeline counters and spans into `sink` (keeps the current
    /// thread count).
    pub fn metrics(mut self, sink: exq_obs::MetricsSink) -> Explainer<'a> {
        self.exec = self.exec.with_metrics(sink);
        self
    }

    /// Seed the pipeline with a pre-computed universal relation instead
    /// of joining from scratch on first use. The caller must have built
    /// `u` over (a semijoin-reduced view of) the same database — see
    /// [`crate::prepared::PreparedDb`], which guarantees it. Repeated
    /// questions on one database then share the expensive join.
    pub fn with_universal(self, u: Arc<Universal>) -> Explainer<'a> {
        // A fresh builder's cell is always empty; `set` only fails if the
        // caller already seeded one, in which case the first seed wins.
        let _ = self.universal.set(u);
        self
    }

    fn universal(&self) -> &Universal {
        self.universal
            .get_or_init(|| {
                self.exec.metrics().time("explain.universal", || {
                    Arc::new(Universal::compute_with(
                        self.db,
                        &self.db.full_view(),
                        &self.exec,
                    ))
                })
            })
            .as_ref()
    }

    /// Set the explanation attributes `A'`.
    pub fn attrs(mut self, dims: impl IntoIterator<Item = AttrRef>) -> Explainer<'a> {
        self.dims = dims.into_iter().collect();
        self.table_cache = OnceCell::new();
        self
    }

    /// Set the explanation attributes by `"Relation.attribute"` paths.
    pub fn attr_names(mut self, names: &[&str]) -> Result<Explainer<'a>> {
        self.dims = names
            .iter()
            .map(|n| self.db.schema().attr_path(n))
            .collect::<exq_relstore::Result<_>>()?;
        self.table_cache = OnceCell::new();
        Ok(self)
    }

    /// Prune candidates whose support (max `v_j`) is below `threshold`
    /// (the Section 5.1.1 setting).
    pub fn min_support(mut self, threshold: f64) -> Explainer<'a> {
        self.min_support = Some(threshold);
        self.table_cache = OnceCell::new();
        self
    }

    /// Choose the top-K strategy (default: minimal self-join).
    pub fn topk_strategy(mut self, strategy: TopKStrategy) -> Explainer<'a> {
        self.topk_strategy = strategy;
        self
    }

    /// Choose the minimality polarity (default: prefer general).
    pub fn polarity(mut self, polarity: MinimalityPolarity) -> Explainer<'a> {
        self.polarity = polarity;
        self
    }

    /// Always use the exact naive engine, even for additive queries.
    pub fn force_naive(mut self) -> Explainer<'a> {
        self.force_naive = true;
        self.table_cache = OnceCell::new();
        self
    }

    /// The database.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// The user question.
    pub fn question(&self) -> &UserQuestion {
        &self.question
    }

    /// `Q(D)` — the question's value on the unmodified database,
    /// evaluated over the (cached or seeded) universal relation. Equal to
    /// `self.question().query.eval(db)` bit-for-bit, without the extra
    /// join when the universal is already built.
    pub fn q_d(&self) -> Result<f64> {
        Ok(self
            .question
            .query
            .eval_universal(self.db, self.universal())?)
    }

    /// Materialize the explanation table `M`, choosing Algorithm 1 when
    /// the query is intervention-additive and the exact naive engine
    /// otherwise. Cached: repeated calls (e.g. `top` for several degrees)
    /// reuse the first materialization.
    pub fn table(&self) -> Result<(ExplanationTable, EngineChoice)> {
        if let Some(cached) = self.table_cache.get() {
            return Ok(cached.clone());
        }
        let computed = self.compute_table()?;
        Ok(self.table_cache.get_or_init(|| computed).clone())
    }

    fn compute_table(&self) -> Result<(ExplanationTable, EngineChoice)> {
        let _span = self.exec.metrics().span("explain.table");
        let u = self.universal();
        let additive = crate::additivity::query_is_additive(self.db, u, &self.question.query);
        let (mut table, choice) = if additive && !self.force_naive {
            let t = cube_algo::explanation_table(
                self.db,
                u,
                &self.question,
                &self.dims,
                self.cube_config.clone().with_exec(self.exec.clone()),
            )?;
            (t, EngineChoice::Cube)
        } else {
            // The engine stays sequential: the naive table parallelizes
            // across candidates, and each candidate owns its fixpoint run.
            // It still carries the metrics sink, so fixpoint counters from
            // worker threads land in the shared registry (integer adds
            // commute — totals stay deterministic).
            let engine = InterventionEngine::with_universal(self.db, u.clone())
                .with_exec(ExecConfig::sequential().with_metrics(self.exec.metrics().clone()));
            let t = naive::explanation_table_naive_with(
                self.db,
                &engine,
                &self.question,
                &self.dims,
                &self.exec,
            )?;
            (t, EngineChoice::Naive)
        };
        if let Some(threshold) = self.min_support {
            table.retain_min_support(threshold);
        }
        Ok((table, choice))
    }

    /// Top-K ranked explanations by the chosen degree.
    pub fn top(&self, kind: DegreeKind, k: usize) -> Result<Vec<Ranked>> {
        let (table, _) = self.table()?;
        Ok(topk::top_k(
            &table,
            kind,
            k,
            self.topk_strategy,
            self.polarity,
        ))
    }

    /// Rank *rich* candidates (ranges, disjunctions — Section 6(ii))
    /// exactly, alongside the cube-based equality pipeline. Rich
    /// candidates never go through the cube: each is evaluated by program
    /// **P** directly, so this is linear in the candidate count.
    pub fn rich_top(
        &self,
        candidates: Vec<crate::rich::RichExplanation>,
        k: usize,
    ) -> Result<Vec<crate::rich::RankedRich>> {
        let engine = InterventionEngine::with_universal(self.db, self.universal().clone())
            .with_exec(self.exec.clone());
        let mut ranked = crate::rich::evaluate_candidates(&engine, &self.question, candidates)?;
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Convenience: rank every contiguous range of `attr` (up to
    /// `max_span` distinct values wide) as a rich explanation.
    pub fn top_ranges(
        &self,
        attr: AttrRef,
        max_span: usize,
        k: usize,
    ) -> Result<Vec<crate::rich::RankedRich>> {
        let candidates = crate::rich::range_candidates(self.db, self.universal(), attr, max_span);
        self.rich_top(candidates, k)
    }

    /// Exact drill-down for one explanation: all three degrees plus the
    /// intervention itself.
    pub fn explain(&self, phi: &Explanation) -> Result<DegreeReport> {
        let u = self.universal();
        let engine =
            InterventionEngine::with_universal(self.db, u.clone()).with_exec(self.exec.clone());
        let (mu_interv, intervention) = degree::mu_interv(&engine, &self.question, phi)?;
        let mu_aggr = degree::mu_aggr(self.db, u, &self.question, phi)?;
        let mu_hybrid = hybrid::mu_hybrid(self.db, u, &self.question, phi)?;
        Ok(DegreeReport {
            mu_interv,
            mu_aggr,
            mu_hybrid,
            intervention,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use exq_relstore::aggregate::AggFunc;
    use exq_relstore::{Atom, Predicate, SchemaBuilder, ValueType as T};

    fn flat_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("ok", T::Str)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, ok)) in [
            ("a", "y"),
            ("a", "y"),
            ("a", "n"),
            ("b", "n"),
            ("b", "n"),
            ("c", "y"),
        ]
        .iter()
        .enumerate()
        {
            db.insert("R", vec![(i as i64).into(), (*g).into(), (*ok).into()])
                .unwrap();
        }
        db
    }

    fn ratio_question(db: &Database) -> UserQuestion {
        let ok = db.schema().attr("R", "ok").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    #[test]
    fn picks_cube_for_additive_queries() {
        let db = flat_db();
        let e = Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let (table, choice) = e.table().unwrap();
        assert_eq!(choice, EngineChoice::Cube);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn falls_back_to_naive_for_non_additive() {
        let db = flat_db();
        let id = db.schema().attr("R", "id").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: AggFunc::Sum(id),
                selection: Predicate::True,
            }),
            Direction::Low,
        );
        let e = Explainer::new(&db, q).attr_names(&["R.g"]).unwrap();
        let (_, choice) = e.table().unwrap();
        assert_eq!(choice, EngineChoice::Naive);
    }

    #[test]
    fn force_naive_overrides() {
        let db = flat_db();
        let e = Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.g"])
            .unwrap()
            .force_naive();
        let (_, choice) = e.table().unwrap();
        assert_eq!(choice, EngineChoice::Naive);
    }

    #[test]
    fn naive_and_cube_paths_agree_through_facade() {
        let db = flat_db();
        let base = || {
            Explainer::new(&db, ratio_question(&db))
                .attr_names(&["R.g"])
                .unwrap()
        };
        let (cube_t, _) = base().table().unwrap();
        let (naive_t, _) = base().force_naive().table().unwrap();
        assert_eq!(cube_t.len(), naive_t.len());
        for (a, b) in cube_t.rows.iter().zip(&naive_t.rows) {
            assert_eq!(a.coord, b.coord);
            assert!((a.mu_interv - b.mu_interv).abs() < 1e-9);
        }
    }

    #[test]
    fn min_support_prunes() {
        let db = flat_db();
        let e = Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.g"])
            .unwrap()
            .min_support(2.0);
        let (table, _) = e.table().unwrap();
        // g=c has one y and zero n: max v_j = 1 < 2 → pruned.
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn top_and_explain() {
        let db = flat_db();
        let e = Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let top = e.top(DegreeKind::Intervention, 2).unwrap();
        assert_eq!(top.len(), 2);
        // Best intervention for (high y/n): remove g=a (2y 1n) leaves
        // 1y/2n.
        assert_eq!(top[0].explanation.display(&db).to_string(), "[R.g = a]");

        let g = db.schema().attr("R", "g").unwrap();
        let report = e
            .explain(&Explanation::new(vec![Atom::eq(g, "a")]))
            .unwrap();
        assert_eq!(report.intervention.total_deleted(), 3);
        assert_eq!(report.mu_interv, report.mu_hybrid, "additive query");
        assert!(report.mu_aggr > 0.0);
    }

    #[test]
    fn rich_top_through_facade() {
        // Rows ordered by id: "bad" outcomes cluster at ids 2..4; the best
        // range intervention for (high y/n) covers the n-heavy ids.
        let db = flat_db();
        let e = Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let id = db.schema().attr("R", "id").unwrap();
        let ranked = e.top_ranges(id, 3, 4).unwrap();
        assert_eq!(ranked.len(), 4);
        // Sorted by μ_interv descending.
        for w in ranked.windows(2) {
            assert!(w[0].mu_interv >= w[1].mu_interv);
        }
        // For (Q = y/n, high), the strongest intervention removes the rows
        // that *sustain* the high ratio — the y-outcome rows (ids 0, 1, 5).
        let top = &ranked[0].explanation;
        match &top.parts[0] {
            crate::rich::RichPart::Range { lo, hi, .. } => {
                let (lo, hi) = (lo.as_int().unwrap(), hi.as_int().unwrap());
                assert!(
                    hi <= 1 || lo >= 5,
                    "top range [{lo},{hi}] should cover y rows only"
                );
            }
            other => panic!("expected a range, got {other:?}"),
        }
    }

    #[test]
    fn threads_builder_is_bit_identical_for_both_engines() {
        let db = flat_db();
        for force_naive in [false, true] {
            let base = || {
                let e = Explainer::new(&db, ratio_question(&db))
                    .attr_names(&["R.g"])
                    .unwrap();
                if force_naive {
                    e.force_naive()
                } else {
                    e
                }
            };
            let (sequential, _) = base().table().unwrap();
            for threads in [2, 7] {
                let (parallel, _) = base().threads(threads).table().unwrap();
                assert_eq!(
                    sequential, parallel,
                    "threads = {threads}, force_naive = {force_naive}"
                );
            }
        }
    }

    #[test]
    fn bad_attr_name_errors() {
        let db = flat_db();
        assert!(Explainer::new(&db, ratio_question(&db))
            .attr_names(&["R.zzz"])
            .is_err());
        assert!(Explainer::new(&db, ratio_question(&db))
            .attr_names(&["nodot"])
            .is_err());
    }
}
