//! Human-readable explanation reports.
//!
//! Bundles everything an analyst wants from one question — the query and
//! its value, the additivity analysis and engine choice, the rankings by
//! every degree, their agreement, and an exact drill-down of the best
//! explanation — into one plain-text document. Used by the `exq report`
//! CLI command and directly embeddable in notebooks/logs.

use crate::error::Result;
use crate::explainer::{EngineChoice, Explainer};
use crate::topk::{rank_correlation, top_k, DegreeKind, MinimalityPolarity, TopKStrategy};
use exq_relstore::ExecConfig;
use std::fmt::Write;

/// Report options.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// How many explanations per ranking.
    pub top_k: usize,
    /// Drill into the best intervention explanation (runs program P once
    /// more, exactly).
    pub drill_best: bool,
    /// The executor the pipeline ran on — recorded in the report header so
    /// a saved report states its own provenance. (Thread count never
    /// changes the numbers; every parallel path is bit-identical.)
    pub exec: ExecConfig,
}

impl Default for ReportConfig {
    fn default() -> ReportConfig {
        ReportConfig {
            top_k: 5,
            drill_best: true,
            exec: ExecConfig::sequential(),
        }
    }
}

/// Generate the report.
pub fn generate(explainer: &Explainer<'_>, config: &ReportConfig) -> Result<String> {
    let db = explainer.db();
    let question = explainer.question();
    let mut out = String::new();

    // -- The question.
    let names: Vec<String> = (1..=question.query.arity())
        .map(|i| format!("q{i}"))
        .collect();
    let _ = writeln!(out, "# Explanation report");
    let _ = writeln!(out);
    let _ = writeln!(out, "direction: {:?}", question.direction);
    let _ = writeln!(out, "Q = {}", question.query.expr.render(&names));
    for (name, agg) in names.iter().zip(&question.query.aggregates) {
        let selection = exq_relstore::parse::predicate_to_text(db.schema(), &agg.selection);
        let _ = writeln!(out, "  {name} = {:?} where {selection}", agg.func);
    }
    if question.query.smoothing != 0.0 {
        let _ = writeln!(out, "smoothing: {}", question.query.smoothing);
    }
    let q_d = question.query.eval(db)?;
    let _ = writeln!(out, "Q(D) = {q_d}");
    let _ = writeln!(out);

    // -- The table and engine.
    let (table, engine) = explainer.table()?;
    let engine_text = match engine {
        EngineChoice::Cube => "Algorithm 1 (data cube; query is intervention-additive)",
        EngineChoice::Naive => "exact naive engine (per-candidate program P)",
    };
    let _ = writeln!(out, "candidates: {} (engine: {engine_text})", table.len());
    let _ = writeln!(
        out,
        "parallelism: {} thread{}",
        config.exec.threads(),
        if config.exec.threads() == 1 { "" } else { "s" }
    );
    let tau = rank_correlation(&table, DegreeKind::Intervention, DegreeKind::Aggravation);
    let _ = writeln!(
        out,
        "intervention/aggravation rank agreement (Kendall tau): {tau:.3}"
    );
    let _ = writeln!(out);

    // -- Rankings.
    for (title, kind) in [
        ("Top explanations by intervention", DegreeKind::Intervention),
        ("Top explanations by aggravation", DegreeKind::Aggravation),
    ] {
        let _ = writeln!(out, "## {title}");
        let ranked = top_k(
            &table,
            kind,
            config.top_k,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        );
        if ranked.is_empty() {
            let _ = writeln!(out, "(no candidates)");
        }
        for r in &ranked {
            let _ = writeln!(
                out,
                "{:>3}. {}  (mu = {:.6})",
                r.rank,
                r.explanation.display(db),
                r.degree
            );
        }
        let _ = writeln!(out);
    }

    // -- Drill-down.
    if config.drill_best {
        let best = top_k(
            &table,
            DegreeKind::Intervention,
            1,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        );
        if let Some(best) = best.first() {
            let report = explainer.explain(&best.explanation)?;
            let _ = writeln!(out, "## Drill-down: {}", best.explanation.display(db));
            let _ = writeln!(out, "mu_interv = {}", report.mu_interv);
            let _ = writeln!(out, "mu_aggr   = {}", report.mu_aggr);
            let _ = writeln!(out, "mu_hybrid = {}", report.mu_hybrid);
            let _ = writeln!(
                out,
                "intervention: {} tuples in {} iterations",
                report.intervention.total_deleted(),
                report.intervention.iterations
            );
            for (rel, delta) in report.intervention.delta.iter().enumerate() {
                if !delta.is_empty() {
                    let _ = writeln!(
                        out,
                        "  - {}: {} of {} tuples deleted",
                        db.schema().relation(rel).name,
                        delta.count(),
                        db.relation_len(rel)
                    );
                }
            }
        }
    }

    // -- Metrics. Counters and value histograms only: both are
    // deterministic across thread counts, so a saved report stays
    // byte-stable (wall-clock spans and latency histograms go to
    // `--metrics`/`--trace` instead).
    let sink = config.exec.metrics();
    if sink.is_enabled() {
        let snapshot = sink.snapshot();
        let _ = writeln!(out, "## Metrics");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in &snapshot.histograms {
            if h.kind == exq_obs::HistKind::Values {
                let _ = writeln!(out, "{name} = count {}, sum {}", h.count, h.sum);
            }
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use exq_relstore::{Database, Predicate, SchemaBuilder, ValueType as T};

    fn setup() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("ok", T::Str)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, ok)) in [("a", "y"), ("a", "y"), ("a", "n"), ("b", "n"), ("b", "n")]
            .iter()
            .enumerate()
        {
            db.insert("R", vec![(i as i64).into(), (*g).into(), (*ok).into()])
                .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let ok = db.schema().attr("R", "ok").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    #[test]
    fn report_contains_all_sections() {
        let db = setup();
        let explainer = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let text = generate(&explainer, &ReportConfig::default()).unwrap();
        assert!(text.contains("Q = (q1 / q2)"), "{text}");
        assert!(text.contains("where R.ok = 'y'"), "{text}");
        assert!(text.contains("Algorithm 1"), "{text}");
        assert!(text.contains("Top explanations by intervention"), "{text}");
        assert!(text.contains("Top explanations by aggravation"), "{text}");
        assert!(text.contains("Drill-down: [R.g = a]"), "{text}");
        assert!(text.contains("Kendall tau"), "{text}");
        assert!(text.contains("mu_hybrid"), "{text}");
        assert!(text.contains("parallelism: 1 thread\n"), "{text}");
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let db = setup();
        let base = generate(
            &Explainer::new(&db, question(&db))
                .attr_names(&["R.g"])
                .unwrap(),
            &ReportConfig::default(),
        )
        .unwrap();
        for threads in [2, 7] {
            let exec = exq_relstore::ExecConfig::with_threads(threads);
            let explainer = Explainer::new(&db, question(&db))
                .attr_names(&["R.g"])
                .unwrap()
                .exec(exec.clone());
            let text = generate(
                &explainer,
                &ReportConfig {
                    exec,
                    ..ReportConfig::default()
                },
            )
            .unwrap();
            assert!(
                text.contains(&format!("parallelism: {threads} threads")),
                "{text}"
            );
            // Everything except the parallelism line is byte-identical.
            let strip = |t: &str| {
                t.lines()
                    .filter(|l| !l.starts_with("parallelism:"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&base), strip(&text), "threads = {threads}");
        }
    }

    #[test]
    fn metrics_section_is_identical_at_any_thread_count() {
        let db = setup();
        let section = |threads: usize| -> String {
            let sink = exq_obs::MetricsSink::recording();
            let exec = exq_relstore::ExecConfig::with_threads(threads).with_metrics(sink);
            let explainer = Explainer::new(&db, question(&db))
                .attr_names(&["R.g"])
                .unwrap()
                .exec(exec.clone());
            let text = generate(
                &explainer,
                &ReportConfig {
                    exec,
                    ..ReportConfig::default()
                },
            )
            .unwrap();
            let start = text.find("## Metrics").expect("metrics section present");
            text[start..].to_string()
        };
        let base = section(1);
        assert!(base.contains("cube.cells ="), "{base}");
        assert!(base.contains("engine.candidates_evaluated ="), "{base}");
        assert!(base.contains("fixpoint.runs ="), "{base}");
        for threads in [2, 7] {
            assert_eq!(base, section(threads), "threads = {threads}");
        }
    }

    #[test]
    fn report_without_sink_has_no_metrics_section() {
        let db = setup();
        let explainer = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let text = generate(&explainer, &ReportConfig::default()).unwrap();
        assert!(!text.contains("## Metrics"), "{text}");
    }

    #[test]
    fn drill_can_be_disabled() {
        let db = setup();
        let explainer = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let text = generate(
            &explainer,
            &ReportConfig {
                top_k: 2,
                drill_best: false,
                ..ReportConfig::default()
            },
        )
        .unwrap();
        assert!(!text.contains("Drill-down"));
    }

    #[test]
    fn empty_candidate_set_is_reported() {
        let db = setup();
        // Dimensions pruned to nothing by an impossible support bound.
        let explainer = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap()
            .min_support(1e12);
        let text = generate(&explainer, &ReportConfig::default()).unwrap();
        assert!(text.contains("(no candidates)"), "{text}");
    }
}
