//! Algorithm 1: computing all degrees with data cubes (Section 4.2).
//!
//! For an intervention-additive numerical query `Q = E(q_1, …, q_m)`:
//!
//! 1. compute `u_j = q_j(D)` for every sub-query;
//! 2. compute one data cube `C_j` per sub-query over the explanation
//!    attributes `A'`, so each cube row holds `v_j(φ) = q_j(D_φ)`;
//! 3. full-outer-join the cubes into the table `M` (missing explanations
//!    count as zero) — implemented with the paper's dummy-value
//!    optimization so the join is a plain hash equi-join;
//! 4. per row, `μ_interv(φ) = sign · E(u_1 − v_1, …, u_m − v_m)` and
//!    `μ_aggr(φ) = sign · E(v_1, …, v_m)`.

use crate::additivity::check_query;
use crate::error::{Error, Result};
use crate::question::UserQuestion;
use crate::table_m::{self, ExplanationTable};
use exq_relstore::cube::{self, Coord, CubeStrategy};
use exq_relstore::{AttrRef, Database, ExecConfig, MetricsSink, Universal, Value};
use std::collections::HashMap;

/// Configuration for Algorithm 1.
#[derive(Debug, Clone)]
pub struct CubeAlgoConfig {
    /// Which cube implementation to use.
    pub strategy: CubeStrategy,
    /// When `true` (the safe default is `true`), refuse queries failing
    /// both additivity conditions. Setting it to `false` computes `M`
    /// anyway — the μ_interv column is then an *approximation* (the
    /// μ_aggr column is always exact).
    pub enforce_additivity: bool,
    /// Force the row-oriented `Value` cube path even when every
    /// explanation attribute is dictionary-coded. The default (`false`)
    /// runs the columnar coded path when available; both produce
    /// bit-identical tables, and the differential tests pin that by
    /// setting this flag on one side.
    pub reference_rows: bool,
    /// The executor the cubes and the degree derivation run on. Output is
    /// bit-identical at any thread count.
    pub exec: ExecConfig,
}

impl Default for CubeAlgoConfig {
    fn default() -> CubeAlgoConfig {
        CubeAlgoConfig::unchecked()
    }
}

impl CubeAlgoConfig {
    /// The checked default configuration.
    pub fn checked() -> CubeAlgoConfig {
        CubeAlgoConfig {
            strategy: CubeStrategy::default(),
            enforce_additivity: true,
            reference_rows: false,
            exec: ExecConfig::sequential(),
        }
    }

    /// An unchecked configuration (μ_interv approximate if not additive).
    pub fn unchecked() -> CubeAlgoConfig {
        CubeAlgoConfig {
            strategy: CubeStrategy::default(),
            enforce_additivity: false,
            reference_rows: false,
            exec: ExecConfig::sequential(),
        }
    }

    /// Replace the executor.
    pub fn with_exec(mut self, exec: ExecConfig) -> CubeAlgoConfig {
        self.exec = exec;
        self
    }
}

/// Run Algorithm 1, producing the explanation table `M`.
///
/// `u` must be the universal relation of the full database.
pub fn explanation_table(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    dims: &[AttrRef],
    config: CubeAlgoConfig,
) -> Result<ExplanationTable> {
    let sink = config.exec.metrics().clone();
    let _span = sink.span("cube_algo");
    sink.incr("cube_algo.runs");
    if config.enforce_additivity {
        let checks = sink.time("cube_algo.additivity_check", || {
            check_query(db, u, &question.query)
        });
        let failing: Vec<usize> = checks
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.is_additive())
            .map(|(i, _)| i)
            .collect();
        if !failing.is_empty() {
            return Err(Error::NotInterventionAdditive { failing });
        }
    }

    // Line 1: totals u_j.
    let totals = sink.time("cube_algo.totals", || {
        question.query.aggregate_values(db, u)
    })?;

    // Line 2: per-sub-query cubes, joined (line 3) in whichever space the
    // store supports: dictionary codes when every explanation attribute is
    // coded (the columnar fast path), cloned `Value`s otherwise.
    let m = question.query.arity();
    sink.add("cube_algo.sub_queries", m as u64);
    let cells: Vec<(Coord, Vec<f64>)> = if config.reference_rows {
        joined_value_cells(db, u, question, dims, &config, &sink, m)?
    } else {
        match joined_coded_cells(db, u, question, dims, &config, &sink, m)? {
            Some(cells) => cells,
            None => joined_value_cells(db, u, question, dims, &config, &sink, m)?,
        }
    };
    sink.add("cube_algo.joined_cells", cells.len() as u64);

    // Lines 4-5: degree columns, derived per cell in parallel blocks (the
    // helper re-sorts by coordinate, so the HashMap drain order is moot).
    let rows = sink.time("cube_algo.derive", || {
        table_m::derive_rows(question, &totals, &cells, &config.exec)
    });
    // Same name the naive engine records, so the differential test can
    // assert both engines evaluated the same candidate set.
    sink.add("engine.candidates_evaluated", rows.len() as u64);

    Ok(ExplanationTable {
        dims: dims.to_vec(),
        totals,
        rows,
    })
}

/// Lines 2–3 in `Value` space: one row-oriented cube per sub-query,
/// hash-joined on dummy-substituted coordinates. The reference path.
fn joined_value_cells(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    dims: &[AttrRef],
    config: &CubeAlgoConfig,
    sink: &MetricsSink,
    m: usize,
) -> Result<Vec<(Coord, Vec<f64>)>> {
    let mut joined: HashMap<Coord, Vec<f64>> = HashMap::new();
    for (j, q) in question.query.aggregates.iter().enumerate() {
        let c = sink.time("cube_algo.cubes", || {
            cube::compute_rows_with(
                db,
                u,
                &q.selection,
                dims,
                &q.func,
                config.strategy,
                &config.exec,
            )
        })?;
        // Line 3: full outer join via the dummy-value trick — null
        // coordinates are replaced by the reserved dummy so the hash join
        // key is a plain value vector (Section 4.2's optimization).
        let _join_span = sink.span("cube_algo.join");
        for (coord, value) in c.cells {
            let key: Coord = coord
                .iter()
                .map(|v| {
                    if v.is_null() {
                        Value::dummy()
                    } else {
                        v.clone()
                    }
                })
                .collect();
            joined.entry(key).or_insert_with(|| vec![0.0; m])[j] = value;
        }
    }
    // exq-lint: allow(L001): derive_rows re-sorts by coordinate, so the drain order is unobservable
    Ok(joined.into_iter().collect())
}

/// Lines 2–3 in code space: one coded cube per sub-query, hash-joined on
/// `u32` coordinate tuples, decoded once at the end (don't-cares become
/// the reserved dummy, exactly like the `Value` join). Returns `None` when
/// some explanation attribute's column is not dictionary-coded — coded-ness
/// is a property of the store alone, so the first sub-query's answer holds
/// for all of them.
#[allow(clippy::type_complexity)] // the Option layer is the coded-ness signal, the Vec the join
fn joined_coded_cells(
    db: &Database,
    u: &Universal,
    question: &UserQuestion,
    dims: &[AttrRef],
    config: &CubeAlgoConfig,
    sink: &MetricsSink,
    m: usize,
) -> Result<Option<Vec<(Coord, Vec<f64>)>>> {
    let mut joined: HashMap<Box<[u32]>, Vec<f64>> = HashMap::new();
    let mut decoder: Option<cube::CodedCube> = None;
    for (j, q) in question.query.aggregates.iter().enumerate() {
        let c = sink.time("cube_algo.cubes", || {
            cube::compute_coded_with(
                db,
                u,
                &q.selection,
                dims,
                &q.func,
                config.strategy,
                &config.exec,
            )
        })?;
        let Some(mut c) = c else {
            debug_assert_eq!(j, 0, "coded-ness cannot change between sub-queries");
            return Ok(None);
        };
        let _join_span = sink.span("cube_algo.join");
        for (key, value) in std::mem::take(&mut c.cells) {
            joined.entry(key).or_insert_with(|| vec![0.0; m])[j] = value;
        }
        decoder = Some(c);
    }
    let Some(decoder) = decoder else {
        return Ok(None); // no sub-queries: let the reference path handle it
    };
    let dummy = Value::dummy();
    let mut cells = Vec::with_capacity(joined.len());
    // exq-lint: allow(L001): derive_rows re-sorts by coordinate, so the drain order is unobservable
    for (key, values) in joined {
        cells.push((decoder.decode_coord(&key, &dummy), values));
    }
    Ok(Some(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::{AggregateQuery, Direction, NumericalQuery};
    use exq_relstore::aggregate::AggFunc;
    use exq_relstore::{Predicate, SchemaBuilder, ValueType as T};

    /// Single-table instance: no back-and-forth keys, COUNT(*) additive.
    fn flat_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[
                    ("id", T::Int),
                    ("g", T::Str),
                    ("h", T::Str),
                    ("outcome", T::Str),
                ],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let rows = [
            ("a", "x", "good"),
            ("a", "x", "good"),
            ("a", "y", "good"),
            ("a", "y", "poor"),
            ("b", "x", "good"),
            ("b", "y", "poor"),
            ("b", "y", "poor"),
        ];
        for (i, (g, h, o)) in rows.iter().enumerate() {
            db.insert(
                "R",
                vec![(i as i64).into(), (*g).into(), (*h).into(), (*o).into()],
            )
            .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let outcome = db.schema().attr("R", "outcome").unwrap();
        // Q = #good / #poor, observed "high".
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(outcome, "good")),
                AggregateQuery::count_star(Predicate::eq(outcome, "poor")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    fn dims(db: &Database) -> Vec<AttrRef> {
        vec![
            db.schema().attr("R", "g").unwrap(),
            db.schema().attr("R", "h").unwrap(),
        ]
    }

    #[test]
    fn table_shape_and_totals() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let t = explanation_table(
            &db,
            &u,
            &question(&db),
            &dims(&db),
            CubeAlgoConfig::checked(),
        )
        .unwrap();
        assert_eq!(t.totals, vec![4.0, 3.0]);
        // Coordinates: (a,x),(a,y),(b,x),(b,y) + 2 g-only + 2 h-only = 8,
        // trivial excluded.
        assert_eq!(t.len(), 8);
        assert!(t.find(&[Value::Null, Value::Null]).is_none());
    }

    #[test]
    fn values_column_is_q_of_d_phi() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let t = explanation_table(
            &db,
            &u,
            &question(&db),
            &dims(&db),
            CubeAlgoConfig::checked(),
        )
        .unwrap();
        let row = t.find(&[Value::str("a"), Value::Null]).unwrap();
        assert_eq!(row.values, vec![3.0, 1.0], "g=a has 3 good, 1 poor");
        let row = t.find(&[Value::str("b"), Value::str("y")]).unwrap();
        assert_eq!(row.values, vec![0.0, 2.0], "missing from the good-cube → 0");
    }

    #[test]
    fn degrees_match_direct_formulas() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let q = question(&db);
        let t = explanation_table(&db, &u, &q, &dims(&db), CubeAlgoConfig::checked()).unwrap();
        let row = t.find(&[Value::str("a"), Value::Null]).unwrap();
        // μ_interv = -( (4-3+ε) / (3-1+ε) ), μ_aggr = +( (3+ε)/(1+ε) ).
        let eps = 1e-4;
        assert!((row.mu_interv - (-(1.0 + eps) / (2.0 + eps))).abs() < 1e-12);
        assert!((row.mu_aggr - (3.0 + eps) / (1.0 + eps)).abs() < 1e-12);
    }

    #[test]
    fn cube_strategies_agree() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let q = question(&db);
        let a = explanation_table(
            &db,
            &u,
            &q,
            &dims(&db),
            CubeAlgoConfig {
                strategy: CubeStrategy::SubsetEnumeration,
                ..CubeAlgoConfig::checked()
            },
        )
        .unwrap();
        let b = explanation_table(
            &db,
            &u,
            &q,
            &dims(&db),
            CubeAlgoConfig {
                strategy: CubeStrategy::LatticeRollup,
                ..CubeAlgoConfig::checked()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_additive_query_rejected_when_enforcing() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let id = db.schema().attr("R", "id").unwrap();
        let q = UserQuestion::new(
            NumericalQuery::single(AggregateQuery {
                func: AggFunc::Sum(id),
                selection: Predicate::True,
            }),
            Direction::High,
        );
        let err =
            explanation_table(&db, &u, &q, &dims(&db), CubeAlgoConfig::checked()).unwrap_err();
        assert_eq!(err, Error::NotInterventionAdditive { failing: vec![0] });
        // Unchecked mode computes anyway.
        assert!(explanation_table(&db, &u, &q, &dims(&db), CubeAlgoConfig::unchecked()).is_ok());
    }

    #[test]
    fn direction_flips_interv_sign() {
        let db = flat_db();
        let u = Universal::compute(&db, &db.full_view());
        let mut q = question(&db);
        let t_high = explanation_table(&db, &u, &q, &dims(&db), CubeAlgoConfig::checked()).unwrap();
        q.direction = Direction::Low;
        let t_low = explanation_table(&db, &u, &q, &dims(&db), CubeAlgoConfig::checked()).unwrap();
        for (a, b) in t_high.rows.iter().zip(&t_low.rows) {
            assert_eq!(a.mu_interv, -b.mu_interv);
            assert_eq!(a.mu_aggr, -b.mu_aggr);
        }
    }
}
