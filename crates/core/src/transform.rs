//! Back-and-forth elimination by table copying (Section 4.1).
//!
//! In the presence of a back-and-forth foreign key, COUNT(*) is not
//! intervention-additive. The paper's workaround bounds the fan-out of the
//! key (e.g. "every paper has at most 3 authors") and rewrites the schema:
//! `c` copies of the referencing relation (`Authored_1 … Authored_c`) and
//! of its other referenced relation (`Author_1 … Author_c`), and the
//! referenced relation (`Publication'`) gains `c` foreign-key columns
//! `kad_1 … kad_c` pointing *at* the copies. Slots beyond a tuple's actual
//! fan-out hold a shared dummy row. All keys in the rewritten schema are
//! **standard**:
//!
//! * deleting `Authored_i[kad]` cascades to every `Publication'` row
//!   referencing it — the old *backward* cascade;
//! * deleting a `Publication'` row leaves its `Authored_i` rows dangling,
//!   and semijoin reduction removes them — the old *forward* cascade —
//!   provided each `Authored_i` row is referenced by exactly one
//!   publication, which holds by construction (`kad` is unique per
//!   (publication, slot)).
//!
//! After the rewrite every universal row corresponds to exactly one
//! `Publication'` tuple, so `COUNT(*)` equals the original
//! `COUNT(DISTINCT pk)` and is additive (no back-and-forth keys remain).
//!
//! Structural preconditions (the paper's DBLP shape): the back-and-forth
//! key is the only key into its target; the referencing relation has
//! exactly one other foreign key, which is standard and whose target has
//! no further keys. Predicates on the copied relations must be rewritten
//! as disjunctions over the copies ([`BfElimination::rewrite_eq`]).

use crate::error::{Error, Result};
use exq_relstore::{Atom, Database, FkKind, Predicate, SchemaBuilder, Value, ValueType};
use std::collections::HashMap;

/// The dummy key filling unused fan-out slots.
fn dummy_key() -> Value {
    Value::str("__exq_slot_dummy__")
}

/// Result of eliminating one back-and-forth foreign key.
#[derive(Debug)]
pub struct BfElimination {
    /// The rewritten database (all foreign keys standard).
    pub db: Database,
    /// Number of copies `c` (the maximum fan-out of the eliminated key).
    pub copies: usize,
    /// Names of the copied referencing relations (`Authored_1 …`).
    pub ref_copies: Vec<String>,
    /// Names of the copied side relations (`Author_1 …`).
    pub side_copies: Vec<String>,
    /// Name of the rewritten referenced relation (`Publication'`).
    pub target_name: String,
}

impl BfElimination {
    /// Rewrite an equality atom on an attribute of the copied side
    /// relation (e.g. `Author.dom = com`) into the disjunction over all
    /// copies the paper describes.
    pub fn rewrite_eq(&self, attr_name: &str, value: impl Into<Value>) -> Result<Predicate> {
        let v: Value = value.into();
        let mut parts = Vec::with_capacity(self.copies);
        for rel in &self.side_copies {
            let attr = self.db.schema().attr(rel, attr_name)?;
            parts.push(Predicate::Atom(Atom::eq(attr, v.clone())));
        }
        Ok(Predicate::Or(parts))
    }
}

/// Eliminate the back-and-forth foreign key at schema index `fk_idx`.
pub fn eliminate_back_and_forth(db: &Database, fk_idx: usize) -> Result<BfElimination> {
    let schema = db.schema();
    let fk = schema
        .foreign_keys()
        .get(fk_idx)
        .ok_or_else(|| Error::TransformPrecondition(format!("no foreign key {fk_idx}")))?;
    if fk.kind != FkKind::BackAndForth {
        return Err(Error::TransformPrecondition(format!(
            "foreign key {fk_idx} is standard"
        )));
    }
    let ref_rel = fk.from_rel; // Authored
    let target_rel = fk.to_rel; // Publication

    // The referencing relation's other foreign key (Authored.id → Author).
    let side_fks: Vec<_> = schema
        .foreign_keys()
        .iter()
        .enumerate()
        .filter(|(i, f)| *i != fk_idx && f.from_rel == ref_rel)
        .collect();
    let (_, side_fk) = match side_fks.as_slice() {
        [one] => *one,
        _ => {
            return Err(Error::TransformPrecondition(
                "referencing relation must have exactly one other foreign key".to_string(),
            ))
        }
    };
    if side_fk.kind != FkKind::Standard {
        return Err(Error::TransformPrecondition(
            "the side foreign key must be standard".to_string(),
        ));
    }
    let side_rel = side_fk.to_rel; // Author
    for (i, f) in schema.foreign_keys().iter().enumerate() {
        if i != fk_idx && (f.from_rel == side_rel || f.to_rel == side_rel && f.from_rel != ref_rel)
        {
            return Err(Error::TransformPrecondition(
                "the side relation must have no other foreign keys".to_string(),
            ));
        }
        if f.to_rel == target_rel && i != fk_idx || f.from_rel == target_rel {
            return Err(Error::TransformPrecondition(
                "the target relation must have no other foreign keys".to_string(),
            ));
        }
    }

    // Fan-out c: max referencing rows per target key.
    let mut fanout: HashMap<Vec<Value>, usize> = HashMap::new();
    let ref_table = db.relation(ref_rel);
    for row in 0..ref_table.len() {
        *fanout
            .entry(ref_table.project(row, &fk.from_cols))
            .or_insert(0) += 1;
    }
    // exq-lint: allow(L001): max() is order-independent
    let copies = fanout.values().copied().max().unwrap_or(1).max(1);

    // New schema.
    let side_schema = schema.relation(side_rel);
    let ref_schema = schema.relation(ref_rel);
    let target_schema = schema.relation(target_rel);
    let side_names: Vec<String> = (1..=copies)
        .map(|i| format!("{}_{i}", side_schema.name))
        .collect();
    let ref_names: Vec<String> = (1..=copies)
        .map(|i| format!("{}_{i}", ref_schema.name))
        .collect();
    let target_name = format!("{}_prime", target_schema.name);

    let mut b = SchemaBuilder::new();
    let side_cols: Vec<(&str, ValueType)> = side_schema
        .attributes
        .iter()
        .map(|a| (a.name.as_str(), a.ty))
        .collect();
    let side_pk: Vec<&str> = side_schema
        .primary_key
        .iter()
        .map(|&c| side_schema.attributes[c].name.as_str())
        .collect();
    let mut ref_cols: Vec<(&str, ValueType)> = vec![("kad", ValueType::Str)];
    ref_cols.extend(
        ref_schema
            .attributes
            .iter()
            .map(|a| (a.name.as_str(), a.ty)),
    );
    let mut target_cols: Vec<(String, ValueType)> = (1..=copies)
        .map(|i| (format!("kad_{i}"), ValueType::Str))
        .collect();
    target_cols.extend(
        target_schema
            .attributes
            .iter()
            .map(|a| (a.name.clone(), a.ty)),
    );
    let target_pk: Vec<&str> = target_schema
        .primary_key
        .iter()
        .map(|&c| target_schema.attributes[c].name.as_str())
        .collect();

    for i in 0..copies {
        b = b.relation(&side_names[i], &side_cols, &side_pk);
        b = b.relation(&ref_names[i], &ref_cols, &["kad"]);
    }
    {
        let cols: Vec<(&str, ValueType)> =
            target_cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        b = b.relation(&target_name, &cols, &target_pk);
    }
    let side_fk_cols: Vec<&str> = side_fk
        .from_cols
        .iter()
        .map(|&c| ref_schema.attributes[c].name.as_str())
        .collect();
    for i in 0..copies {
        b = b.standard_fk(&ref_names[i], &side_fk_cols, &side_names[i]);
        let kad_col = format!("kad_{}", i + 1);
        b = b.standard_fk(&target_name, &[kad_col.as_str()], &ref_names[i]);
    }
    let new_schema = b.build()?;
    let mut out = Database::new(new_schema);

    // Side copies: replicate every side row into each copy, plus a dummy.
    let side_table = db.relation(side_rel);
    let side_pk_cols = &side_schema.primary_key;
    let mut dummy_side = vec![Value::Null; side_schema.arity()];
    for &c in side_pk_cols {
        dummy_side[c] = dummy_key();
    }
    for name in &side_names {
        for row in 0..side_table.len() {
            out.insert(name, side_table.row(row).to_vec())?;
        }
        out.insert(name, dummy_side.clone())?;
    }

    // Referencing copies: assign each target key's rows to slots in order.
    // kad = "<target key>#<slot>"; dummy row per copy references the dummy
    // side row.
    let mut slot_of: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut kad_values: HashMap<Vec<Value>, Vec<Value>> = HashMap::new(); // target key → kad per slot
    for row in 0..ref_table.len() {
        let key = ref_table.project(row, &fk.from_cols);
        let slot = {
            let s = slot_of.entry(key.clone()).or_insert(0);
            let cur = *s;
            *s += 1;
            cur
        };
        let key_text: Vec<String> = key.iter().map(Value::to_string).collect();
        let kad = Value::str(format!("{}#{}", key_text.join("|"), slot + 1));
        kad_values
            .entry(key)
            .or_insert_with(|| vec![dummy_key(); copies])[slot] = kad.clone();
        let mut new_row = vec![kad];
        new_row.extend(ref_table.row(row).iter().cloned());
        out.insert(&ref_names[slot], new_row)?;
    }
    // Dummy referencing row per copy.
    for name in &ref_names {
        let mut dummy_row = vec![dummy_key()];
        for (c, attr) in ref_schema.attributes.iter().enumerate() {
            let in_side_fk = side_fk.from_cols.contains(&c);
            dummy_row.push(if in_side_fk { dummy_key() } else { Value::Null });
            let _ = attr;
        }
        out.insert(name, dummy_row)?;
    }

    // Target rows: kad_1..kad_c then the original attributes.
    let target_table = db.relation(target_rel);
    for row in 0..target_table.len() {
        let key = target_table.project(row, &target_schema.primary_key);
        // fk.to_cols is the target pk, so the referencing key equals it.
        let kads = kad_values
            .get(&key)
            .cloned()
            .unwrap_or_else(|| vec![dummy_key(); copies]);
        let mut new_row = kads;
        new_row.extend(target_table.row(row).iter().cloned());
        out.insert(&target_name, new_row)?;
    }

    out.validate().map_err(Error::Store)?;
    Ok(BfElimination {
        db: out,
        copies,
        ref_copies: ref_names,
        side_copies: side_names,
        target_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::aggregate::{evaluate, AggFunc};
    use exq_relstore::{Universal, ValueType as T};

    fn dblp_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("Author", &[("id", T::Str), ("dom", T::Str)], &["id"])
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, dom) in [("A1", "edu"), ("A2", "com"), ("A3", "com")] {
            db.insert("Author", vec![id.into(), dom.into()]).unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    #[test]
    fn transform_produces_standard_only_schema() {
        let db = dblp_db();
        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        assert!(!elim.db.schema().has_back_and_forth());
        assert_eq!(elim.copies, 2, "every paper has two authors");
        assert_eq!(elim.ref_copies.len(), 2);
        assert_eq!(elim.side_copies.len(), 2);
        elim.db.validate().unwrap();
    }

    #[test]
    fn one_universal_row_per_publication() {
        let db = dblp_db();
        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        let u = Universal::compute(&elim.db, &elim.db.full_view());
        assert_eq!(u.len(), 3, "exactly one row per distinct pubid");
    }

    #[test]
    fn count_star_on_transform_equals_count_distinct_on_original() {
        let db = dblp_db();
        let u0 = Universal::compute(&db, &db.full_view());
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        let venue = db.schema().attr("Publication", "venue").unwrap();
        let original = evaluate(
            &db,
            &u0,
            &Predicate::eq(venue, "SIGMOD"),
            &AggFunc::CountDistinct(pubid),
        )
        .unwrap();

        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        let u1 = Universal::compute(&elim.db, &elim.db.full_view());
        let venue1 = elim.db.schema().attr(&elim.target_name, "venue").unwrap();
        let transformed = evaluate(
            &elim.db,
            &u1,
            &Predicate::eq(venue1, "SIGMOD"),
            &AggFunc::CountStar,
        )
        .unwrap();
        assert_eq!(original, transformed);
    }

    #[test]
    fn author_predicate_becomes_disjunction() {
        let db = dblp_db();
        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        let p = elim.rewrite_eq("dom", "com").unwrap();
        // Count publications with at least one com author: P1, P2, P3.
        let u = Universal::compute(&elim.db, &elim.db.full_view());
        let n = evaluate(&elim.db, &u, &p, &AggFunc::CountStar).unwrap();
        assert_eq!(n, 3.0);
        // edu: only P1 and P2 (A1's papers).
        let p = elim.rewrite_eq("dom", "edu").unwrap();
        let n = evaluate(&elim.db, &u, &p, &AggFunc::CountStar).unwrap();
        assert_eq!(n, 2.0);
    }

    #[test]
    fn count_star_is_additive_after_transform() {
        let db = dblp_db();
        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        let u = Universal::compute(&elim.db, &elim.db.full_view());
        assert_eq!(
            crate::additivity::check_aggregate(&elim.db, &u, &AggFunc::CountStar),
            crate::additivity::Additivity::CountStarNoBackAndForth
        );
    }

    #[test]
    fn rejects_standard_fk() {
        let db = dblp_db();
        assert!(matches!(
            eliminate_back_and_forth(&db, 0),
            Err(Error::TransformPrecondition(_))
        ));
        assert!(matches!(
            eliminate_back_and_forth(&db, 9),
            Err(Error::TransformPrecondition(_))
        ));
    }

    #[test]
    fn uneven_fanout_uses_dummy_slots() {
        // P1 has two authors, P2 has one.
        let schema = SchemaBuilder::new()
            .relation("Author", &[("id", T::Str), ("dom", T::Str)], &["id"])
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation("Publication", &[("pubid", T::Str)], &["pubid"])
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, dom) in [("A1", "edu"), ("A2", "com")] {
            db.insert("Author", vec![id.into(), dom.into()]).unwrap();
        }
        for (id, pubid) in [("A1", "P1"), ("A2", "P1"), ("A1", "P2")] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        db.insert("Publication", vec!["P1".into()]).unwrap();
        db.insert("Publication", vec!["P2".into()]).unwrap();
        db.validate().unwrap();

        let elim = eliminate_back_and_forth(&db, 1).unwrap();
        assert_eq!(elim.copies, 2);
        let u = Universal::compute(&elim.db, &elim.db.full_view());
        assert_eq!(
            u.len(),
            2,
            "one universal row per publication, dummies fill slot 2 of P2"
        );
    }
}
