//! Intervention-additivity (Definition 4.2 and the sufficient conditions
//! of Section 4.1).
//!
//! An aggregate query `q` is *intervention-additive* when
//! `q(D − Δ^φ) = q(D) − q(D_φ)` for every explanation φ. Additivity is
//! what lets Algorithm 1 recover every `μ_interv(φ)` from a single data
//! cube instead of running program **P** per candidate.
//!
//! Two sufficient conditions are implemented, as in the paper:
//!
//! 1. **COUNT(\*) with no back-and-forth foreign keys** — by
//!    Corollary 3.6, `U(D − Δ^φ) = σ_{¬φ}(U)`, and counts subtract.
//! 2. **COUNT(DISTINCT R_i.pk) with a back-and-forth key
//!    `R_j.fk ↪ R_i.pk` whose referencing relation is *row-unique* in the
//!    universal relation** (every tuple of `R_j` occurs in exactly one
//!    universal row). Then a deleted `R_i` key loses *all* its universal
//!    rows and a surviving key keeps all of them, so distinct counts
//!    subtract (footnote 11 of the paper).
//!
//! Condition 2 additionally needs the sub-query's own selection to be
//! decided per counted key (the selection must not distinguish universal
//! rows of the same surviving key the explanation partially deletes) —
//! satisfied whenever, as in all of the paper's experiments, selection
//! atoms on relations other than `R_i`/`R_j` are implied by or independent
//! of the explanation atoms. The checker implements the paper's stated
//! conditions; the naive engine remains available as exact ground truth.

use crate::question::NumericalQuery;
use exq_relstore::aggregate::AggFunc;
use exq_relstore::{Database, FkKind, Universal};

/// Why (or whether) an aggregate is intervention-additive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Additivity {
    /// `COUNT(*)` and the schema has no back-and-forth foreign keys
    /// (Corollary 3.6).
    CountStarNoBackAndForth,
    /// `COUNT(DISTINCT R_i.pk)` with back-and-forth key index `fk` whose
    /// referencing relation is row-unique in `U(D)`.
    CountDistinctViaBackAndForth {
        /// Index of the qualifying foreign key in the schema.
        fk: usize,
    },
    /// Neither sufficient condition applies; Algorithm 1 would be unsound,
    /// use the naive engine (or the Section 4.1 copy transform).
    Unknown,
}

impl Additivity {
    /// Whether the cube pipeline may be used.
    pub fn is_additive(&self) -> bool {
        !matches!(self, Additivity::Unknown)
    }
}

/// Check one aggregate against the two sufficient conditions. `u` is the
/// universal relation of the full database (needed for the data-level
/// row-uniqueness test of condition 2).
pub fn check_aggregate(db: &Database, u: &Universal, func: &AggFunc) -> Additivity {
    match func {
        AggFunc::CountStar if !db.schema().has_back_and_forth() => {
            Additivity::CountStarNoBackAndForth
        }
        AggFunc::CountDistinct(attr) => {
            // The counted attribute must be the (single-column) primary key
            // of its relation.
            let pk = &db.schema().relation(attr.rel).primary_key;
            if pk.as_slice() != [attr.col] {
                return Additivity::Unknown;
            }
            for (fk_idx, fk) in db.schema().foreign_keys().iter().enumerate() {
                if fk.kind == FkKind::BackAndForth
                    && fk.to_rel == attr.rel
                    && referencing_rows_unique(db, u, fk.from_rel)
                {
                    return Additivity::CountDistinctViaBackAndForth { fk: fk_idx };
                }
            }
            Additivity::Unknown
        }
        _ => Additivity::Unknown,
    }
}

/// Check every aggregate of a numerical query; the query is additive iff
/// all sub-queries are (Definition 4.2).
pub fn check_query(db: &Database, u: &Universal, query: &NumericalQuery) -> Vec<Additivity> {
    query
        .aggregates
        .iter()
        .map(|q| check_aggregate(db, u, &q.func))
        .collect()
}

/// Whether a whole numerical query is intervention-additive.
pub fn query_is_additive(db: &Database, u: &Universal, query: &NumericalQuery) -> bool {
    check_query(db, u, query)
        .iter()
        .all(Additivity::is_additive)
}

/// Every row of `rel` occurs in exactly one universal tuple. (Rows
/// occurring zero times would mean the database is not semijoin-reduced.)
fn referencing_rows_unique(db: &Database, u: &Universal, rel: usize) -> bool {
    let mut counts = vec![0u32; db.relation_len(rel)];
    for t in u.iter() {
        let row = t[rel] as usize;
        counts[row] += 1;
        if counts[row] > 1 {
            return false;
        }
    }
    counts.iter().all(|&c| c == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::AggregateQuery;
    use exq_relstore::{Predicate, SchemaBuilder, ValueType as T};

    fn dblp_db(back_and_forth: bool) -> Database {
        let mut b = SchemaBuilder::new()
            .relation("Author", &[("id", T::Str), ("dom", T::Str)], &["id"])
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author");
        b = if back_and_forth {
            b.back_and_forth_fk("Authored", &["pubid"], "Publication")
        } else {
            b.standard_fk("Authored", &["pubid"], "Publication")
        };
        let mut db = Database::new(b.build().unwrap());
        for (id, dom) in [("A1", "edu"), ("A2", "com")] {
            db.insert("Author", vec![id.into(), dom.into()]).unwrap();
        }
        for (id, pubid) in [("A1", "P1"), ("A2", "P1"), ("A2", "P2")] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, venue) in [("P1", "SIGMOD"), ("P2", "VLDB")] {
            db.insert("Publication", vec![pubid.into(), venue.into()])
                .unwrap();
        }
        db
    }

    #[test]
    fn count_star_additive_without_bf() {
        let db = dblp_db(false);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            check_aggregate(&db, &u, &AggFunc::CountStar),
            Additivity::CountStarNoBackAndForth
        );
    }

    #[test]
    fn count_star_not_additive_with_bf() {
        let db = dblp_db(true);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            check_aggregate(&db, &u, &AggFunc::CountStar),
            Additivity::Unknown
        );
    }

    #[test]
    fn count_distinct_pubid_additive_with_bf() {
        // Every Authored row occurs in exactly one universal row, and
        // pubid is Publication's pk targeted by the back-and-forth key.
        let db = dblp_db(true);
        let u = Universal::compute(&db, &db.full_view());
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        assert!(matches!(
            check_aggregate(&db, &u, &AggFunc::CountDistinct(pubid)),
            Additivity::CountDistinctViaBackAndForth { .. }
        ));
    }

    #[test]
    fn count_distinct_non_pk_not_additive() {
        let db = dblp_db(true);
        let u = Universal::compute(&db, &db.full_view());
        let venue = db.schema().attr("Publication", "venue").unwrap();
        assert_eq!(
            check_aggregate(&db, &u, &AggFunc::CountDistinct(venue)),
            Additivity::Unknown
        );
    }

    #[test]
    fn count_distinct_without_bf_not_additive() {
        let db = dblp_db(false);
        let u = Universal::compute(&db, &db.full_view());
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        assert_eq!(
            check_aggregate(&db, &u, &AggFunc::CountDistinct(pubid)),
            Additivity::Unknown
        );
    }

    #[test]
    fn other_aggregates_unknown() {
        let db = dblp_db(false);
        let u = Universal::compute(&db, &db.full_view());
        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        for f in [
            AggFunc::Sum(pubid),
            AggFunc::Avg(pubid),
            AggFunc::Min(pubid),
            AggFunc::Max(pubid),
        ] {
            assert_eq!(check_aggregate(&db, &u, &f), Additivity::Unknown);
        }
    }

    #[test]
    fn whole_query_check() {
        let db = dblp_db(false);
        let u = Universal::compute(&db, &db.full_view());
        let q = NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery::count_star(Predicate::True),
        );
        assert!(query_is_additive(&db, &u, &q));
        assert_eq!(check_query(&db, &u, &q).len(), 2);

        let pubid = db.schema().attr("Publication", "pubid").unwrap();
        let mixed = NumericalQuery::ratio(
            AggregateQuery::count_star(Predicate::True),
            AggregateQuery {
                func: AggFunc::Sum(pubid),
                selection: Predicate::True,
            },
        );
        assert!(!query_is_additive(&db, &u, &mixed));
    }

    #[test]
    fn row_uniqueness_fails_when_relation_repeats() {
        // Author appears in multiple universal rows, so a hypothetical
        // back-and-forth key targeting Author's referenced side would not
        // qualify. Exercise the helper directly.
        let db = dblp_db(true);
        let u = Universal::compute(&db, &db.full_view());
        let author = db.schema().relation_index("Author").unwrap();
        let authored = db.schema().relation_index("Authored").unwrap();
        assert!(!referencing_rows_unique(&db, &u, author), "A2 has two pubs");
        assert!(referencing_rows_unique(&db, &u, authored));
    }
}
