//! The explanation table `M` (Section 4.2): one row per candidate
//! explanation, carrying the per-sub-query values and both degrees.
//!
//! Both Algorithm 1 (`cube_algo`) and the naive baseline (`naive`) produce
//! this structure, so the top-K strategies and the correctness tests are
//! agnostic to how the degrees were computed.

use crate::explanation::Explanation;
use crate::question::UserQuestion;
use exq_relstore::cube::Coord;
use exq_relstore::par::{self, ExecConfig};
use exq_relstore::{AttrRef, Database, Value};
use std::fmt;

/// Cells per block when deriving degree rows in parallel.
const DERIVE_BLOCK: usize = 1024;

/// Lines 4–5 of Algorithm 1: turn joined cube cells (dummy-encoded
/// coordinates plus the per-sub-query `v_j` vector) into degree rows,
/// fanning blocks of cells out over `exec`. Each row's arithmetic reads
/// only its own cell, so the fan-out is exact at any thread count; rows
/// come back sorted by coordinate. The all-null (trivial) explanation is
/// dropped.
pub fn derive_rows(
    question: &UserQuestion,
    totals: &[f64],
    cells: &[(Coord, Vec<f64>)],
    exec: &ExecConfig,
) -> Vec<ExplanationRow> {
    let interv_sign = question.direction.interv_sign();
    let aggr_sign = question.direction.aggr_sign();
    let parts = par::map_blocks(exec, cells, DERIVE_BLOCK, |_, chunk| {
        chunk
            .iter()
            .filter_map(|(key, values)| {
                // Undo the dummy mapping of the outer join.
                let coord: Coord = key
                    .iter()
                    .map(|v| if v.is_dummy() { Value::Null } else { v.clone() })
                    .collect();
                if coord.iter().all(Value::is_null) {
                    return None; // trivial explanation, excluded from M
                }
                let residual_vals: Vec<f64> = totals
                    .iter()
                    .zip(values)
                    .map(|(u_j, v_j)| u_j - v_j)
                    .collect();
                Some(ExplanationRow {
                    coord,
                    mu_interv: interv_sign * question.query.combine(&residual_vals),
                    mu_aggr: aggr_sign * question.query.combine(values),
                    values: values.clone(),
                })
            })
            .collect::<Vec<_>>()
    });
    let mut rows: Vec<ExplanationRow> = parts.into_iter().flatten().collect();
    rows.sort_by(|a, b| a.coord.cmp(&b.coord));
    rows
}

/// One row of `M`: a candidate explanation with its degrees.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationRow {
    /// The explanation as a coordinate over the table's dimensions
    /// (`Value::Null` = attribute not constrained).
    pub coord: Coord,
    /// `v_j(φ) = q_j(D_φ)` per aggregate sub-query (0 where φ is absent
    /// from the cube — the outer-join convention).
    pub values: Vec<f64>,
    /// `μ_interv(φ)` (Definition 2.7).
    pub mu_interv: f64,
    /// `μ_aggr(φ)` (Definition 2.4).
    pub mu_aggr: f64,
}

impl ExplanationRow {
    /// Number of non-null coordinates (explanation length).
    pub fn arity(&self) -> usize {
        self.coord.iter().filter(|v| !v.is_null()).count()
    }

    /// Whether `self`'s non-null pairs are a subset of `other`'s — i.e.
    /// `self` is a (not necessarily proper) generalization.
    pub fn coord_generalizes(&self, other: &ExplanationRow) -> bool {
        self.coord
            .iter()
            .zip(other.coord.iter())
            .all(|(a, b)| a.is_null() || a == b)
    }
}

/// The materialized table `M`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationTable {
    /// The explanation attributes `A'`, in coordinate order.
    pub dims: Vec<AttrRef>,
    /// `u_j = q_j(D)` for each sub-query (line 1 of Algorithm 1).
    pub totals: Vec<f64>,
    /// Candidate explanations. The trivial all-null explanation is
    /// excluded (Section 4.3 ignores it).
    pub rows: Vec<ExplanationRow>,
}

impl ExplanationTable {
    /// Number of candidate explanations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row for an exact coordinate, if present.
    pub fn find(&self, coord: &[Value]) -> Option<&ExplanationRow> {
        self.rows.iter().find(|r| &*r.coord == coord)
    }

    /// The [`Explanation`] of a row.
    pub fn explanation(&self, row: &ExplanationRow) -> Explanation {
        Explanation::from_coord(&self.dims, &row.coord)
    }

    /// Drop rows whose *support* is too small: keep a row only if at least
    /// one of its `v_j` values reaches `threshold`. This is the paper's
    /// Section 5.1.1 pruning ("a threshold such that at least one of the
    /// aggregate queries q_j has value ≥ 1000"), which keeps the
    /// near-empty strata whose smoothed ratios explode toward ∞ out of
    /// the rankings.
    pub fn retain_min_support(&mut self, threshold: f64) {
        self.rows
            .retain(|r| r.values.iter().any(|&v| v >= threshold));
    }

    /// Sort rows deterministically (descending degree, shorter first,
    /// then coordinate) by the chosen degree. Used by the top-K strategies.
    pub fn sorted_indices(&self, degree: impl Fn(&ExplanationRow) -> f64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ra, rb) = (&self.rows[a], &self.rows[b]);
            degree(rb)
                .total_cmp(&degree(ra))
                .then_with(|| ra.arity().cmp(&rb.arity()))
                .then_with(|| ra.coord.cmp(&rb.coord))
        });
        idx
    }

    /// Export as CSV (header: the dimension names, one `v{j}` column per
    /// sub-query, then `mu_interv` and `mu_aggr`) — the shape downstream
    /// notebooks want. "Don't care" coordinates export as empty fields.
    pub fn to_csv(&self, db: &Database) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut header: Vec<String> = self
            .dims
            .iter()
            .map(|&d| db.schema().attr_name(d))
            .collect();
        let m = self.totals.len();
        header.extend((1..=m).map(|j| format!("v{j}")));
        header.push("mu_interv".to_string());
        header.push("mu_aggr".to_string());
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let mut fields: Vec<String> = row
                .coord
                .iter()
                .map(|v| {
                    if v.is_null() {
                        String::new()
                    } else {
                        csv_quote(&v.to_string())
                    }
                })
                .collect();
            fields.extend(row.values.iter().map(f64::to_string));
            fields.push(row.mu_interv.to_string());
            fields.push(row.mu_aggr.to_string());
            let _ = writeln!(out, "{}", fields.join(","));
        }
        out
    }

    /// Render as aligned text (for the `repro` harness and examples).
    pub fn render(&self, db: &Database, limit: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let names: Vec<String> = self
            .dims
            .iter()
            .map(|&d| db.schema().attr_name(d))
            .collect();
        let _ = writeln!(
            out,
            "{:<50} {:>12} {:>12}",
            names.join(" | "),
            "mu_interv",
            "mu_aggr"
        );
        for row in self.rows.iter().take(limit) {
            let coord: Vec<String> = row.coord.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "{:<50} {:>12.4} {:>12.4}",
                coord.join(" | "),
                row.mu_interv,
                row.mu_aggr
            );
        }
        out
    }
}

fn csv_quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl fmt::Display for ExplanationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "M with {} rows over {} attributes",
            self.rows.len(),
            self.dims.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coord: Vec<Value>, mu: f64) -> ExplanationRow {
        ExplanationRow {
            coord: coord.into_boxed_slice(),
            values: vec![],
            mu_interv: mu,
            mu_aggr: mu,
        }
    }

    #[test]
    fn arity_counts_nonnull() {
        assert_eq!(row(vec![Value::Null, Value::str("a")], 0.0).arity(), 1);
        assert_eq!(row(vec![Value::Null, Value::Null], 0.0).arity(), 0);
    }

    #[test]
    fn coord_generalization() {
        let general = row(vec![Value::Null, Value::str("a")], 0.0);
        let specific = row(vec![Value::Int(1), Value::str("a")], 0.0);
        let other = row(vec![Value::Int(1), Value::str("b")], 0.0);
        assert!(general.coord_generalizes(&specific));
        assert!(!specific.coord_generalizes(&general));
        assert!(general.coord_generalizes(&general));
        assert!(!general.coord_generalizes(&other));
    }

    #[test]
    fn sorted_indices_orders_by_degree_then_arity() {
        let table = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![
                row(vec![Value::Int(1), Value::Int(2)], 5.0),
                row(vec![Value::Int(1), Value::Null], 5.0),
                row(vec![Value::Null, Value::Int(9)], 7.0),
            ],
        };
        let order = table.sorted_indices(|r| r.mu_interv);
        assert_eq!(
            order,
            vec![2, 1, 0],
            "highest degree first, then shorter explanation"
        );
    }

    #[test]
    fn csv_export_shape() {
        use exq_relstore::{SchemaBuilder, ValueType as T};
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("g", T::Str)], &["id"])
            .build()
            .unwrap();
        let db = exq_relstore::Database::new(schema);
        let g = db.schema().attr("R", "g").unwrap();
        let table = ExplanationTable {
            dims: vec![g],
            totals: vec![10.0, 5.0],
            rows: vec![
                ExplanationRow {
                    coord: vec![Value::str("a,b")].into_boxed_slice(),
                    values: vec![3.0, 2.0],
                    mu_interv: -1.5,
                    mu_aggr: 1.5,
                },
                ExplanationRow {
                    coord: vec![Value::Null].into_boxed_slice(),
                    values: vec![10.0, 5.0],
                    mu_interv: 0.0,
                    mu_aggr: 2.0,
                },
            ],
        };
        let csv = table.to_csv(&db);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "R.g,v1,v2,mu_interv,mu_aggr");
        assert_eq!(lines[1], "\"a,b\",3,2,-1.5,1.5");
        assert_eq!(lines[2], ",10,5,0,2");
    }

    #[test]
    fn retain_min_support_drops_thin_rows() {
        let mut table = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![
                ExplanationRow {
                    coord: vec![Value::Int(1)].into_boxed_slice(),
                    values: vec![1500.0, 2.0],
                    mu_interv: 0.0,
                    mu_aggr: 0.0,
                },
                ExplanationRow {
                    coord: vec![Value::Int(2)].into_boxed_slice(),
                    values: vec![3.0, 2.0],
                    mu_interv: 0.0,
                    mu_aggr: 0.0,
                },
            ],
        };
        table.retain_min_support(1000.0);
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0].coord[0], Value::Int(1));
    }

    #[test]
    fn find_by_coordinate() {
        let table = ExplanationTable {
            dims: vec![],
            totals: vec![],
            rows: vec![row(vec![Value::Int(1)], 1.0)],
        };
        assert!(table.find(&[Value::Int(1)]).is_some());
        assert!(table.find(&[Value::Int(2)]).is_none());
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }
}
