//! Machine-readable JSON documents for `explain`, `report`, and `drill`.
//!
//! One serializer shared by the `exq` CLI (`--format json`) and the
//! `exq-serve` HTTP server, so the two surfaces cannot fork response
//! shapes. Every function renders a single self-contained JSON document:
//! the semantic payload first, then the run's status `notes`, then the
//! metrics snapshot. Counters in the snapshot are deterministic across
//! thread counts; span durations are wall-clock and can be normalized
//! away with [`exq_obs::Snapshot::normalized`].
//!
//! The `explain` document shape is byte-for-byte the one `exq explain
//! --format json` has emitted since the observability layer landed —
//! golden fixtures in the CLI test-suite pin it.

use crate::error::Result;
use crate::explainer::{DegreeReport, EngineChoice, Explainer};
use crate::report::ReportConfig;
use crate::topk::{rank_correlation, top_k, DegreeKind, MinimalityPolarity, Ranked, TopKStrategy};
use exq_obs::{escape_json, Snapshot};
use exq_relstore::Database;
use std::fmt::Write as _;

/// A float as a JSON token (`null` for non-finite values, which bare
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append a `"notes": [...]` field (two-space indent, trailing comma).
fn push_notes(out: &mut String, notes: &[String]) {
    out.push_str("  \"notes\": [\n");
    for (i, note) in notes.iter().enumerate() {
        let sep = if i + 1 == notes.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\"{sep}", escape_json(note));
    }
    out.push_str("  ],\n");
}

/// Append the final `"metrics": {...}` field, re-indenting the
/// snapshot's own JSON to nest it.
fn push_metrics(out: &mut String, snapshot: &Snapshot) {
    let metrics = snapshot
        .to_json()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("  {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let _ = writeln!(out, "  \"metrics\": {metrics}");
}

/// Append a ranked-explanation array at `indent` spaces per entry.
fn push_ranked(out: &mut String, db: &Database, ranked: &[Ranked], indent: usize) {
    for (i, r) in ranked.iter().enumerate() {
        let sep = if i + 1 == ranked.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{:indent$}{{ \"rank\": {}, \"explanation\": \"{}\", \"degree\": {} }}{sep}",
            "",
            r.rank,
            escape_json(&r.explanation.display(db).to_string()),
            json_f64(r.degree),
        );
    }
}

/// The `exq explain --format json` document: question value, engine
/// choice, candidate count, the ranked top-K, notes, metrics.
pub fn explain_doc(
    db: &Database,
    q_d: f64,
    engine: EngineChoice,
    candidates: usize,
    ranked: &[Ranked],
    snapshot: &Snapshot,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"q_d\": {},", json_f64(q_d));
    let _ = writeln!(out, "  \"engine\": \"{engine:?}\",");
    let _ = writeln!(out, "  \"candidates\": {candidates},");
    out.push_str("  \"top\": [\n");
    push_ranked(&mut out, db, ranked, 4);
    out.push_str("  ],\n");
    push_notes(&mut out, &snapshot.notes);
    push_metrics(&mut out, snapshot);
    out.push('}');
    out
}

/// The drill-down object body (shared between the `drill` document and
/// the report's `"drill"` field); `indent` is the indentation of the
/// object's own fields.
fn drill_object(out: &mut String, db: &Database, phi: &str, report: &DegreeReport, indent: usize) {
    let pad = " ".repeat(indent);
    let _ = writeln!(out, "{pad}\"phi\": \"{}\",", escape_json(phi));
    let _ = writeln!(out, "{pad}\"mu_interv\": {},", json_f64(report.mu_interv));
    let _ = writeln!(out, "{pad}\"mu_aggr\": {},", json_f64(report.mu_aggr));
    let _ = writeln!(out, "{pad}\"mu_hybrid\": {},", json_f64(report.mu_hybrid));
    let _ = writeln!(out, "{pad}\"intervention\": {{");
    let _ = writeln!(
        out,
        "{pad}  \"deleted\": {},",
        report.intervention.total_deleted()
    );
    let _ = writeln!(
        out,
        "{pad}  \"iterations\": {},",
        report.intervention.iterations
    );
    let per_rel: Vec<(usize, usize)> = report
        .intervention
        .delta
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.is_empty())
        .map(|(rel, d)| (rel, d.count()))
        .collect();
    let _ = writeln!(out, "{pad}  \"relations\": [");
    for (i, (rel, n)) in per_rel.iter().enumerate() {
        let sep = if i + 1 == per_rel.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{pad}    {{ \"relation\": \"{}\", \"deleted\": {n} }}{sep}",
            escape_json(&db.schema().relation(*rel).name),
        );
    }
    let _ = writeln!(out, "{pad}  ]");
    let _ = writeln!(out, "{pad}}}");
}

/// The `exq drill --format json` document: all three degrees plus the
/// intervention for one explanation, then notes and metrics.
pub fn drill_doc(db: &Database, phi: &str, report: &DegreeReport, snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    drill_object(&mut out, db, phi, report, 2);
    // drill_object's last line ends the intervention object; patch the
    // field separator in.
    let end = out.trim_end_matches('\n').len();
    out.truncate(end);
    out.push_str(",\n");
    push_notes(&mut out, &snapshot.notes);
    push_metrics(&mut out, snapshot);
    out.push('}');
    out
}

/// The `exq report --format json` document: everything the plain-text
/// report contains — question value, engine, Kendall tau, both rankings,
/// the drill-down of the best explanation — as one JSON object. Runs the
/// pipeline through `explainer` exactly like [`crate::report::generate`];
/// the metrics snapshot is taken from `config.exec`'s sink after the
/// pipeline has run.
pub fn report_doc(explainer: &Explainer<'_>, config: &ReportConfig) -> Result<String> {
    let db = explainer.db();
    let q_d = explainer.q_d()?;
    let (table, engine) = explainer.table()?;
    let tau = rank_correlation(&table, DegreeKind::Intervention, DegreeKind::Aggravation);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"q_d\": {},", json_f64(q_d));
    let _ = writeln!(out, "  \"engine\": \"{engine:?}\",");
    let _ = writeln!(out, "  \"candidates\": {},", table.len());
    let _ = writeln!(out, "  \"parallelism\": {},", config.exec.threads());
    let _ = writeln!(out, "  \"tau\": {},", json_f64(tau));
    out.push_str("  \"rankings\": {\n");
    for (i, (name, kind)) in [
        ("intervention", DegreeKind::Intervention),
        ("aggravation", DegreeKind::Aggravation),
    ]
    .into_iter()
    .enumerate()
    {
        let ranked = top_k(
            &table,
            kind,
            config.top_k,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        );
        let _ = writeln!(out, "    \"{name}\": [");
        push_ranked(&mut out, db, &ranked, 6);
        let sep = if i == 0 { "," } else { "" };
        let _ = writeln!(out, "    ]{sep}");
    }
    out.push_str("  },\n");

    if config.drill_best {
        let best = top_k(
            &table,
            DegreeKind::Intervention,
            1,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        );
        match best.first() {
            Some(best) => {
                let report = explainer.explain(&best.explanation)?;
                out.push_str("  \"drill\": {\n");
                drill_object(
                    &mut out,
                    db,
                    &best.explanation.display(db).to_string(),
                    &report,
                    4,
                );
                out.push_str("  },\n");
            }
            None => out.push_str("  \"drill\": null,\n"),
        }
    } else {
        out.push_str("  \"drill\": null,\n");
    }

    let snapshot = config.exec.metrics().snapshot();
    push_notes(&mut out, &snapshot.notes);
    push_metrics(&mut out, &snapshot);
    out.push('}');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use exq_relstore::{Predicate, SchemaBuilder, ValueType as T};

    fn setup() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("ok", T::Str)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, ok)) in [("a", "y"), ("a", "y"), ("a", "n"), ("b", "n"), ("b", "n")]
            .iter()
            .enumerate()
        {
            db.insert("R", vec![(i as i64).into(), (*g).into(), (*ok).into()])
                .unwrap();
        }
        db
    }

    fn question(db: &Database) -> UserQuestion {
        let ok = db.schema().attr("R", "ok").unwrap();
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(Predicate::eq(ok, "y")),
                AggregateQuery::count_star(Predicate::eq(ok, "n")),
            )
            .with_smoothing(1e-4),
            Direction::High,
        )
    }

    /// Brace/bracket balance outside string literals; returns depth==0.
    fn balanced_json(text: &str) -> bool {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in text.chars() {
            if in_str {
                match (esc, c) {
                    (true, _) => esc = false,
                    (false, '\\') => esc = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn explain_doc_shape() {
        let db = setup();
        let e = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let q_d = e.question().query.eval(&db).unwrap();
        let (table, choice) = e.table().unwrap();
        let ranked = e.top(DegreeKind::Intervention, 3).unwrap();
        let doc = explain_doc(&db, q_d, choice, table.len(), &ranked, &Snapshot::default());
        assert!(balanced_json(&doc), "{doc}");
        assert!(doc.contains("\"engine\": \"Cube\""), "{doc}");
        assert!(doc.contains("\"explanation\": \"[R.g = a]\""), "{doc}");
        assert!(doc.contains("\"metrics\": {"), "{doc}");
    }

    #[test]
    fn non_finite_degrees_become_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn drill_doc_shape() {
        let db = setup();
        let e = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let g = db.schema().attr("R", "g").unwrap();
        let phi = crate::explanation::Explanation::new(vec![exq_relstore::Atom::eq(g, "a")]);
        let report = e.explain(&phi).unwrap();
        let doc = drill_doc(
            &db,
            &phi.display(&db).to_string(),
            &report,
            &Snapshot::default(),
        );
        assert!(balanced_json(&doc), "{doc}");
        assert!(doc.contains("\"phi\": \"[R.g = a]\""), "{doc}");
        assert!(doc.contains("\"mu_hybrid\":"), "{doc}");
        assert!(doc.contains("\"relation\": \"R\""), "{doc}");
        assert!(doc.contains("\"notes\": ["), "{doc}");
    }

    #[test]
    fn report_doc_shape_and_thread_stability() {
        let db = setup();
        let doc_at = |threads: usize| {
            let exec = exq_relstore::ExecConfig::with_threads(threads);
            let e = Explainer::new(&db, question(&db))
                .attr_names(&["R.g"])
                .unwrap()
                .exec(exec.clone());
            report_doc(
                &e,
                &ReportConfig {
                    exec,
                    ..ReportConfig::default()
                },
            )
            .unwrap()
        };
        let base = doc_at(1);
        assert!(balanced_json(&base), "{base}");
        assert!(base.contains("\"rankings\": {"), "{base}");
        assert!(base.contains("\"intervention\": ["), "{base}");
        assert!(base.contains("\"aggravation\": ["), "{base}");
        assert!(base.contains("\"drill\": {"), "{base}");
        assert!(base.contains("\"parallelism\": 1,"), "{base}");
        for threads in [2, 7] {
            let doc = doc_at(threads);
            let strip = |t: &str| {
                t.lines()
                    .filter(|l| !l.contains("\"parallelism\""))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&base), strip(&doc), "threads = {threads}");
        }
    }

    #[test]
    fn report_doc_without_drill() {
        let db = setup();
        let e = Explainer::new(&db, question(&db))
            .attr_names(&["R.g"])
            .unwrap();
        let doc = report_doc(
            &e,
            &ReportConfig {
                drill_best: false,
                ..ReportConfig::default()
            },
        )
        .unwrap();
        assert!(doc.contains("\"drill\": null,"), "{doc}");
        assert!(balanced_json(&doc), "{doc}");
    }
}
