//! Structured trace events and Chrome trace-event export.
//!
//! When tracing is enabled on a sink ([`crate::MetricsSink::enable_tracing`]),
//! every [`crate::SpanGuard`] additionally pushes a begin (`B`) record at
//! creation and an end (`E`) record at drop into a bounded ring buffer.
//! Each record carries the span name, a nanosecond timestamp relative to
//! the registry's epoch, a small per-process thread id, the active trace
//! id, and a monotonically assigned span id.
//!
//! [`chrome_json`] renders the ring as Chrome trace-event JSON —
//! loadable in Perfetto or `chrome://tracing` — after a matching pass
//! that drops begin/end records orphaned by ring overflow, so the
//! exported document is always stack-balanced per thread.

use crate::escape_json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};

/// Begin or end of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opened (`"ph": "B"`).
    Begin,
    /// Span closed (`"ph": "E"`).
    End,
}

/// One record in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (same name the span totals aggregate under).
    pub name: String,
    /// Begin or end.
    pub phase: TracePhase,
    /// Nanoseconds since the registry's epoch.
    pub ts_ns: u64,
    /// Small per-process thread id (assigned in first-use order).
    pub tid: u32,
    /// The trace this span belongs to (0 when none was set).
    pub trace_id: u64,
    /// Monotonically assigned span id; begin and end share it.
    pub span_id: u64,
}

/// The bounded event ring plus id allocation, kept behind the registry's
/// trace mutex.
#[derive(Debug, Default)]
pub(crate) struct TraceBuf {
    /// 0 = tracing disabled.
    pub(crate) capacity: usize,
    pub(crate) events: std::collections::VecDeque<TraceEvent>,
    pub(crate) dropped: u64,
    pub(crate) next_span: u64,
}

impl TraceBuf {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's small per-process id (stable for the thread's
/// lifetime, assigned in first-use order).
pub fn current_tid() -> u32 {
    TID.with(|t| *t)
}

/// Indices of events that survive begin/end matching: every `B` with its
/// `E` (same thread, same name, properly nested), everything else —
/// orphans from ring overflow or still-open spans — dropped.
fn matched_indices(events: &[TraceEvent]) -> Vec<bool> {
    let mut keep = vec![false; events.len()];
    let mut stacks: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            TracePhase::Begin => stack.push(i),
            TracePhase::End => {
                if let Some(&top) = stack.last() {
                    if events[top].name == e.name && events[top].span_id == e.span_id {
                        stack.pop();
                        keep[top] = true;
                        keep[i] = true;
                    }
                    // Mismatched end: its begin was evicted — drop it.
                }
            }
        }
    }
    keep
}

/// Render events as a Chrome trace-event JSON document.
///
/// Timestamps are microseconds with nanosecond precision (three decimal
/// places), relative to the registry epoch. `dropped` is surfaced in the
/// document's `metadata` so consumers can tell the ring overflowed.
pub(crate) fn chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let keep = matched_indices(events);
    let mut out = String::from("{\n  \"traceEvents\": [");
    let mut first = true;
    for (i, e) in events.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let ph = match e.phase {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
        };
        let _ = write!(
            out,
            "{sep}    {{\"name\": \"{}\", \"ph\": \"{ph}\", \"ts\": {}.{:03}, \"pid\": 1, \
             \"tid\": {}, \"args\": {{\"trace_id\": {}, \"span_id\": {}}}}}",
            escape_json(&e.name),
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.tid,
            e.trace_id,
            e.span_id,
        );
    }
    out.push_str(if first { "],\n" } else { "\n  ],\n" });
    let _ = write!(
        out,
        "  \"displayTimeUnit\": \"ns\",\n  \"metadata\": {{\"dropped_events\": {dropped}}}\n}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, phase: TracePhase, tid: u32, span_id: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_owned(),
            phase,
            ts_ns: span_id * 10,
            tid,
            trace_id: 1,
            span_id,
        }
    }

    #[test]
    fn matching_keeps_nested_pairs() {
        let events = vec![
            ev("outer", TracePhase::Begin, 1, 1),
            ev("inner", TracePhase::Begin, 1, 2),
            ev("inner", TracePhase::End, 1, 2),
            ev("outer", TracePhase::End, 1, 1),
        ];
        assert_eq!(matched_indices(&events), vec![true; 4]);
    }

    #[test]
    fn matching_drops_orphans() {
        // A lone end (begin evicted) and a still-open begin.
        let events = vec![
            ev("evicted", TracePhase::End, 1, 1),
            ev("open", TracePhase::Begin, 1, 2),
            ev("ok", TracePhase::Begin, 1, 3),
            ev("ok", TracePhase::End, 1, 3),
        ];
        assert_eq!(matched_indices(&events), vec![false, false, true, true]);
    }

    #[test]
    fn matching_is_per_thread() {
        // Interleaved threads each balance independently.
        let events = vec![
            ev("a", TracePhase::Begin, 1, 1),
            ev("b", TracePhase::Begin, 2, 2),
            ev("a", TracePhase::End, 1, 1),
            ev("b", TracePhase::End, 2, 2),
        ];
        assert_eq!(matched_indices(&events), vec![true; 4]);
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let mut buf = TraceBuf {
            capacity: 2,
            ..TraceBuf::default()
        };
        for i in 0..5u64 {
            buf.push(ev("x", TracePhase::Begin, 1, i));
        }
        assert_eq!(buf.events.len(), 2);
        assert_eq!(buf.dropped, 3);
        assert_eq!(buf.events[0].span_id, 3);
    }

    #[test]
    fn chrome_json_escapes_and_timestamps() {
        let events = vec![
            TraceEvent {
                name: "a\"b".to_owned(),
                phase: TracePhase::Begin,
                ts_ns: 1_234_567,
                tid: 1,
                trace_id: 7,
                span_id: 1,
            },
            TraceEvent {
                name: "a\"b".to_owned(),
                phase: TracePhase::End,
                ts_ns: 2_000_001,
                tid: 1,
                trace_id: 7,
                span_id: 1,
            },
        ];
        let json = chrome_json(&events, 0);
        assert!(json.contains("\"name\": \"a\\\"b\""), "{json}");
        assert!(json.contains("\"ts\": 1234.567"), "{json}");
        assert!(json.contains("\"ts\": 2000.001"), "{json}");
        assert!(json.contains("\"dropped_events\": 0"), "{json}");
    }

    #[test]
    fn empty_ring_renders_valid_document() {
        let json = chrome_json(&[], 9);
        assert!(json.contains("\"traceEvents\": []"), "{json}");
        assert!(json.contains("\"dropped_events\": 9"), "{json}");
    }
}
