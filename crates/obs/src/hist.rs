//! Deterministic log-bucketed histograms.
//!
//! The bucket layout is log-linear (HDR-style): each power-of-two
//! *octave* is split into `2^SUB_BUCKET_BITS = 4` equal sub-buckets, so
//! relative bucket width is bounded by 25% everywhere while the whole
//! `u64` range fits in ≤ 252 buckets. Bucketing is pure integer
//! arithmetic on the recorded value — no floats, no sampling — so for
//! deterministic inputs the bucket counts are **bit-identical across
//! thread counts**, extending the engine's determinism contract from
//! counters to distributions.
//!
//! Wall-clock histograms (latencies) are the exception, exactly like
//! span durations: their bucket contents depend on timing, so
//! [`crate::Snapshot::normalized`] collapses them to their sample count.

use std::fmt;

/// Number of sub-bucket bits per octave: 4 sub-buckets, ≤ 25% width.
const SUB_BUCKET_BITS: u32 = 2;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// What a histogram's samples mean — and whether they are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HistKind {
    /// Plain values (row counts, sizes). Deterministic across thread
    /// counts; survive [`crate::Snapshot::normalized`] untouched.
    Values,
    /// Wall-clock durations in nanoseconds. *Not* deterministic;
    /// normalization keeps only the sample count.
    WallClock,
}

impl HistKind {
    /// Stable lower-case name used in JSON snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            HistKind::Values => "values",
            HistKind::WallClock => "wall_clock",
        }
    }

    /// Inverse of [`HistKind::as_str`], used by the snapshot wire codec.
    pub fn parse(tag: &str) -> Option<HistKind> {
        match tag {
            "values" => Some(HistKind::Values),
            "wall_clock" => Some(HistKind::WallClock),
            _ => None,
        }
    }
}

impl fmt::Display for HistKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The bucket index for value `v`.
///
/// Values below `SUB_BUCKETS` get their own unit-width bucket; above
/// that, the top `SUB_BUCKET_BITS + 1` significant bits select the
/// bucket inside the value's octave.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BUCKET_BITS
    let octave = (msb - SUB_BUCKET_BITS) as usize;
    let shift = msb - SUB_BUCKET_BITS;
    (octave + 1) * SUB_BUCKETS + ((v >> shift) as usize - SUB_BUCKETS)
}

/// The largest value that falls into bucket `i` (inclusive upper bound).
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = i / SUB_BUCKETS - 1;
    let offset = (i % SUB_BUCKETS) as u128;
    // In u128: the top bucket's bound is `8 << 61`, which is exactly
    // 2^64 — one past u64 — so the u64 shift would truncate to zero
    // (and the `- 1` then underflow) for the bucket holding u64::MAX.
    let upper = ((offset + SUB_BUCKETS as u128 + 1) << octave) - 1;
    upper.min(u128::from(u64::MAX)) as u64
}

/// A fixed-layout log-bucketed histogram over `u64` samples.
///
/// Bucket storage grows on demand (most histograms only ever touch a
/// handful of octaves) but the *layout* is fixed, so two histograms fed
/// the same multiset of values hold identical bucket vectors regardless
/// of insertion order or thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending bound order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank, reported as the
    /// containing bucket's inclusive upper bound — so the estimate is
    /// never below the exact order statistic and never above it by more
    /// than one bucket width. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(self.count, self.counts.iter().copied().enumerate(), q)
    }

    /// Freeze into a snapshot with the given kind tag.
    pub fn snapshot(&self, kind: HistKind) -> HistogramSnapshot {
        HistogramSnapshot {
            kind,
            count: self.count,
            sum: self.sum,
            buckets: self.buckets(),
        }
    }
}

/// A point-in-time copy of one histogram, as carried by
/// [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Whether the samples are deterministic values or wall-clock times.
    pub kind: HistKind,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u128,
    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Merge another snapshot of the same histogram family into this
    /// one. Exact by construction: the bucket *layout* is fixed, so two
    /// buckets with equal upper bounds describe the same value range and
    /// their counts simply add — the result is bit-identical to a
    /// histogram fed the concatenation of both sample streams. The
    /// operation is associative and commutative. A kind mismatch (one
    /// side values, the other wall-clock) quarantines the merged
    /// histogram as [`HistKind::WallClock`] so normalization collapses
    /// it rather than laundering timing data into the deterministic set.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.kind != other.kind {
            self.kind = HistKind::WallClock;
        }
        self.count += other.count;
        self.sum += other.sum;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().copied().peekable(),
            other.buckets.iter().copied().peekable(),
        );
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (Some((ua, ca)), Some((ub, cb))) if ua == ub => {
                    merged.push((ua, ca + cb));
                    a.next();
                    b.next();
                }
                (Some((ua, ca)), Some((ub, _))) if ua < ub => {
                    merged.push((ua, ca));
                    a.next();
                }
                (Some(_), Some((ub, cb))) => {
                    merged.push((ub, cb));
                    b.next();
                }
                (Some(x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Same nearest-rank quantile as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(
            self.count,
            self.buckets
                .iter()
                .map(|&(upper, c)| (bucket_index(upper), c)),
            q,
        )
    }
}

/// Shared quantile walk over `(bucket_index, count)` pairs in ascending
/// bucket order.
fn quantile_over(count: u64, buckets: impl Iterator<Item = (usize, u64)>, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0;
    let mut last = 0;
    for (i, c) in buckets {
        if c == 0 {
            continue;
        }
        seen += c;
        last = bucket_upper(i);
        if seen >= rank {
            return last;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_unit_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn octave_boundaries_bucket_exactly() {
        // At every power of two: 2^k is the first value of its octave's
        // first sub-bucket, and 2^k - 1 the last value of the previous
        // bucket — so the two must land in adjacent buckets and the
        // bucket boundary must sit exactly between them.
        for k in 2..64u32 {
            let v = 1u64 << k;
            let below = bucket_index(v - 1);
            let at = bucket_index(v);
            assert_eq!(at, below + 1, "2^{k} must open a new bucket");
            assert_eq!(bucket_upper(below), v - 1, "boundary below 2^{k}");
        }
    }

    #[test]
    fn top_bucket_holds_u64_max() {
        // The last bucket's bound is 2^64 - 1; the u64-only shift used
        // to truncate to zero and underflow here (debug-build panic).
        let top = bucket_index(u64::MAX);
        assert_eq!(top, 251);
        assert_eq!(bucket_upper(top), u64::MAX);
        let mut hist = Histogram::new();
        hist.record(u64::MAX);
        hist.record(0);
        let buckets = hist.buckets();
        assert_eq!(buckets.first(), Some(&(0, 1)));
        assert_eq!(buckets.last(), Some(&(u64::MAX, 1)));
        assert_eq!(hist.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_bounds_are_consistent_with_indexing() {
        // Every bucket's upper bound must index back into that bucket,
        // and upper+1 must land in the next non-degenerate bucket.
        for i in 0..200 {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper({i}) = {upper}");
            assert!(bucket_index(upper + 1) > i);
        }
        // Spot-check octave boundaries.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_index(u64::MAX), 251);
    }

    #[test]
    fn relative_width_is_bounded() {
        // For v >= 4, bucket width / lower bound <= 1/4.
        for i in 4..200usize {
            let upper = bucket_upper(i);
            let lower = bucket_upper(i - 1) + 1;
            let width = upper - lower + 1;
            assert!(
                width * 4 <= lower + width,
                "bucket {i}: [{lower}, {upper}] too wide"
            );
        }
    }

    #[test]
    fn counts_are_insertion_order_independent() {
        let samples = [0u64, 3, 4, 5, 100, 1000, 1_000_000, u64::MAX, 7, 7];
        let mut forward = Histogram::new();
        let mut reverse = Histogram::new();
        for &v in &samples {
            forward.record(v);
        }
        for &v in samples.iter().rev() {
            reverse.record(v);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward.count(), 10);
        assert_eq!(
            forward.sum(),
            samples.iter().map(|&v| u128::from(v)).sum::<u128>()
        );
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    /// The satellite-task guarantee: histogram p50/p95/p99 within one
    /// bucket width of the exact sorted-sample percentiles, on an LCG
    /// sample stream spanning several orders of magnitude.
    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut samples = Vec::new();
        let mut hist = Histogram::new();
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = state >> (state % 50); // spread over many octaves
            samples.push(v);
            hist.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = hist.quantile(q);
            let idx = bucket_index(exact);
            let lower = if idx == 0 {
                0
            } else {
                bucket_upper(idx - 1) + 1
            };
            let upper = bucket_upper(idx);
            assert!(
                est >= exact && est <= upper,
                "q={q}: estimate {est} outside [{exact}, {upper}] (bucket [{lower}, {upper}])"
            );
        }
    }

    #[test]
    fn merge_is_bucket_exact_against_concatenated_samples() {
        // merge(hist(A), hist(B)) must equal hist(A ++ B), bucket for
        // bucket, on an LCG stream spanning many octaves.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> (state % 48)
        };
        let a_samples: Vec<u64> = (0..700).map(|_| next()).collect();
        let b_samples: Vec<u64> = (0..300).map(|_| next()).collect();
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a_samples {
            a.record(v);
            all.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot(HistKind::Values);
        merged.merge(&b.snapshot(HistKind::Values));
        assert_eq!(merged, all.snapshot(HistKind::Values));
        // Commutative: the other order gives the identical snapshot.
        let mut flipped = b.snapshot(HistKind::Values);
        flipped.merge(&a.snapshot(HistKind::Values));
        assert_eq!(flipped, merged);
    }

    #[test]
    fn merge_with_empty_is_identity_and_kind_mismatch_quarantines() {
        let mut hist = Histogram::new();
        for v in [1u64, 5, 5, 900] {
            hist.record(v);
        }
        let reference = hist.snapshot(HistKind::Values);
        let mut merged = reference.clone();
        merged.merge(&Histogram::new().snapshot(HistKind::Values));
        assert_eq!(merged, reference);
        // A wall-clock side poisons the result's kind but not its math.
        let mut other = Histogram::new();
        other.record(7);
        let mut mixed = reference.clone();
        mixed.merge(&other.snapshot(HistKind::WallClock));
        assert_eq!(mixed.kind, HistKind::WallClock);
        assert_eq!(mixed.count, 5);
        assert_eq!(mixed.sum, reference.sum + 7);
    }

    #[test]
    fn hist_kind_round_trips_through_parse() {
        for kind in [HistKind::Values, HistKind::WallClock] {
            assert_eq!(HistKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(HistKind::parse("bogus"), None);
    }

    #[test]
    fn snapshot_quantile_matches_live_quantile() {
        let mut hist = Histogram::new();
        for v in [1u64, 2, 3, 50, 50, 900, 40_000] {
            hist.record(v);
        }
        let snap = hist.snapshot(HistKind::Values);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(snap.quantile(q), hist.quantile(q), "q={q}");
        }
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 7);
    }
}
