//! Prometheus text exposition (format 0.0.4) rendering and a small
//! format checker.
//!
//! [`crate::Snapshot::to_prometheus`] renders counters as `counter`
//! families, span totals as two labelled counter families
//! (`exq_span_calls_total{span="…"}` / `exq_span_ns_total{span="…"}`),
//! and histograms as `histogram` families with cumulative `_bucket`
//! samples, a terminal `le="+Inf"` bucket, and `_sum`/`_count` samples —
//! the shape Prometheus' scraper and `promtool check metrics` expect.
//!
//! Counters named `<prefix>.shard.<digits>` (the router's per-worker
//! series) collapse into one labelled family:
//! `exq_<prefix>_shard{shard="<digits>"}`. One family with a `shard`
//! label is what dashboards want to sum and facet over; N families
//! differing only in a trailing integer is what they get by accident.
//!
//! [`check_prometheus`] validates that shape without any dependency: it
//! is what CI runs against a live `GET /metrics` scrape.

use crate::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a dotted metric name to a Prometheus-legal one: `exq_` prefix,
/// every non-alphanumeric character folded to `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("exq_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Split `<prefix>.shard.<digits>` into `(prefix.shard, digits)`; `None`
/// for every other counter name. Requiring the literal `.shard.` hop
/// keeps ordinary counters that merely end in a number out of the
/// labelled path.
fn shard_split(name: &str) -> Option<(&str, &str)> {
    let (family, digits) = name.rsplit_once('.')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    family.ends_with(".shard").then_some((family, digits))
}

pub(crate) fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    // BTreeMap iteration keeps every `<prefix>.shard.<n>` member of a
    // family contiguous (they share the `<prefix>.shard.` string
    // prefix), so one HELP/TYPE header per family is enough.
    let mut open_family: Option<String> = None;
    for (name, value) in &snapshot.counters {
        if let Some((family, shard)) = shard_split(name) {
            let prom = sanitize_name(family);
            if open_family.as_deref() != Some(family) {
                let _ = writeln!(out, "# HELP {prom} exq counter {family} by shard");
                let _ = writeln!(out, "# TYPE {prom} counter");
                open_family = Some(family.to_owned());
            }
            let _ = writeln!(out, "{prom}{{shard=\"{}\"}} {value}", escape_label(shard));
            continue;
        }
        open_family = None;
        let prom = sanitize_name(name);
        let _ = writeln!(out, "# HELP {prom} exq counter {name}");
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    if !snapshot.spans.is_empty() {
        out.push_str("# HELP exq_span_calls_total completed spans per span name\n");
        out.push_str("# TYPE exq_span_calls_total counter\n");
        for (name, stat) in &snapshot.spans {
            let _ = writeln!(
                out,
                "exq_span_calls_total{{span=\"{}\"}} {}",
                escape_label(name),
                stat.count
            );
        }
        out.push_str("# HELP exq_span_ns_total wall-clock nanoseconds per span name\n");
        out.push_str("# TYPE exq_span_ns_total counter\n");
        for (name, stat) in &snapshot.spans {
            let _ = writeln!(
                out,
                "exq_span_ns_total{{span=\"{}\"}} {}",
                escape_label(name),
                stat.total_ns
            );
        }
    }
    for (name, hist) in &snapshot.histograms {
        let prom = sanitize_name(name);
        let _ = writeln!(out, "# HELP {prom} exq {} histogram {name}", hist.kind);
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut cumulative = 0u64;
        for &(upper, count) in &hist.buckets {
            cumulative += count;
            let _ = writeln!(out, "{prom}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{prom}_sum {}", hist.sum);
        let _ = writeln!(out, "{prom}_count {}", hist.count);
    }
    out
}

/// Is `name` a legal Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
///
/// Used by [`check_prometheus`] on every exposition line, and by
/// `exq lint`'s catalogue audit to prove each `counters.txt` entry will
/// render to a scrapeable name.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Default)]
struct HistState {
    last_le: Option<f64>,
    last_cumulative: Option<u128>,
    inf_value: Option<u128>,
    count_value: Option<u128>,
}

/// Split one sample line into `(metric_name, le_label_if_any, value)`.
fn parse_sample(line: &str) -> Result<(String, Option<String>, u128), String> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("sample line has no value: {line:?}")),
    };
    let value: u128 = value
        .parse()
        .map_err(|_| format!("non-integer sample value in {line:?}"))?;
    match name_and_labels.find('{') {
        None => Ok((name_and_labels.to_owned(), None, value)),
        Some(open) => {
            let name = &name_and_labels[..open];
            let rest = &name_and_labels[open + 1..];
            let close = rest
                .rfind('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            let labels = &rest[..close];
            let mut le = None;
            for pair in labels.split(',') {
                if let Some(v) = pair.strip_prefix("le=\"") {
                    le = Some(
                        v.strip_suffix('"')
                            .ok_or_else(|| format!("unterminated le label in {line:?}"))?
                            .to_owned(),
                    );
                }
            }
            Ok((name.to_owned(), le, value))
        }
    }
}

/// Validate a Prometheus text exposition document.
///
/// Checks, per family: `# HELP` precedes `# TYPE` precedes samples;
/// names are legal; histogram `_bucket` samples have strictly increasing
/// `le` bounds with monotone non-decreasing cumulative counts, end with
/// a `le="+Inf"` bucket, and that terminal bucket equals `_count`.
pub fn check_prometheus(text: &str) -> Result<(), String> {
    let mut helped: BTreeMap<String, bool> = BTreeMap::new(); // name -> typed yet
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let loc = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(loc(format!("bad metric name in HELP: {name:?}")));
            }
            if helped.insert(name.to_owned(), false).is_some() {
                return Err(loc(format!("duplicate HELP for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            match helped.get_mut(name) {
                None => return Err(loc(format!("TYPE before HELP for {name}"))),
                Some(typed @ false) => *typed = true,
                Some(true) => return Err(loc(format!("duplicate TYPE for {name}"))),
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(loc(format!("unknown TYPE {kind:?} for {name}")));
            }
            types.insert(name.to_owned(), kind.to_owned());
            if kind == "histogram" {
                hists.insert(name.to_owned(), HistState::default());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        let (name, le, value) = parse_sample(line).map_err(loc)?;
        if !is_valid_metric_name(&name) {
            return Err(loc(format!("bad metric name {name:?}")));
        }
        samples += 1;
        // Resolve the family: histogram samples use suffixed names.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suffix| name.strip_suffix(suffix))
            .find(|base| types.get(*base).is_some_and(|t| t == "histogram"))
            .unwrap_or(&name)
            .to_owned();
        if !types.contains_key(&family) {
            return Err(loc(format!("sample for {name} without HELP/TYPE")));
        }

        if let Some(state) = hists.get_mut(&family) {
            if name == format!("{family}_bucket") {
                let le = le.ok_or_else(|| loc(format!("bucket without le label: {line:?}")))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| loc(format!("unparseable le bound {le:?}")))?
                };
                if let Some(prev) = state.last_le {
                    if bound <= prev {
                        return Err(loc(format!(
                            "le bounds not strictly increasing in {family}: {prev} then {bound}"
                        )));
                    }
                }
                if let Some(prev) = state.last_cumulative {
                    if value < prev {
                        return Err(loc(format!(
                            "cumulative bucket counts decreased in {family}: {prev} then {value}"
                        )));
                    }
                }
                state.last_le = Some(bound);
                state.last_cumulative = Some(value);
                if bound.is_infinite() {
                    state.inf_value = Some(value);
                }
            } else if name == format!("{family}_count") {
                state.count_value = Some(value);
            }
        }
    }

    for (family, state) in &hists {
        let inf = state
            .inf_value
            .ok_or_else(|| format!("histogram {family} has no le=\"+Inf\" bucket"))?;
        let count = state
            .count_value
            .ok_or_else(|| format!("histogram {family} has no _count sample"))?;
        if inf != count {
            return Err(format!(
                "histogram {family}: le=\"+Inf\" bucket {inf} != _count {count}"
            ));
        }
    }
    for (name, typed) in &helped {
        if !typed {
            return Err(format!("HELP without TYPE for {name}"));
        }
    }
    if samples == 0 {
        return Err("no samples in exposition".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistKind, MetricsSink};
    use std::time::Duration;

    fn sample_snapshot() -> Snapshot {
        let sink = MetricsSink::recording();
        sink.add("join.tuples", 42);
        sink.record_span("cube", Duration::from_nanos(500));
        sink.observe("join.component_rows", 3);
        sink.observe("join.component_rows", 900);
        sink.observe_duration("server.latency.explain.miss", Duration::from_micros(120));
        sink.snapshot()
    }

    #[test]
    fn render_passes_own_checker() {
        let text = render(&sample_snapshot());
        check_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn render_shape_is_as_documented() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE exq_join_tuples counter"), "{text}");
        assert!(text.contains("exq_join_tuples 42"), "{text}");
        assert!(
            text.contains("exq_span_calls_total{span=\"cube\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE exq_join_component_rows histogram"),
            "{text}"
        );
        assert!(
            text.contains("exq_join_component_rows_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("exq_join_component_rows_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("exq_join_component_rows_sum 903"), "{text}");
        assert!(text.contains("exq_join_component_rows_count 2"), "{text}");
        assert!(
            text.contains("# TYPE exq_server_latency_explain_miss histogram"),
            "{text}"
        );
    }

    #[test]
    fn empty_histograms_still_expose_inf_bucket() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a".into(), 1);
        snap.histograms.insert(
            "empty.hist".into(),
            crate::HistogramSnapshot {
                kind: HistKind::Values,
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            },
        );
        let text = render(&snap);
        assert!(
            text.contains("exq_empty_hist_bucket{le=\"+Inf\"} 0"),
            "{text}"
        );
        check_prometheus(&text).unwrap();
    }

    #[test]
    fn checker_rejects_missing_help() {
        assert!(check_prometheus("exq_orphan 1\n").is_err());
    }

    #[test]
    fn checker_rejects_type_before_help() {
        let text = "# TYPE exq_x counter\n# HELP exq_x x\nexq_x 1\n";
        assert!(check_prometheus(text)
            .unwrap_err()
            .contains("TYPE before HELP"));
    }

    #[test]
    fn checker_rejects_non_monotone_buckets() {
        let text = concat!(
            "# HELP exq_h h\n",
            "# TYPE exq_h histogram\n",
            "exq_h_bucket{le=\"1\"} 5\n",
            "exq_h_bucket{le=\"2\"} 3\n",
            "exq_h_bucket{le=\"+Inf\"} 5\n",
            "exq_h_sum 9\n",
            "exq_h_count 5\n",
        );
        assert!(check_prometheus(text)
            .unwrap_err()
            .contains("cumulative bucket counts decreased"));
    }

    #[test]
    fn checker_rejects_missing_inf_bucket() {
        let text = concat!(
            "# HELP exq_h h\n",
            "# TYPE exq_h histogram\n",
            "exq_h_bucket{le=\"1\"} 5\n",
            "exq_h_sum 9\n",
            "exq_h_count 5\n",
        );
        assert!(check_prometheus(text).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn checker_rejects_inf_count_mismatch() {
        let text = concat!(
            "# HELP exq_h h\n",
            "# TYPE exq_h histogram\n",
            "exq_h_bucket{le=\"+Inf\"} 5\n",
            "exq_h_sum 9\n",
            "exq_h_count 6\n",
        );
        assert!(check_prometheus(text).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn checker_rejects_unordered_le_bounds() {
        let text = concat!(
            "# HELP exq_h h\n",
            "# TYPE exq_h histogram\n",
            "exq_h_bucket{le=\"4\"} 1\n",
            "exq_h_bucket{le=\"2\"} 2\n",
            "exq_h_bucket{le=\"+Inf\"} 2\n",
            "exq_h_sum 9\n",
            "exq_h_count 2\n",
        );
        assert!(check_prometheus(text)
            .unwrap_err()
            .contains("not strictly increasing"));
    }

    #[test]
    fn shard_counters_render_as_one_labelled_family() {
        let sink = MetricsSink::recording();
        sink.add("router.proxied.shard.0", 7);
        sink.add("router.proxied.shard.1", 3);
        sink.add("router.requests", 10);
        let text = render(&sink.snapshot());
        assert!(
            text.contains("# TYPE exq_router_proxied_shard counter"),
            "{text}"
        );
        assert!(
            text.contains("exq_router_proxied_shard{shard=\"0\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("exq_router_proxied_shard{shard=\"1\"} 3"),
            "{text}"
        );
        // One header for the family, not one per shard.
        assert_eq!(text.matches("# HELP exq_router_proxied_shard ").count(), 1);
        assert!(!text.contains("exq_router_proxied_shard_0"), "{text}");
        // The plain counter is untouched.
        assert!(text.contains("exq_router_requests 10"), "{text}");
        check_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn shard_split_requires_the_literal_shard_hop() {
        assert_eq!(
            shard_split("router.proxied.shard.12"),
            Some(("router.proxied.shard", "12"))
        );
        assert_eq!(shard_split("router.proxied.shard.x"), None);
        assert_eq!(shard_split("server.requests.2"), None);
        assert_eq!(shard_split("router.proxied.shard."), None);
        assert_eq!(shard_split("shard.0"), None);
        assert_eq!(shard_split("plain"), None);
    }

    #[test]
    fn sanitizer_folds_dots_and_dashes() {
        assert_eq!(sanitize_name("a.b-c"), "exq_a_b_c");
        assert_eq!(sanitize_name("server.latency"), "exq_server_latency");
    }
}
