//! Versioned, exact-integer wire encoding for [`Snapshot`]s.
//!
//! The router front scrapes every worker's snapshot and merges them
//! into one fleet exposition. That transport must preserve `u64`
//! counters and `u128` histogram sums *exactly* — round-tripping
//! through a general JSON parser would squash them into `f64` and lose
//! integer exactness above 2^53 — so snapshots travel in a purpose-
//! built line format with a strict parser, in the same spirit as the
//! serve tier's cache snapshot files:
//!
//! ```text
//! exq-snapshot v1
//! c <value> <name>
//! s <count> <total_ns> <name>
//! h <kind> <count> <sum> <upper>:<count>,... <name>
//! n <escaped note>
//! e <bucket_upper> <trace_id> <hist name>
//! ```
//!
//! Names go last on each line so they may contain spaces; notes are
//! backslash-escaped onto one line. `e` lines carry retained-trace
//! exemplars ([`Exemplar`]): the worker's tail-sampling retention
//! attaches the trace id of a retained slow/error request to the
//! histogram bucket its latency landed in, and the front re-emits them
//! as comment lines on the fleet Prometheus exposition.
//!
//! Corruption policy mirrors the cache snapshot reader: any malformed
//! line makes [`decode_snapshot`] return an error and the caller treats
//! the whole scrape as failed (the front skips the shard and counts
//! `router.scrape.partial`) rather than merging a partial snapshot.

use crate::hist::{HistKind, HistogramSnapshot};
use crate::prom::sanitize_name;
use crate::{Snapshot, SpanStat};
use std::fmt::Write as _;

/// Magic first line of an encoded snapshot.
pub const WIRE_MAGIC: &str = "exq-snapshot v1";

/// A retained-trace exemplar: the trace id of a tail-sampled request,
/// attached to the latency-histogram bucket the request landed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Name of the owning histogram (e.g. `server.latency.explain.miss`).
    pub hist: String,
    /// Inclusive upper bound of the bucket the sample fell into.
    pub bucket_upper: u64,
    /// Trace id of the retained request.
    pub trace_id: u64,
}

impl Exemplar {
    /// Render as a Prometheus comment line anchored to the owning
    /// histogram bucket, e.g.
    /// `# exemplar exq_server_latency_explain_miss_bucket{le="1048575"} trace_id=42`.
    /// Free-form `#` comments are legal exposition text (and accepted by
    /// [`crate::check_prometheus`]); `shard`, when given, is added as a
    /// label so fleet-level exemplars stay attributable.
    pub fn to_prometheus_comment(&self, shard: Option<u64>) -> String {
        let family = sanitize_name(&self.hist);
        match shard {
            Some(shard) => format!(
                "# exemplar {family}_bucket{{le=\"{}\",shard=\"{shard}\"}} trace_id={}",
                self.bucket_upper, self.trace_id
            ),
            None => format!(
                "# exemplar {family}_bucket{{le=\"{}\"}} trace_id={}",
                self.bucket_upper, self.trace_id
            ),
        }
    }
}

/// Encode `snapshot` (plus retained-trace `exemplars`) in the versioned
/// wire format. Exact inverse of [`decode_snapshot`].
pub fn encode_snapshot(snapshot: &Snapshot, exemplars: &[Exemplar]) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(WIRE_MAGIC);
    out.push('\n');
    for (name, v) in &snapshot.counters {
        let _ = writeln!(out, "c {v} {name}");
    }
    for (name, stat) in &snapshot.spans {
        let _ = writeln!(out, "s {} {} {name}", stat.count, stat.total_ns);
    }
    for (name, hist) in &snapshot.histograms {
        let buckets = if hist.buckets.is_empty() {
            "-".to_string()
        } else {
            hist.buckets
                .iter()
                .map(|(upper, c)| format!("{upper}:{c}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            out,
            "h {} {} {} {buckets} {name}",
            hist.kind.as_str(),
            hist.count,
            hist.sum
        );
    }
    for note in &snapshot.notes {
        let _ = writeln!(out, "n {}", escape_line(note));
    }
    for exemplar in exemplars {
        let _ = writeln!(
            out,
            "e {} {} {}",
            exemplar.bucket_upper, exemplar.trace_id, exemplar.hist
        );
    }
    out
}

/// Decode a wire-encoded snapshot. Strict: a missing magic line, an
/// unknown record tag, or any malformed field is an error describing
/// the offending line — the caller discards the whole scrape.
pub fn decode_snapshot(text: &str) -> Result<(Snapshot, Vec<Exemplar>), String> {
    let mut lines = text.lines();
    if lines.next() != Some(WIRE_MAGIC) {
        return Err(format!("missing `{WIRE_MAGIC}` magic line"));
    }
    let mut snapshot = Snapshot::default();
    let mut exemplars = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let bad = || format!("malformed wire line: {line:?}");
        let (tag, rest) = line.split_once(' ').ok_or_else(bad)?;
        match tag {
            "c" => {
                let (value, name) = rest.split_once(' ').ok_or_else(bad)?;
                let value: u64 = value.parse().map_err(|_| bad())?;
                if snapshot.counters.insert(name.to_owned(), value).is_some() {
                    return Err(format!("duplicate counter: {name:?}"));
                }
            }
            "s" => {
                let mut fields = rest.splitn(3, ' ');
                let count: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let total_ns: u128 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let name = fields.next().ok_or_else(bad)?;
                let stat = SpanStat { count, total_ns };
                if snapshot.spans.insert(name.to_owned(), stat).is_some() {
                    return Err(format!("duplicate span: {name:?}"));
                }
            }
            "h" => {
                let mut fields = rest.splitn(5, ' ');
                let kind =
                    HistKind::parse(fields.next().ok_or_else(bad)?).ok_or_else(bad)?;
                let count: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let sum: u128 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let buckets_field = fields.next().ok_or_else(bad)?;
                let name = fields.next().ok_or_else(bad)?;
                let mut buckets = Vec::new();
                if buckets_field != "-" {
                    for pair in buckets_field.split(',') {
                        let (upper, c) = pair.split_once(':').ok_or_else(bad)?;
                        let upper: u64 = upper.parse().map_err(|_| bad())?;
                        let c: u64 = c.parse().map_err(|_| bad())?;
                        if buckets.last().is_some_and(|&(prev, _)| prev >= upper) {
                            return Err(format!("unsorted buckets in: {line:?}"));
                        }
                        buckets.push((upper, c));
                    }
                }
                let hist = HistogramSnapshot {
                    kind,
                    count,
                    sum,
                    buckets,
                };
                if snapshot.histograms.insert(name.to_owned(), hist).is_some() {
                    return Err(format!("duplicate histogram: {name:?}"));
                }
            }
            "n" => snapshot.notes.push(unescape_line(rest).ok_or_else(bad)?),
            "e" => {
                let mut fields = rest.splitn(3, ' ');
                let bucket_upper: u64 =
                    fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let trace_id: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let hist = fields.next().ok_or_else(bad)?.to_owned();
                exemplars.push(Exemplar {
                    hist,
                    bucket_upper,
                    trace_id,
                });
            }
            _ => return Err(format!("unknown wire record tag: {line:?}")),
        }
    }
    Ok((snapshot, exemplars))
}

/// Escape a note onto a single line: backslash, newline, and carriage
/// return get two-character escapes; everything else passes through.
fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_line`]. `None` on a dangling or unknown escape.
fn unescape_line(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsSink;
    use std::time::Duration;

    fn sample_snapshot() -> Snapshot {
        let sink = MetricsSink::recording();
        sink.add("server.requests", 7);
        // Values above 2^53: the reason this codec exists.
        sink.add("big.counter", u64::MAX - 3);
        sink.record_span("server.request", Duration::from_nanos(123_456));
        sink.observe("engine.rows", 42);
        sink.observe("engine.rows", u64::MAX);
        sink.observe_duration("server.latency.other", Duration::from_micros(250));
        sink.note("a note with spaces\nand a newline \\ backslash");
        sink.snapshot()
    }

    #[test]
    fn round_trips_exactly_including_u64_extremes() {
        let snapshot = sample_snapshot();
        let exemplars = vec![Exemplar {
            hist: "server.latency.explain.miss".into(),
            bucket_upper: 1_048_575,
            trace_id: 42,
        }];
        let text = encode_snapshot(&snapshot, &exemplars);
        let (decoded, decoded_exemplars) = decode_snapshot(&text).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded_exemplars, exemplars);
        // And the re-encoding is byte-identical (canonical form).
        assert_eq!(encode_snapshot(&decoded, &decoded_exemplars), text);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let text = encode_snapshot(&Snapshot::default(), &[]);
        assert_eq!(text, format!("{WIRE_MAGIC}\n"));
        let (decoded, exemplars) = decode_snapshot(&text).unwrap();
        assert_eq!(decoded, Snapshot::default());
        assert!(exemplars.is_empty());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",                                         // no magic
            "exq-snapshot v0\n",                        // wrong version
            &format!("{WIRE_MAGIC}\nx 1 name"),         // unknown tag
            &format!("{WIRE_MAGIC}\nc notanum name"),   // bad counter value
            &format!("{WIRE_MAGIC}\nc 5"),              // missing name
            &format!("{WIRE_MAGIC}\ns 1 nan name"),     // bad span total
            &format!("{WIRE_MAGIC}\nh bogus 1 1 - x"),  // bad kind
            &format!("{WIRE_MAGIC}\nh values 1 1 9 x"), // bad bucket pair
            &format!("{WIRE_MAGIC}\nh values 2 2 3:1,1:1 x"), // unsorted buckets
            &format!("{WIRE_MAGIC}\nc 1 a\nc 2 a"),     // duplicate counter
            &format!("{WIRE_MAGIC}\nn trailing\\"),     // dangling escape
            &format!("{WIRE_MAGIC}\ne 1 2"),            // exemplar missing hist
        ] {
            assert!(decode_snapshot(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn exemplar_comment_is_checker_safe() {
        let exemplar = Exemplar {
            hist: "server.latency.explain.miss".into(),
            bucket_upper: 1023,
            trace_id: 9,
        };
        assert_eq!(
            exemplar.to_prometheus_comment(None),
            "# exemplar exq_server_latency_explain_miss_bucket{le=\"1023\"} trace_id=9"
        );
        assert_eq!(
            exemplar.to_prometheus_comment(Some(1)),
            "# exemplar exq_server_latency_explain_miss_bucket{le=\"1023\",shard=\"1\"} trace_id=9"
        );
        // A comment line appended to a valid exposition keeps it valid.
        let sink = MetricsSink::recording();
        sink.observe_duration("server.latency.explain.miss", Duration::from_millis(1));
        let text = format!(
            "{}{}\n",
            sink.snapshot().to_prometheus(),
            exemplar.to_prometheus_comment(Some(0))
        );
        crate::check_prometheus(&text).unwrap();
    }
}
