//! # exq-obs — deterministic metrics & tracing for the explanation pipeline
//!
//! A zero-dependency observability layer: monotonic counters, hierarchical
//! span timers (hierarchy is lexical — dotted names such as
//! `cube_algo.derive` nest under `cube_algo`), log-bucketed histograms,
//! structured trace events, free-form notes, and a snapshot type that
//! renders to JSON, plain text, or Prometheus text exposition.
//!
//! ## The determinism contract
//!
//! Counters recorded by the engine are **bit-identical across thread
//! counts**. The hot paths achieve this with the same discipline the
//! `par` executor uses for results: per-operator counts are derived from
//! the stitched block outputs (or from effects, like `TupleSet::remove`
//! returning `true`, that are identical on the sequential and parallel
//! paths), then added to the sink once, on the orchestrating thread, in a
//! fixed order. Integer adds commute, so the few counters fed from worker
//! threads (e.g. fixpoint iterations under the naive candidate sweep) are
//! deterministic as well.
//!
//! Histograms extend the contract to distributions: bucketing is pure
//! integer arithmetic ([`bucket_index`]), so [`HistKind::Values`]
//! histograms fed deterministic samples have bit-identical bucket counts
//! at every thread count. [`HistKind::WallClock`] histograms (latencies)
//! are timing-dependent, exactly like span durations.
//!
//! Span timers measure wall-clock time and are *not* deterministic; every
//! comparison helper ([`Snapshot::normalized`]) therefore zeroes
//! durations — and collapses wall-clock histograms to their sample
//! count — while keeping call counts and value-histogram buckets, which
//! *are* deterministic.
//!
//! ## Usage
//!
//! ```
//! use exq_obs::MetricsSink;
//!
//! let sink = MetricsSink::recording();
//! sink.add("join.tuples", 42);
//! sink.observe("join.component_rows", 7);
//! let out = sink.time("explain.table", || 1 + 1);
//! assert_eq!(out, 2);
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("join.tuples"), 42);
//! assert_eq!(snap.spans["explain.table"].count, 1);
//! assert_eq!(snap.histograms["join.component_rows"].count, 1);
//! ```
//!
//! A [`MetricsSink::disabled`] sink (the default) makes every recording
//! call a no-op against a `None`, so instrumented code pays nothing when
//! observability is off.
//!
//! ## Tracing
//!
//! [`MetricsSink::enable_tracing`] arms a bounded ring buffer; from then
//! on every span guard pushes begin/end [`TraceEvent`]s, and
//! [`MetricsSink::trace_chrome_json`] exports the ring as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod prom;
mod trace;
mod wire;

pub use hist::{bucket_index, bucket_upper, HistKind, Histogram, HistogramSnapshot};
pub use prom::{check_prometheus, is_valid_metric_name, sanitize_name};
pub use trace::{current_tid, TraceEvent, TracePhase};
pub use wire::{decode_snapshot, encode_snapshot, Exemplar, WIRE_MAGIC};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trace::TraceBuf;

// ---------------------------------------------------------------------
// Sink & registry
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Registry {
    state: Mutex<State>,
    trace: Mutex<TraceBuf>,
    /// Fast-path flag mirroring `trace.capacity > 0`.
    trace_enabled: AtomicBool,
    /// Trace id stamped onto subsequent trace events (0 = none).
    active_trace: AtomicU64,
    /// All trace timestamps are relative to this instant.
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            state: Mutex::default(),
            trace: Mutex::default(),
            trace_enabled: AtomicBool::new(false),
            active_trace: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    hists: BTreeMap<String, HistEntry>,
    notes: Vec<String>,
}

#[derive(Debug)]
struct HistEntry {
    kind: HistKind,
    hist: Histogram,
}

/// A cheap, cloneable handle to a metrics registry.
///
/// Clones share the same registry, so a sink can be carried inside an
/// `ExecConfig` through the whole pipeline and drained once at the end.
/// The disabled sink (the [`Default`]) records nothing.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink(Option<Arc<Registry>>);

impl MetricsSink {
    /// A sink that records nothing; every call is a no-op.
    pub const fn disabled() -> MetricsSink {
        MetricsSink(None)
    }

    /// A fresh, empty, recording sink.
    pub fn recording() -> MetricsSink {
        MetricsSink(Some(Arc::new(Registry::default())))
    }

    /// Whether this sink records anything. Use to skip expensive
    /// formatting when observability is off.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `n` to the named monotonic counter (creating it at 0).
    pub fn add(&self, counter: &str, n: u64) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            match state.counters.get_mut(counter) {
                Some(slot) => *slot += n,
                None => {
                    state.counters.insert(counter.to_owned(), n);
                }
            }
        }
    }

    /// Add 1 to the named counter.
    pub fn incr(&self, counter: &str) {
        self.add(counter, 1);
    }

    /// Record one sample into the named value histogram. Values must be
    /// deterministic (row counts, sizes — not times); the histogram's
    /// bucket counts are part of the determinism contract.
    pub fn observe(&self, hist: &str, value: u64) {
        self.observe_kind(hist, value, HistKind::Values);
    }

    /// Record one wall-clock duration sample (as nanoseconds) into the
    /// named latency histogram. Collapsed by [`Snapshot::normalized`].
    pub fn observe_duration(&self, hist: &str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.observe_kind(hist, ns, HistKind::WallClock);
    }

    fn observe_kind(&self, hist: &str, value: u64, kind: HistKind) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            match state.hists.get_mut(hist) {
                Some(entry) => entry.hist.record(value),
                None => {
                    let mut entry = HistEntry {
                        kind,
                        hist: Histogram::new(),
                    };
                    entry.hist.record(value);
                    state.hists.insert(hist.to_owned(), entry);
                }
            }
        }
    }

    /// Record one completed span of `elapsed` wall-clock time.
    pub fn record_span(&self, span: &str, elapsed: Duration) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            match state.spans.get_mut(span) {
                Some(slot) => slot.absorb(elapsed),
                None => {
                    let mut stat = SpanStat::default();
                    stat.absorb(elapsed);
                    state.spans.insert(span.to_owned(), stat);
                }
            }
        }
    }

    /// Time `f` as one span named `span`, returning its value.
    pub fn time<T>(&self, span: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(span);
        f()
    }

    /// Open a span closed (and recorded) when the guard drops. When
    /// tracing is armed the guard also emits begin/end trace events.
    pub fn span(&self, span: &str) -> SpanGuard<'_> {
        let trace_span = self.trace_record(span, TracePhase::Begin, None);
        SpanGuard {
            sink: self,
            name: if self.is_enabled() {
                span.to_owned()
            } else {
                String::new()
            },
            start: self.is_enabled().then(Instant::now),
            trace_span,
        }
    }

    /// Append a free-form status note (e.g. `loaded 42 rows into R`).
    pub fn note(&self, text: impl AsRef<str>) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            state.notes.push(text.as_ref().to_owned());
        }
    }

    // -- tracing ------------------------------------------------------

    /// Arm the trace ring with room for `capacity` events (clamped to at
    /// least 2 so one begin/end pair always fits). From this point every
    /// span guard records begin/end [`TraceEvent`]s; once `capacity`
    /// events are buffered the oldest are dropped (and counted).
    pub fn enable_tracing(&self, capacity: usize) {
        if let Some(reg) = &self.0 {
            let mut buf = reg.trace.lock().expect("trace ring poisoned");
            buf.capacity = capacity.max(2);
            reg.trace_enabled.store(true, Ordering::Release);
        }
    }

    /// Whether trace events are currently being captured.
    pub fn tracing_enabled(&self) -> bool {
        match &self.0 {
            Some(reg) => reg.trace_enabled.load(Ordering::Acquire),
            None => false,
        }
    }

    /// Stamp `id` onto subsequent trace events (0 clears). Server
    /// handlers set this to the per-request trace id.
    pub fn set_trace(&self, id: u64) {
        if let Some(reg) = &self.0 {
            reg.active_trace.store(id, Ordering::Relaxed);
        }
    }

    /// A copy of the buffered trace events in capture order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(reg) => {
                let buf = reg.trace.lock().expect("trace ring poisoned");
                buf.events.iter().cloned().collect()
            }
        }
    }

    /// Export the trace ring as a Chrome trace-event JSON document
    /// (Perfetto / `chrome://tracing` compatible). Returns `None` when
    /// tracing was never armed. Orphaned begin/end records (ring
    /// overflow, still-open spans) are dropped so the exported document
    /// is always stack-balanced per thread.
    pub fn trace_chrome_json(&self) -> Option<String> {
        let reg = self.0.as_ref()?;
        if !reg.trace_enabled.load(Ordering::Acquire) {
            return None;
        }
        let buf = reg.trace.lock().expect("trace ring poisoned");
        let events: Vec<TraceEvent> = buf.events.iter().cloned().collect();
        Some(trace::chrome_json(&events, buf.dropped))
    }

    /// Push one trace event if tracing is armed; returns the span id so
    /// the matching `End` can reuse it.
    fn trace_record(&self, name: &str, phase: TracePhase, span_id: Option<u64>) -> Option<u64> {
        let reg = self.0.as_ref()?;
        if !reg.trace_enabled.load(Ordering::Acquire) {
            return None;
        }
        let ts_ns = u64::try_from(reg.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trace_id = reg.active_trace.load(Ordering::Relaxed);
        let mut buf = reg.trace.lock().expect("trace ring poisoned");
        let span_id = span_id.unwrap_or_else(|| {
            buf.next_span += 1;
            buf.next_span
        });
        buf.push(TraceEvent {
            name: name.to_owned(),
            phase,
            ts_ns,
            tid: current_tid(),
            trace_id,
            span_id,
        });
        Some(span_id)
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        match &self.0 {
            None => Snapshot::default(),
            Some(reg) => {
                let state = reg.state.lock().expect("metrics registry poisoned");
                Snapshot {
                    counters: state.counters.clone(),
                    spans: state.spans.clone(),
                    histograms: state
                        .hists
                        .iter()
                        .map(|(name, entry)| (name.clone(), entry.hist.snapshot(entry.kind)))
                        .collect(),
                    notes: state.notes.clone(),
                }
            }
        }
    }
}

/// Records one span into its sink when dropped. Created by
/// [`MetricsSink::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a MetricsSink,
    name: String,
    start: Option<Instant>,
    trace_span: Option<u64>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink.record_span(&self.name, start.elapsed());
        }
        if self.trace_span.is_some() {
            self.sink
                .trace_record(&self.name, TracePhase::End, self.trace_span);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans under this name. Deterministic.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans. *Not*
    /// deterministic; zeroed by [`Snapshot::normalized`].
    pub total_ns: u128,
}

impl SpanStat {
    fn absorb(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total_ns += elapsed.as_nanos();
    }
}

/// A point-in-time copy of a sink's contents, rendered to JSON by
/// [`Snapshot::to_json`], to plain text by [`Snapshot::render_pretty`],
/// or to Prometheus text exposition by [`Snapshot::to_prometheus`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters, sorted by name. Deterministic across thread
    /// counts (the engine's determinism contract).
    pub counters: BTreeMap<String, u64>,
    /// Span timers, sorted by name. Counts deterministic, durations not.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histograms, sorted by name. [`HistKind::Values`] buckets are
    /// deterministic; [`HistKind::WallClock`] buckets are not.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Status notes in recording order.
    pub notes: Vec<String>,
}

impl Snapshot {
    /// The value of a counter, 0 if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merge `other` into `self` — the fleet fan-in operation. Exact,
    /// associative, and commutative: counters sum; span call counts and
    /// wall-clock totals sum (durations stay quarantined, exactly as
    /// before — [`Snapshot::normalized`] still zeroes them); histograms
    /// merge bucket-wise via [`HistogramSnapshot::merge`], so merged
    /// [`HistKind::Values`] data is bit-identical to a single histogram
    /// fed the concatenated sample streams and fleet quantiles come from
    /// merged buckets, never averaged percentiles. Notes become the
    /// sorted set union, which is what keeps the operation commutative.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, stat) in &other.spans {
            let slot = self.spans.entry(name.clone()).or_default();
            slot.count += stat.count;
            slot.total_ns += stat.total_ns;
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        self.notes.extend(other.notes.iter().cloned());
        self.notes.sort();
        self.notes.dedup();
    }

    /// A copy with every wall-clock quantity zeroed, keeping everything
    /// deterministic: span call counts, value-histogram buckets, and
    /// wall-clock histograms' sample counts (their buckets and sums are
    /// dropped). Two normalized snapshots from runs at different thread
    /// counts must be equal; this is what the determinism tests compare.
    pub fn normalized(&self) -> Snapshot {
        let mut out = self.clone();
        for stat in out.spans.values_mut() {
            stat.total_ns = 0;
        }
        for hist in out.histograms.values_mut() {
            if hist.kind == HistKind::WallClock {
                hist.sum = 0;
                hist.buckets.clear();
            }
        }
        out
    }

    /// Render as a multi-line JSON document with sorted keys: a
    /// `"counters"` object first, then `"spans"` (objects with `count`
    /// and `total_ns`), then `"histograms"` (objects with `kind`,
    /// `count`, `sum`, and `[upper_bound, count]` bucket pairs), then
    /// `"notes"`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v}", escape_json(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
                escape_json(name),
                s.count,
                s.total_ns
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{ \"kind\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(name),
                h.kind,
                h.count,
                h.sum
            );
            for (j, (upper, c)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{upper}, {c}]");
            }
            out.push_str("] }");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\"", escape_json(note));
        }
        out.push_str(if self.notes.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Render in Prometheus text exposition format 0.0.4: counters as
    /// `counter` families, span totals as labelled
    /// `exq_span_calls_total`/`exq_span_ns_total` families, histograms
    /// as `histogram` families with cumulative `_bucket` samples, a
    /// terminal `le="+Inf"` bucket, and `_sum`/`_count`. The output
    /// passes [`check_prometheus`].
    pub fn to_prometheus(&self) -> String {
        prom::render(self)
    }

    /// Render as indented plain text. Spans are indented by their dotted
    /// depth, so `cube_algo.derive` prints nested under `cube_algo`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall-clock):\n");
            for (name, s) in &self.spans {
                let depth = name.matches('.').count();
                let _ = writeln!(
                    out,
                    "  {:indent$}{name}: {} call{}, {} total",
                    "",
                    s.count,
                    if s.count == 1 { "" } else { "s" },
                    format_ns(s.total_ns),
                    indent = depth * 2,
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let render = |v: u64| match h.kind {
                    HistKind::Values => v.to_string(),
                    HistKind::WallClock => format_ns(u128::from(v)),
                };
                let _ = writeln!(
                    out,
                    "  {name}: {} sample{}, p50 <= {}, p95 <= {}, p99 <= {}",
                    h.count,
                    if h.count == 1 { "" } else { "s" },
                    render(h.quantile(0.50)),
                    render(h.quantile(0.95)),
                    render(h.quantile(0.99)),
                );
            }
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for note in &self.notes {
                let _ = writeln!(out, "  - {note}");
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Format a nanosecond total with a human-friendly unit.
pub fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        sink.add("a", 3);
        sink.incr("b");
        sink.note("hello");
        sink.observe("h", 1);
        sink.observe_duration("d", Duration::from_millis(1));
        sink.enable_tracing(16);
        sink.set_trace(9);
        assert_eq!(sink.time("t", || 7), 7);
        assert!(!sink.tracing_enabled());
        assert!(sink.trace_chrome_json().is_none());
        assert!(sink.trace_events().is_empty());
        let snap = sink.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(snap.counter("a"), 0);
    }

    #[test]
    fn default_sink_is_disabled() {
        assert!(!MetricsSink::default().is_enabled());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let sink = MetricsSink::recording();
        sink.add("z.last", 1);
        sink.add("a.first", 2);
        sink.add("a.first", 3);
        sink.incr("a.first");
        let snap = sink.snapshot();
        assert_eq!(snap.counter("a.first"), 6);
        assert_eq!(snap.counter("z.last"), 1);
        assert_eq!(snap.counter("missing"), 0);
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn clones_share_one_registry() {
        let sink = MetricsSink::recording();
        let clone = sink.clone();
        sink.add("shared", 1);
        clone.add("shared", 2);
        assert_eq!(sink.snapshot().counter("shared"), 3);
    }

    #[test]
    fn sink_is_safe_to_feed_from_threads() {
        let sink = MetricsSink::recording();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        sink.incr("hits");
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().counter("hits"), 4000);
    }

    #[test]
    fn spans_record_counts_and_durations() {
        let sink = MetricsSink::recording();
        sink.time("outer", || {
            sink.time("outer.inner", || {
                std::thread::sleep(Duration::from_millis(1))
            })
        });
        sink.time("outer.inner", || ());
        let snap = sink.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer.inner"].count, 2);
        assert!(snap.spans["outer"].total_ns >= 1_000_000);
    }

    #[test]
    fn value_histograms_are_thread_count_invariant() {
        // The same multiset of samples, fed once from one thread and
        // once split across four, produces identical snapshots.
        let samples: Vec<u64> = (0..400).map(|i| (i * i) % 10_000).collect();
        let sequential = MetricsSink::recording();
        for &v in &samples {
            sequential.observe("h", v);
        }
        let parallel = MetricsSink::recording();
        std::thread::scope(|scope| {
            for chunk in samples.chunks(100) {
                let parallel = parallel.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        parallel.observe("h", v);
                    }
                });
            }
        });
        assert_eq!(
            sequential.snapshot().histograms["h"],
            parallel.snapshot().histograms["h"]
        );
    }

    #[test]
    fn normalized_zeroes_durations_but_keeps_counts() {
        let sink = MetricsSink::recording();
        sink.time("t", || std::thread::sleep(Duration::from_millis(1)));
        sink.add("c", 5);
        sink.observe("rows", 17);
        sink.observe_duration("latency", Duration::from_millis(2));
        let norm = sink.snapshot().normalized();
        assert_eq!(
            norm.spans["t"],
            SpanStat {
                count: 1,
                total_ns: 0
            }
        );
        assert_eq!(norm.counter("c"), 5);
        // Value histograms survive untouched; wall-clock ones collapse
        // to their (deterministic) sample count.
        assert_eq!(
            norm.histograms["rows"],
            HistogramSnapshot {
                kind: HistKind::Values,
                count: 1,
                sum: 17,
                buckets: vec![(19, 1)],
            }
        );
        assert_eq!(
            norm.histograms["latency"],
            HistogramSnapshot {
                kind: HistKind::WallClock,
                count: 1,
                sum: 0,
                buckets: Vec::new(),
            }
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let sink = MetricsSink::recording();
        sink.add("b", 2);
        sink.add("a", 1);
        sink.record_span("s", Duration::from_nanos(50));
        sink.observe("h", 0);
        sink.observe("h", 9);
        sink.note("a \"quoted\"\nnote");
        let json = sink.snapshot().to_json();
        assert_eq!(
            json,
            concat!(
                "{\n",
                "  \"counters\": {\n",
                "    \"a\": 1,\n",
                "    \"b\": 2\n",
                "  },\n",
                "  \"spans\": {\n",
                "    \"s\": { \"count\": 1, \"total_ns\": 50 }\n",
                "  },\n",
                "  \"histograms\": {\n",
                "    \"h\": { \"kind\": \"values\", \"count\": 2, \"sum\": 9, ",
                "\"buckets\": [[0, 1], [9, 1]] }\n",
                "  },\n",
                "  \"notes\": [\n",
                "    \"a \\\"quoted\\\"\\nnote\"\n",
                "  ]\n",
                "}"
            )
        );
    }

    #[test]
    fn empty_snapshot_json_is_valid() {
        let json = Snapshot::default().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"spans\": {},\n  \"histograms\": {},\n  \"notes\": []\n}"
        );
    }

    #[test]
    fn pretty_render_lists_everything() {
        let sink = MetricsSink::recording();
        sink.add("join.tuples", 9);
        sink.record_span("explain", Duration::from_micros(3));
        sink.record_span("explain.table", Duration::from_micros(2));
        sink.observe("join.component_rows", 40);
        sink.note("loaded 9 rows");
        let text = sink.snapshot().render_pretty();
        assert!(text.contains("join.tuples = 9"), "{text}");
        assert!(text.contains("explain: 1 call"), "{text}");
        assert!(text.contains("    explain.table: 1 call"), "{text}");
        assert!(
            text.contains("join.component_rows: 1 sample, p50 <= 47"),
            "{text}"
        );
        assert!(text.contains("- loaded 9 rows"), "{text}");
        assert_eq!(
            MetricsSink::disabled().snapshot().render_pretty(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn span_guards_emit_balanced_trace_events() {
        let sink = MetricsSink::recording();
        sink.enable_tracing(64);
        sink.set_trace(42);
        sink.time("outer", || sink.time("outer.inner", || ()));
        let events = sink.trace_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[1].name, "outer.inner");
        assert_eq!(events[2].phase, TracePhase::End);
        assert_eq!(events[3].name, "outer");
        assert_eq!(events[3].phase, TracePhase::End);
        assert!(events.iter().all(|e| e.trace_id == 42));
        // Begin/end of one span share an id; nested spans do not.
        assert_eq!(events[0].span_id, events[3].span_id);
        assert_ne!(events[0].span_id, events[1].span_id);
        // Timestamps are monotone within the thread.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let json = sink.trace_chrome_json().unwrap();
        assert!(json.contains("\"ph\": \"B\""), "{json}");
        assert!(json.contains("\"trace_id\": 42"), "{json}");
    }

    #[test]
    fn spans_before_tracing_armed_leave_no_events() {
        let sink = MetricsSink::recording();
        sink.time("early", || ());
        assert!(sink.trace_chrome_json().is_none());
        sink.enable_tracing(8);
        sink.time("late", || ());
        let events = sink.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "late");
        assert_eq!(sink.snapshot().spans["early"].count, 1);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let sink = MetricsSink::recording();
        sink.enable_tracing(4);
        for _ in 0..10 {
            sink.time("s", || ());
        }
        let events = sink.trace_events();
        assert_eq!(events.len(), 4);
        // The export still balances despite the evictions.
        let json = sink.trace_chrome_json().unwrap();
        assert!(json.contains("\"dropped_events\": 16"), "{json}");
    }

    /// Deterministic pseudo-random snapshot generator for the merge
    /// property tests (no external proptest dependency): an LCG drives
    /// a random mix of counter adds, span records, histogram samples,
    /// and notes over a small shared name pool so merges collide.
    fn random_snapshot(seed: u64, ops: usize) -> Snapshot {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let sink = MetricsSink::recording();
        for _ in 0..ops {
            let r = next();
            let name = format!("m.{}", r % 7);
            match r % 4 {
                0 => sink.add(&name, next() >> (next() % 32)),
                1 => sink.record_span(&name, Duration::from_nanos(next() % 1_000_000)),
                2 => sink.observe(&name, next() >> (next() % 50)),
                _ => sink.note(format!("note {}", next() % 5)),
            }
        }
        sink.snapshot()
    }

    fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        for seed in 0..24u64 {
            let a = random_snapshot(seed * 3 + 1, 60);
            let b = random_snapshot(seed * 3 + 2, 45);
            let c = random_snapshot(seed * 3 + 3, 30);
            let ab_c = merged(&merged(&a, &b), &c);
            let a_bc = merged(&a, &merged(&b, &c));
            assert_eq!(
                ab_c.to_json(),
                a_bc.to_json(),
                "associativity broke at seed {seed}"
            );
            assert_eq!(
                merged(&a, &b).to_json(),
                merged(&b, &a).to_json(),
                "commutativity broke at seed {seed}"
            );
            // Identity: merging an empty snapshot changes nothing but
            // note ordering, which merge canonicalizes either way.
            let mut canonical = a.clone();
            canonical.merge(&Snapshot::default());
            assert_eq!(merged(&canonical, &Snapshot::default()), canonical);
        }
    }

    #[test]
    fn merge_conserves_counters_and_histogram_mass() {
        for seed in 0..16u64 {
            let parts: Vec<Snapshot> = (0..4)
                .map(|i| random_snapshot(seed * 5 + i, 40))
                .collect();
            let mut fleet = Snapshot::default();
            for part in &parts {
                fleet.merge(part);
            }
            for name in fleet.counters.keys() {
                let sum: u64 = parts.iter().map(|p| p.counter(name)).sum();
                assert_eq!(fleet.counter(name), sum, "counter {name} not conserved");
            }
            for (name, hist) in &fleet.histograms {
                let count: u64 = parts
                    .iter()
                    .filter_map(|p| p.histograms.get(name))
                    .map(|h| h.count)
                    .sum();
                let mass: u64 = hist.buckets.iter().map(|&(_, c)| c).sum();
                assert_eq!(hist.count, count, "histogram {name} count not conserved");
                assert_eq!(mass, count, "histogram {name} lost bucket mass");
            }
            for (name, span) in &fleet.spans {
                let calls: u64 = parts
                    .iter()
                    .filter_map(|p| p.spans.get(name))
                    .map(|s| s.count)
                    .sum();
                assert_eq!(span.count, calls, "span {name} calls not conserved");
            }
        }
    }

    #[test]
    fn merged_values_histograms_stay_deterministic_under_normalize() {
        // Values histograms merged across "shards" survive normalization
        // untouched; wall-clock ones still collapse.
        let a = MetricsSink::recording();
        let b = MetricsSink::recording();
        for (sink, values) in [(&a, [1u64, 9, 100]), (&b, [9, 500, 4])] {
            for v in values {
                sink.observe("rows", v);
                sink.observe_duration("lat", Duration::from_nanos(v));
            }
        }
        let mut fleet = a.snapshot();
        fleet.merge(&b.snapshot());
        let norm = fleet.normalized();
        assert_eq!(norm.histograms["rows"], fleet.histograms["rows"]);
        assert_eq!(norm.histograms["lat"].count, 6);
        assert!(norm.histograms["lat"].buckets.is_empty());
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(
            escape_json("a\"b\\c\nd\re\tf\u{1}"),
            "a\\\"b\\\\c\\nd\\re\\tf\\u0001"
        );
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.5 us");
        assert_eq!(format_ns(2_500_000), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
