//! # exq-obs — deterministic metrics & tracing for the explanation pipeline
//!
//! A zero-dependency observability layer: monotonic counters, hierarchical
//! span timers (hierarchy is lexical — dotted names such as
//! `cube_algo.derive` nest under `cube_algo`), free-form notes, and a
//! snapshot type that renders to JSON or plain text.
//!
//! ## The determinism contract
//!
//! Counters recorded by the engine are **bit-identical across thread
//! counts**. The hot paths achieve this with the same discipline the
//! `par` executor uses for results: per-operator counts are derived from
//! the stitched block outputs (or from effects, like `TupleSet::remove`
//! returning `true`, that are identical on the sequential and parallel
//! paths), then added to the sink once, on the orchestrating thread, in a
//! fixed order. Integer adds commute, so the few counters fed from worker
//! threads (e.g. fixpoint iterations under the naive candidate sweep) are
//! deterministic as well.
//!
//! Span timers measure wall-clock time and are *not* deterministic; every
//! comparison helper ([`Snapshot::normalized`]) therefore zeroes
//! durations while keeping call counts, which *are* deterministic.
//!
//! ## Usage
//!
//! ```
//! use exq_obs::MetricsSink;
//!
//! let sink = MetricsSink::recording();
//! sink.add("join.tuples", 42);
//! let out = sink.time("explain.table", || 1 + 1);
//! assert_eq!(out, 2);
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("join.tuples"), 42);
//! assert_eq!(snap.spans["explain.table"].count, 1);
//! ```
//!
//! A [`MetricsSink::disabled`] sink (the default) makes every recording
//! call a no-op against a `None`, so instrumented code pays nothing when
//! observability is off.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Sink & registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Registry {
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    notes: Vec<String>,
}

/// A cheap, cloneable handle to a metrics registry.
///
/// Clones share the same registry, so a sink can be carried inside an
/// `ExecConfig` through the whole pipeline and drained once at the end.
/// The disabled sink (the [`Default`]) records nothing.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink(Option<Arc<Registry>>);

impl MetricsSink {
    /// A sink that records nothing; every call is a no-op.
    pub const fn disabled() -> MetricsSink {
        MetricsSink(None)
    }

    /// A fresh, empty, recording sink.
    pub fn recording() -> MetricsSink {
        MetricsSink(Some(Arc::new(Registry::default())))
    }

    /// Whether this sink records anything. Use to skip expensive
    /// formatting when observability is off.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `n` to the named monotonic counter (creating it at 0).
    pub fn add(&self, counter: &str, n: u64) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            match state.counters.get_mut(counter) {
                Some(slot) => *slot += n,
                None => {
                    state.counters.insert(counter.to_owned(), n);
                }
            }
        }
    }

    /// Add 1 to the named counter.
    pub fn incr(&self, counter: &str) {
        self.add(counter, 1);
    }

    /// Record one completed span of `elapsed` wall-clock time.
    pub fn record_span(&self, span: &str, elapsed: Duration) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            match state.spans.get_mut(span) {
                Some(slot) => slot.absorb(elapsed),
                None => {
                    let mut stat = SpanStat::default();
                    stat.absorb(elapsed);
                    state.spans.insert(span.to_owned(), stat);
                }
            }
        }
    }

    /// Time `f` as one span named `span`, returning its value.
    pub fn time<T>(&self, span: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(span);
        f()
    }

    /// Open a span closed (and recorded) when the guard drops.
    pub fn span(&self, span: &str) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            name: if self.is_enabled() {
                span.to_owned()
            } else {
                String::new()
            },
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Append a free-form status note (e.g. `loaded 42 rows into R`).
    pub fn note(&self, text: impl AsRef<str>) {
        if let Some(reg) = &self.0 {
            let mut state = reg.state.lock().expect("metrics registry poisoned");
            state.notes.push(text.as_ref().to_owned());
        }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        match &self.0 {
            None => Snapshot::default(),
            Some(reg) => {
                let state = reg.state.lock().expect("metrics registry poisoned");
                Snapshot {
                    counters: state.counters.clone(),
                    spans: state.spans.clone(),
                    notes: state.notes.clone(),
                }
            }
        }
    }
}

/// Records one span into its sink when dropped. Created by
/// [`MetricsSink::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a MetricsSink,
    name: String,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink.record_span(&self.name, start.elapsed());
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans under this name. Deterministic.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans. *Not*
    /// deterministic; zeroed by [`Snapshot::normalized`].
    pub total_ns: u128,
}

impl SpanStat {
    fn absorb(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total_ns += elapsed.as_nanos();
    }
}

/// A point-in-time copy of a sink's contents, rendered to JSON by
/// [`Snapshot::to_json`] or to plain text by [`Snapshot::render_pretty`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters, sorted by name. Deterministic across thread
    /// counts (the engine's determinism contract).
    pub counters: BTreeMap<String, u64>,
    /// Span timers, sorted by name. Counts deterministic, durations not.
    pub spans: BTreeMap<String, SpanStat>,
    /// Status notes in recording order.
    pub notes: Vec<String>,
}

impl Snapshot {
    /// The value of a counter, 0 if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A copy with every wall-clock duration zeroed, keeping span call
    /// counts. Two normalized snapshots from runs at different thread
    /// counts must be equal; this is what the determinism tests compare.
    pub fn normalized(&self) -> Snapshot {
        let mut out = self.clone();
        for stat in out.spans.values_mut() {
            stat.total_ns = 0;
        }
        out
    }

    /// Render as a multi-line JSON document with sorted keys: a
    /// `"counters"` object first, then `"spans"` (objects with `count`
    /// and `total_ns`), then `"notes"`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v}", escape_json(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
                escape_json(name),
                s.count,
                s.total_ns
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\"", escape_json(note));
        }
        out.push_str(if self.notes.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Render as indented plain text. Spans are indented by their dotted
    /// depth, so `cube_algo.derive` prints nested under `cube_algo`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall-clock):\n");
            for (name, s) in &self.spans {
                let depth = name.matches('.').count();
                let _ = writeln!(
                    out,
                    "  {:indent$}{name}: {} call{}, {} total",
                    "",
                    s.count,
                    if s.count == 1 { "" } else { "s" },
                    format_ns(s.total_ns),
                    indent = depth * 2,
                );
            }
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for note in &self.notes {
                let _ = writeln!(out, "  - {note}");
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Format a nanosecond total with a human-friendly unit.
pub fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        sink.add("a", 3);
        sink.incr("b");
        sink.note("hello");
        assert_eq!(sink.time("t", || 7), 7);
        let snap = sink.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(snap.counter("a"), 0);
    }

    #[test]
    fn default_sink_is_disabled() {
        assert!(!MetricsSink::default().is_enabled());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let sink = MetricsSink::recording();
        sink.add("z.last", 1);
        sink.add("a.first", 2);
        sink.add("a.first", 3);
        sink.incr("a.first");
        let snap = sink.snapshot();
        assert_eq!(snap.counter("a.first"), 6);
        assert_eq!(snap.counter("z.last"), 1);
        assert_eq!(snap.counter("missing"), 0);
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn clones_share_one_registry() {
        let sink = MetricsSink::recording();
        let clone = sink.clone();
        sink.add("shared", 1);
        clone.add("shared", 2);
        assert_eq!(sink.snapshot().counter("shared"), 3);
    }

    #[test]
    fn sink_is_safe_to_feed_from_threads() {
        let sink = MetricsSink::recording();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        sink.incr("hits");
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().counter("hits"), 4000);
    }

    #[test]
    fn spans_record_counts_and_durations() {
        let sink = MetricsSink::recording();
        sink.time("outer", || {
            sink.time("outer.inner", || {
                std::thread::sleep(Duration::from_millis(1))
            })
        });
        sink.time("outer.inner", || ());
        let snap = sink.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer.inner"].count, 2);
        assert!(snap.spans["outer"].total_ns >= 1_000_000);
    }

    #[test]
    fn normalized_zeroes_durations_but_keeps_counts() {
        let sink = MetricsSink::recording();
        sink.time("t", || std::thread::sleep(Duration::from_millis(1)));
        sink.add("c", 5);
        let norm = sink.snapshot().normalized();
        assert_eq!(
            norm.spans["t"],
            SpanStat {
                count: 1,
                total_ns: 0
            }
        );
        assert_eq!(norm.counter("c"), 5);
    }

    #[test]
    fn json_shape_is_stable() {
        let sink = MetricsSink::recording();
        sink.add("b", 2);
        sink.add("a", 1);
        sink.record_span("s", Duration::from_nanos(50));
        sink.note("a \"quoted\"\nnote");
        let json = sink.snapshot().to_json();
        assert_eq!(
            json,
            concat!(
                "{\n",
                "  \"counters\": {\n",
                "    \"a\": 1,\n",
                "    \"b\": 2\n",
                "  },\n",
                "  \"spans\": {\n",
                "    \"s\": { \"count\": 1, \"total_ns\": 50 }\n",
                "  },\n",
                "  \"notes\": [\n",
                "    \"a \\\"quoted\\\"\\nnote\"\n",
                "  ]\n",
                "}"
            )
        );
    }

    #[test]
    fn empty_snapshot_json_is_valid() {
        let json = Snapshot::default().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"spans\": {},\n  \"notes\": []\n}"
        );
    }

    #[test]
    fn pretty_render_lists_everything() {
        let sink = MetricsSink::recording();
        sink.add("join.tuples", 9);
        sink.record_span("explain", Duration::from_micros(3));
        sink.record_span("explain.table", Duration::from_micros(2));
        sink.note("loaded 9 rows");
        let text = sink.snapshot().render_pretty();
        assert!(text.contains("join.tuples = 9"), "{text}");
        assert!(text.contains("explain: 1 call"), "{text}");
        assert!(text.contains("    explain.table: 1 call"), "{text}");
        assert!(text.contains("- loaded 9 rows"), "{text}");
        assert_eq!(
            MetricsSink::disabled().snapshot().render_pretty(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(
            escape_json("a\"b\\c\nd\re\tf\u{1}"),
            "a\\\"b\\\\c\\nd\\re\\tf\\u0001"
        );
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.5 us");
        assert_eq!(format_ns(2_500_000), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
