//! Figure 12 — benefits of the data-cube optimization.
//!
//! Compares Algorithm 1 ("Cube") against the naive per-candidate
//! evaluation ("No Cube") for `Q_Race`: (a) varying the data size at two
//! explanation attributes, (b) varying the number of attributes at a
//! fixed size. The paper's result — cube wins by orders of magnitude and
//! the gap widens with both axes — should reproduce in shape; absolute
//! times differ (in-memory engine vs SQL Server 2012).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_bench::{natality_db, natality_dims, q_race};
use exq_core::cube_algo::{explanation_table, CubeAlgoConfig};
use exq_core::intervention::InterventionEngine;
use exq_core::naive::explanation_table_naive;
use exq_relstore::Universal;

fn fig12a_data_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_data_size_d2");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let db = natality_db(rows);
        let u = Universal::compute(&db, &db.full_view());
        let question = q_race(&db);
        let dims = natality_dims(&db, 2);

        group.bench_with_input(BenchmarkId::new("cube", rows), &rows, |b, _| {
            b.iter(|| {
                explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap()
            })
        });
        let engine = InterventionEngine::with_universal(&db, u.clone());
        group.bench_with_input(BenchmarkId::new("no_cube", rows), &rows, |b, _| {
            b.iter(|| explanation_table_naive(&db, &engine, &question, &dims).unwrap())
        });
    }
    group.finish();
}

fn fig12b_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12b_attributes_5k_rows");
    group.sample_size(10);
    let db = natality_db(5_000);
    let u = Universal::compute(&db, &db.full_view());
    let question = q_race(&db);
    for d in 1..=4usize {
        let dims = natality_dims(&db, d);
        group.bench_with_input(BenchmarkId::new("cube", d), &d, |b, _| {
            b.iter(|| {
                explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap()
            })
        });
        let engine = InterventionEngine::with_universal(&db, u.clone());
        group.bench_with_input(BenchmarkId::new("no_cube", d), &d, |b, _| {
            b.iter(|| explanation_table_naive(&db, &engine, &question, &dims).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig12a_data_size, fig12b_attributes);
criterion_main!(benches);
