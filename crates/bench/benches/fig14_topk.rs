//! Figure 14 — time to compute the minimal top-K explanations from a
//! materialized table M, comparing the three strategies of Section 4.3:
//! No-Minimal, Minimal-self-join, Minimal-append, for K ∈ {1, 10} and a
//! growing number of explanation attributes. The paper's crossover —
//! self-join competitive at few attributes, append much better at many —
//! should reproduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_bench::{natality_db, natality_dims, q_race};
use exq_core::cube_algo::{explanation_table, CubeAlgoConfig};
use exq_core::prelude::*;
use exq_core::topk::top_k;
use exq_relstore::Universal;

fn fig14_strategies(c: &mut Criterion) {
    let db = natality_db(100_000);
    let u = Universal::compute(&db, &db.full_view());
    let question = q_race(&db);

    for k in [1usize, 10] {
        let mut group = c.benchmark_group(format!("fig14_top{k}"));
        group.sample_size(10);
        for d in [2usize, 4, 6, 8] {
            let dims = natality_dims(&db, d);
            let m =
                explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap();
            for (name, strategy) in [
                ("no_minimal", TopKStrategy::NoMinimal),
                ("minimal_self_join", TopKStrategy::MinimalSelfJoin),
                ("minimal_append", TopKStrategy::MinimalAppend),
            ] {
                group.bench_with_input(BenchmarkId::new(name, d), &d, |b, _| {
                    b.iter(|| {
                        top_k(
                            &m,
                            DegreeKind::Intervention,
                            k,
                            strategy,
                            MinimalityPolarity::PreferGeneral,
                        )
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig14_strategies);
criterion_main!(benches);
