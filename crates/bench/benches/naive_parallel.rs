//! Ablation: parallelizing the naive (No Cube) engine.
//!
//! The paper's Section 6(i) notes the naive iterative algorithm is "too
//! slow" and asks for optimizations. Program **P** runs against shared
//! immutable state, so the per-candidate work partitions across threads;
//! this bench measures the scaling (and the point of diminishing returns
//! from the shared memory bandwidth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_bench::{natality_db, natality_dims, q_race};
use exq_core::intervention::InterventionEngine;
use exq_core::naive::{explanation_table_naive, explanation_table_naive_parallel};
use exq_relstore::Universal;

fn naive_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_parallel_10k_rows_d3");
    group.sample_size(10);
    let db = natality_db(10_000);
    let u = Universal::compute(&db, &db.full_view());
    let question = q_race(&db);
    let dims = natality_dims(&db, 3);
    let engine = InterventionEngine::with_universal(&db, u);

    group.bench_function("sequential", |b| {
        b.iter(|| explanation_table_naive(&db, &engine, &question, &dims).unwrap())
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| explanation_table_naive_parallel(&db, &engine, &question, &dims, t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, naive_scaling);
criterion_main!(benches);
