//! Figure 13 — time to compute the degrees of all explanations (table M)
//! with Algorithm 1: (a) data size vs time for `Q_Race` (two sub-queries)
//! and `Q_Marital` (four sub-queries), (b) number of explanation
//! attributes vs time (exponential growth in d expected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_bench::{natality_db, natality_dims, q_marital, q_race};
use exq_core::cube_algo::{explanation_table, CubeAlgoConfig};
use exq_relstore::Universal;

fn fig13a_data_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13a_data_size_d4");
    group.sample_size(10);
    for rows in [10_000usize, 50_000, 200_000] {
        let db = natality_db(rows);
        let u = Universal::compute(&db, &db.full_view());
        let dims = natality_dims(&db, 4);
        let race = q_race(&db);
        let marital = q_marital(&db);
        group.bench_with_input(BenchmarkId::new("q_race_m2", rows), &rows, |b, _| {
            b.iter(|| explanation_table(&db, &u, &race, &dims, CubeAlgoConfig::checked()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("q_marital_m4", rows), &rows, |b, _| {
            b.iter(|| {
                explanation_table(&db, &u, &marital, &dims, CubeAlgoConfig::checked()).unwrap()
            })
        });
    }
    group.finish();
}

fn fig13b_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13b_attributes_50k_rows");
    group.sample_size(10);
    let db = natality_db(50_000);
    let u = Universal::compute(&db, &db.full_view());
    let race = q_race(&db);
    let marital = q_marital(&db);
    for d in [2usize, 4, 6, 8] {
        let dims = natality_dims(&db, d);
        group.bench_with_input(BenchmarkId::new("q_race_m2", d), &d, |b, _| {
            b.iter(|| explanation_table(&db, &u, &race, &dims, CubeAlgoConfig::checked()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("q_marital_m4", d), &d, |b, _| {
            b.iter(|| {
                explanation_table(&db, &u, &marital, &dims, CubeAlgoConfig::checked()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig13a_data_size, fig13b_attributes);
criterion_main!(benches);
