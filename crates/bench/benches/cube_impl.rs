//! Ablation: the two data-cube implementations (DESIGN.md §5).
//!
//! Subset-enumeration touches `2^d` cells per input row; lattice roll-up
//! groups to finest cells first and rolls up level by level, so it wins
//! when the number of distinct cells is far below `rows × 2^d` — the
//! low-cardinality natality setting. COUNT(DISTINCT) carries key sets in
//! its roll-up states, so the gap narrows there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_bench::{natality_db, natality_dims};
use exq_relstore::aggregate::AggFunc;
use exq_relstore::cube::{compute, CubeStrategy};
use exq_relstore::{Predicate, Universal};

fn count_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_impl_count_star_20k");
    group.sample_size(10);
    let db = natality_db(20_000);
    let u = Universal::compute(&db, &db.full_view());
    for d in [2usize, 4, 6, 8] {
        let dims = natality_dims(&db, d);
        group.bench_with_input(BenchmarkId::new("subset_enumeration", d), &d, |b, _| {
            b.iter(|| {
                compute(
                    &db,
                    &u,
                    &Predicate::True,
                    &dims,
                    &AggFunc::CountStar,
                    CubeStrategy::SubsetEnumeration,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("lattice_rollup", d), &d, |b, _| {
            b.iter(|| {
                compute(
                    &db,
                    &u,
                    &Predicate::True,
                    &dims,
                    &AggFunc::CountStar,
                    CubeStrategy::LatticeRollup,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn count_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_impl_count_distinct_20k");
    group.sample_size(10);
    let db = natality_db(20_000);
    let u = Universal::compute(&db, &db.full_view());
    let id = db.schema().attr("Natality", "id").unwrap();
    for d in [2usize, 4, 6] {
        let dims = natality_dims(&db, d);
        for (name, strategy) in [
            ("subset_enumeration", CubeStrategy::SubsetEnumeration),
            ("lattice_rollup", CubeStrategy::LatticeRollup),
        ] {
            group.bench_with_input(BenchmarkId::new(name, d), &d, |b, _| {
                b.iter(|| {
                    compute(
                        &db,
                        &u,
                        &Predicate::True,
                        &dims,
                        &AggFunc::CountDistinct(id),
                        strategy,
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, count_star, count_distinct);
criterion_main!(benches);
