//! Program **P** microbenchmarks: fixpoint cost on the adversarial
//! Example 3.7 chain (iterations grow linearly with the data) and on the
//! DBLP schema (bounded iterations via Proposition 3.11), plus the
//! underlying semijoin-reduction primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_core::explanation::Explanation;
use exq_core::intervention::InterventionEngine;
use exq_datagen::{chain, dblp};
use exq_relstore::{semijoin, Atom, Universal};

fn chain_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("intervention_chain");
    group.sample_size(10);
    for p in [8usize, 32, 128] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| engine.compute(&phi))
        });
    }
    group.finish();
}

fn dblp_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("intervention_dblp");
    group.sample_size(10);
    for base in [20usize, 60] {
        let db = dblp::generate(&dblp::DblpConfig {
            papers_per_year_base: base,
            ..dblp::DblpConfig::default()
        });
        let engine = InterventionEngine::new(&db);
        let inst = db.schema().attr("Author", "inst").unwrap();
        let phi = Explanation::new(vec![Atom::eq(inst, "ibm.com")]);
        group.bench_with_input(
            BenchmarkId::from_parameter(db.total_tuples()),
            &base,
            |b, _| b.iter(|| engine.compute(&phi)),
        );
    }
    group.finish();
}

fn unrolled_vs_fixpoint(c: &mut Criterion) {
    // Section 3.3 ablation: the non-recursive pipeline skips the
    // convergence test and the final confirming iteration.
    let mut group = c.benchmark_group("intervention_unrolled_vs_fixpoint");
    group.sample_size(10);
    let db = dblp::generate(&dblp::DblpConfig::default());
    let engine = InterventionEngine::new(&db);
    let inst = db.schema().attr("Author", "inst").unwrap();
    let phi = Explanation::new(vec![Atom::eq(inst, "ibm.com")]);
    group.bench_function("fixpoint", |b| b.iter(|| engine.compute(&phi)));
    group.bench_function("unrolled", |b| {
        b.iter(|| {
            engine
                .compute_unrolled(&phi)
                .expect("dblp schema is unrollable")
        })
    });
    group.finish();
}

fn semijoin_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin_reduce_dblp");
    group.sample_size(10);
    let db = dblp::generate(&dblp::DblpConfig::default());
    // Remove 10% of publications so the reducer has real work.
    let publication = db.schema().relation_index("Publication").unwrap();
    let mut view = db.full_view();
    for row in (0..db.relation_len(publication)).step_by(10) {
        view.live[publication].remove(row);
    }
    group.bench_function("reduce", |b| b.iter(|| semijoin::reduce(&db, &view)));
    group.bench_function("universal", |b| b.iter(|| Universal::compute(&db, &view)));
    group.finish();
}

criterion_group!(
    benches,
    chain_fixpoint,
    dblp_fixpoint,
    unrolled_vs_fixpoint,
    semijoin_reduce
);
criterion_main!(benches);
