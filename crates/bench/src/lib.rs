//! Shared scenario builders for the benchmark harness and the criterion
//! benches: the exact user questions of the paper's evaluation
//! (Section 5), parameterized by dataset scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use exq_core::prelude::*;
use exq_datagen::natality::{self, NatalityConfig};
use exq_relstore::{AttrRef, Database, Predicate};

/// Generate a natality dataset of `rows` rows (seed fixed to the
/// experiments' seed).
pub fn natality_db(rows: usize) -> Database {
    natality::generate(&NatalityConfig { rows, seed: 7 })
}

/// Attribute lookup helper for the natality table.
pub fn nat_attr(db: &Database, name: &str) -> AttrRef {
    db.schema()
        .attr("Natality", name)
        .expect("natality attribute")
}

/// `Q_Race` (Section 5.1): `q1/q2` = good vs poor APGAR among Asian
/// mothers, direction high. Two COUNT(*) sub-queries.
pub fn q_race(db: &Database) -> UserQuestion {
    let ap = nat_attr(db, "ap");
    let race = nat_attr(db, "race");
    let q = |o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(ap, o),
            Predicate::eq(race, "Asian"),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::ratio(q("good"), q("poor")).with_smoothing(1e-4),
        Direction::High,
    )
}

/// `Q'_Race` (Section 5.1): the "more interesting" variant —
/// `(q1/q2)/(q3/q4)` comparing the Asian good/poor ratio against the
/// Black one, direction high. Four COUNT(*) sub-queries.
pub fn q_race_prime(db: &Database) -> UserQuestion {
    let ap = nat_attr(db, "ap");
    let race = nat_attr(db, "race");
    let q = |r: &str, o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(race, r),
            Predicate::eq(ap, o),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("Asian", "good"),
            q("Asian", "poor"),
            q("Black", "good"),
            q("Black", "poor"),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

/// `Q_Marital` (Section 5.1): `(q1/q2)/(q3/q4)` over marital status ×
/// APGAR, direction high. Four COUNT(*) sub-queries.
pub fn q_marital(db: &Database) -> UserQuestion {
    let ap = nat_attr(db, "ap");
    let marital = nat_attr(db, "marital");
    let q = |m: &str, o: &str| {
        AggregateQuery::count_star(Predicate::and([
            Predicate::eq(marital, m),
            Predicate::eq(ap, o),
        ]))
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("married", "good"),
            q("married", "poor"),
            q("unmarried", "good"),
            q("unmarried", "poor"),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

/// The explanation attributes used by the Section 5.1 performance runs,
/// in the order attributes are added as `d` grows (A, T, PN, Edu, then
/// the extended set of Figure 13b).
pub fn natality_dims(db: &Database, d: usize) -> Vec<AttrRef> {
    let names = [
        "age",
        "tobacco",
        "prenatal",
        "edu",
        "marital",
        "sex",
        "hypertension",
        "diabetes",
    ];
    assert!(
        d <= names.len(),
        "at most {} explanation attributes",
        names.len()
    );
    names[..d].iter().map(|n| nat_attr(db, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build() {
        let db = natality_db(500);
        let qr = q_race(&db);
        let qm = q_marital(&db);
        let qp = q_race_prime(&db);
        assert_eq!(qr.query.arity(), 2);
        assert_eq!(qm.query.arity(), 4);
        assert_eq!(qp.query.arity(), 4);
        assert!(qr.query.eval(&db).unwrap() > 1.0);
        assert_eq!(natality_dims(&db, 3).len(), 3);
        // Q'_Race needs enough rows for a stable Asian poor-count.
        let big = natality_db(20_000);
        assert!(
            q_race_prime(&big).query.eval(&big).unwrap() > 1.0,
            "Asian ratio exceeds Black ratio"
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dims_panics() {
        let db = natality_db(10);
        natality_dims(&db, 9);
    }
}
