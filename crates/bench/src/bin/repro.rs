//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage: `repro <experiment> [full]` where `<experiment>` is one of
//! `fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//! ex37 ex41 ablation scaling hybrid agreement pipeline loadtest
//! incremental export all`, or
//! `repro validate-bench FILE [pipeline|serve|incremental]` to check a
//! `BENCH_pipeline.json` / `BENCH_serve.json` / `BENCH_incremental.json`
//! against the committed
//! observability catalogue (scope defaults from the file name), or
//! `repro validate-prom FILE` to check a Prometheus text-exposition
//! dump (e.g. a curl of `GET /metrics`) for well-formedness. The
//! optional `full` flag runs the timing sweeps at
//! paper scale (millions of rows); the default keeps every experiment
//! under a few seconds. `loadtest` additionally accepts `--router`,
//! which asserts the router tier's ≥3x 1→4-worker throughput scaling
//! bar (the router phase itself always runs and lands its section in
//! `BENCH_serve.json`). Build with `--release` for meaningful timings.

use exq_bench::{natality_db, natality_dims, q_marital, q_race, q_race_prime};
use exq_core::causal::DataCausalGraph;
use exq_core::explanation::Explanation;
use exq_core::intervention::InterventionEngine;
use exq_core::prelude::*;
use exq_core::{cube_algo, naive, topk};
use exq_datagen::{chain, dblp, geodblp, paper_examples};
use exq_relstore::aggregate::{evaluate, AggFunc};
use exq_relstore::cube::CubeStrategy;
use exq_relstore::{AppendBatch, Database, ExecConfig, MetricsSink, Predicate, Universal, Value};
use std::time::{Duration, Instant};

/// The committed observability catalogue: every name here must appear
/// in the bench snapshot matching its scope — `server.*` names in
/// `BENCH_serve.json`, `ingest.*` names in `BENCH_incremental.json`,
/// everything else in `BENCH_pipeline.json` (see `validate-bench`).
/// Plain lines are counters; `span:` and `hist:` prefixes catalogue
/// spans and histograms respectively.
const COUNTER_CATALOGUE: &str = include_str!("../../../../assets/obs/counters.txt");

/// Which bench snapshot a catalogued counter belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchScope {
    /// The engine pipeline (`repro pipeline` → `BENCH_pipeline.json`).
    Pipeline,
    /// The explanation server (`repro loadtest` → `BENCH_serve.json`).
    Serve,
    /// Live ingestion (`repro incremental` → `BENCH_incremental.json`).
    Incremental,
}

impl BenchScope {
    fn name(self) -> &'static str {
        match self {
            BenchScope::Pipeline => "pipeline",
            BenchScope::Serve => "serve",
            BenchScope::Incremental => "incremental",
        }
    }
}

/// Which snapshot a catalogued name is pinned in. Note a serve snapshot
/// also *contains* `ingest.*` names (the server pre-registers them and
/// live appends emit them), but they are pinned by the incremental
/// scope; `validate-bench` only checks presence, never absence.
fn scope_of(name: &str) -> BenchScope {
    if name.starts_with("server.") || name.starts_with("router.") {
        BenchScope::Serve
    } else if name.starts_with("ingest.") {
        BenchScope::Incremental
    } else {
        BenchScope::Pipeline
    }
}

/// What kind of metric a catalogue line names.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EntryKind {
    /// Plain line — a monotone counter in the `counters` section.
    Counter,
    /// `span:NAME` — a timed span in the `spans` section.
    Span,
    /// `hist:NAME` — a histogram in the `histograms` section.
    Hist,
}

impl EntryKind {
    fn label(self) -> &'static str {
        match self {
            EntryKind::Counter => "counter",
            EntryKind::Span => "span",
            EntryKind::Hist => "histogram",
        }
    }
}

fn required_entries(scope: BenchScope) -> Vec<(EntryKind, &'static str)> {
    COUNTER_CATALOGUE
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        // `aux ` entries are emitted by the library but not pinned by
        // any benchmark run (data/strategy-dependent names); only the
        // lint catalogue audit checks those.
        .filter(|l| !l.starts_with("aux "))
        .map(|line| {
            if let Some(name) = line.strip_prefix("span:") {
                (EntryKind::Span, name)
            } else if let Some(name) = line.strip_prefix("hist:") {
                (EntryKind::Hist, name)
            } else {
                (EntryKind::Counter, line)
            }
        })
        .filter(move |(_, name)| scope_of(name) == scope)
        .collect()
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn median(durations: &[Duration]) -> Duration {
    let mut sorted = durations.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// Split a DBLP instance for the live-ingestion runs: hold back 10% of
/// the `Authored` rows (the bridge relation nothing references, so every
/// prefix stays foreign-key-consistent) and return the initial database
/// plus `batches` append batches covering the held-back tail.
fn split_dblp(full_db: &Database, batches: usize) -> (Database, Vec<AppendBatch>) {
    let authored = full_db.schema().relation_index("Authored").unwrap();
    let keep = full_db.relation(authored).len() * 9 / 10;
    let mut initial = Database::new(full_db.schema().clone());
    for r in 0..full_db.schema().relation_count() {
        let name = full_db.schema().relation(r).name.clone();
        let limit = if r == authored {
            keep
        } else {
            full_db.relation(r).len()
        };
        for row in full_db.relation(r).rows().take(limit) {
            initial.insert(&name, row.to_vec()).unwrap();
        }
    }
    let held: Vec<Vec<Value>> = full_db
        .relation(authored)
        .rows()
        .skip(keep)
        .map(|row| row.to_vec())
        .collect();
    let chunk = held.len().div_ceil(batches).max(1);
    let split = held
        .chunks(chunk)
        .map(|c| vec![("Authored".to_string(), c.to_vec())])
        .collect();
    (initial, split)
}

/// Render an append batch as the `POST /v1/datasets/{name}/rows` body.
fn append_body(batch: &[(String, Vec<Vec<Value>>)]) -> String {
    use std::fmt::Write as _;
    let cell = |v: &Value| match v {
        Value::Str(s) => format!("\"{}\"", exq_obs::escape_json(s)),
        other => other.to_string(),
    };
    let mut body = String::from("{\"rows\": {");
    for (i, (rel, rows)) in batch.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let _ = write!(body, "\"{}\": [", exq_obs::escape_json(rel));
        for (j, row) in rows.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let cells: Vec<String> = row.iter().map(cell).collect();
            let _ = write!(body, "[{}]", cells.join(","));
        }
        body.push(']');
    }
    body.push_str("}}");
    body
}

/// Zero every `"MARKER": N` integer in a response body.
fn zero_json_int(body: &str, marker: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(at) = rest.find(marker) {
        let digits_from = at + marker.len();
        out.push_str(&rest[..digits_from]);
        out.push('0');
        rest = rest[digits_from..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Zero every `"total_ns": N` in a response body. Explain documents
/// embed their per-request metrics block, whose span durations are
/// wall-clock; scrubbing them (and nothing else) is what makes two
/// servers' answers comparable byte for byte.
fn scrub_total_ns(body: &str) -> String {
    zero_json_int(body, "\"total_ns\": ")
}

/// Zero the cost block's `"epoch": N` on top of [`scrub_total_ns`].
/// Used only where the compared servers legitimately sit at different
/// epochs (a live-appended dataset vs a rebuild-from-scratch): the
/// explanation must still match byte for byte, but the cost block
/// truthfully reports each server's own epoch.
fn scrub_total_ns_and_epoch(body: &str) -> String {
    zero_json_int(&scrub_total_ns(body), "\"epoch\": ")
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn fig1() {
    header("Figure 1 — SIGMOD publications in five-year windows, com vs edu");
    let db = dblp::generate(&dblp::DblpConfig::default());
    let u = Universal::compute(&db, &db.full_view());
    println!("{:<12} {:>8} {:>8}", "window", "com", "edu");
    let mut start = 1985;
    while start + 4 <= 2011 {
        let w = (start, start + 4);
        let com = dblp::window_count(&db, &u, "SIGMOD", "com", w);
        let edu = dblp::window_count(&db, &u, "SIGMOD", "edu", w);
        println!("{:<12} {:>8} {:>8}", format!("{}-{}", w.0, w.1), com, edu);
        start += 3;
    }
}

fn bump_question(db: &Database) -> UserQuestion {
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let dom = schema.attr("Author", "dom").unwrap();
    let q = |d: &str, w: (i32, i32)| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            Predicate::eq(venue, "SIGMOD"),
            Predicate::eq(dom, d),
            Predicate::between(year, w.0, w.1),
        ]),
    };
    UserQuestion::new(
        NumericalQuery::double_ratio(
            q("com", (2000, 2004)),
            q("com", (2007, 2011)),
            q("edu", (2000, 2004)),
            q("edu", (2007, 2011)),
        )
        .with_smoothing(1e-4),
        Direction::High,
    )
}

fn fig2() {
    header("Figure 2 — top explanations for the bump (by intervention)");
    let db = dblp::generate(&dblp::DblpConfig::default());
    let u = Universal::compute(&db, &db.full_view());
    let question = bump_question(&db);
    println!(
        "Q(D) = {:.3} (dir = high)",
        question.query.eval(&db).unwrap()
    );
    let dims = vec![
        db.schema().attr("Author", "inst").unwrap(),
        db.schema().attr("Author", "name").unwrap(),
    ];
    let (m, t) = timed(|| {
        cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap()
    });
    println!("table M: {} candidates, computed in {:?}", m.len(), t);
    println!("{:<4} explanation", "rank");
    for r in topk::top_k(
        &m,
        DegreeKind::Intervention,
        9,
        TopKStrategy::MinimalAppend,
        MinimalityPolarity::PreferGeneral,
    ) {
        println!(
            "{:<4} {}  (mu_interv = {:.4})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }
}

fn fig6() {
    header("Figure 6 — schema and data causal graphs of the running example");
    let db = paper_examples::figure3();
    let g = db.schema().causal_graph();
    println!("schema causal graph (relations):");
    for &(a, b) in &g.solid {
        println!(
            "  {} ──▶ {}",
            db.schema().relation(a).name,
            db.schema().relation(b).name
        );
    }
    for &(a, b) in &g.dotted {
        println!(
            "  {} ┄┄▶ {}",
            db.schema().relation(a).name,
            db.schema().relation(b).name
        );
    }
    println!("\ndata causal graph (tuples):");
    let dg = DataCausalGraph::build(&db);
    print!("{}", dg.render(&db));
}

fn fig7_8_9(rows: usize) {
    header("Figures 7/8/9 — natality contingency tables and ratios");
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    let count = |pairs: &[(&str, &str)]| {
        let sel = Predicate::and(
            pairs
                .iter()
                .map(|(a, v)| Predicate::eq(db.schema().attr("Natality", a).unwrap(), *v)),
        );
        evaluate(&db, &u, &sel, &AggFunc::CountStar).unwrap()
    };
    println!("rows = {rows}");
    println!("\nFigure 7 — AP x Race:");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9}",
        "AP", "White", "Black", "AmInd", "Asian"
    );
    for ap in ["poor", "good"] {
        let r: Vec<f64> = ["White", "Black", "AmInd", "Asian"]
            .iter()
            .map(|x| count(&[("ap", ap), ("race", x)]))
            .collect();
        println!("{:<6} {:>9} {:>9} {:>9} {:>9}", ap, r[0], r[1], r[2], r[3]);
    }
    println!("\nFigure 7 — AP x Marital:");
    println!("{:<6} {:>9} {:>9}", "AP", "married", "unmarr.");
    for ap in ["poor", "good"] {
        println!(
            "{:<6} {:>9} {:>9}",
            ap,
            count(&[("ap", ap), ("marital", "married")]),
            count(&[("ap", ap), ("marital", "unmarried")])
        );
    }
    println!("\nFigure 8 — good/poor ratio by race (Q_Race observation):");
    for r in ["White", "Black", "AmInd", "Asian"] {
        println!(
            "  {:<6} {:.1}",
            r,
            count(&[("ap", "good"), ("race", r)]) / count(&[("ap", "poor"), ("race", r)]).max(1.0)
        );
    }
    println!("\nFigure 9 — good/poor ratio by marital status (Q_Marital observation):");
    for m in ["married", "unmarried"] {
        println!(
            "  {:<10} {:.1}",
            m,
            count(&[("ap", "good"), ("marital", m)])
                / count(&[("ap", "poor"), ("marital", m)]).max(1.0)
        );
    }
    println!(
        "\nQ_Race(D)    = {:.2}",
        q_race(&db).query.eval(&db).unwrap()
    );
    println!(
        "Q'_Race(D)   = {:.2} (Asian ratio vs Black ratio)",
        q_race_prime(&db).query.eval(&db).unwrap()
    );
    println!(
        "Q_Marital(D) = {:.2}",
        q_marital(&db).query.eval(&db).unwrap()
    );
}

fn fig10_11(rows: usize) {
    header("Figures 10/11 — top minimal explanations (natality)");
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    let support = 1000.0 * rows as f64 / 4_000_000.0;
    let attr = |n: &str| db.schema().attr("Natality", n).unwrap();
    let dims_race = vec![
        attr("age"),
        attr("tobacco"),
        attr("prenatal"),
        attr("edu"),
        attr("marital"),
    ];
    let dims_marital = vec![
        attr("age"),
        attr("tobacco"),
        attr("prenatal"),
        attr("edu"),
        attr("race"),
    ];
    for (name, question, dims) in [
        ("Q_Race", q_race(&db), dims_race),
        ("Q_Marital", q_marital(&db), dims_marital),
    ] {
        let mut m =
            cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())
                .unwrap();
        m.retain_min_support(support);
        println!(
            "\n--- {name} (Q(D) = {:.2}) ---",
            question.query.eval(&db).unwrap()
        );
        println!("Figure 10 — top-5 minimal by intervention:");
        for r in topk::top_k(
            &m,
            DegreeKind::Intervention,
            5,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        ) {
            println!(
                "  {}. {}  (mu_interv = {:.3})",
                r.rank,
                r.explanation.display(&db),
                r.degree
            );
        }
        println!("Figure 11 — top-3 minimal by aggravation:");
        for r in topk::top_k(
            &m,
            DegreeKind::Aggravation,
            3,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        ) {
            println!(
                "  {}. {}  (mu_aggr = {:.3})",
                r.rank,
                r.explanation.display(&db),
                r.degree
            );
        }
    }
}

fn fig12(full: bool) {
    header("Figure 12 — benefits of the data cube (Cube vs No Cube, Q_Race)");
    // (a) data size vs time, two explanation attributes.
    let sizes: &[usize] = if full {
        &[400, 4_000, 40_000, 200_000, 1_000_000]
    } else {
        &[400, 4_000, 40_000]
    };
    println!("(a) data size vs time (d = 2 attributes)");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "rows", "cube", "no-cube", "speedup"
    );
    for &rows in sizes {
        let db = natality_db(rows);
        let u = Universal::compute(&db, &db.full_view());
        let question = q_race(&db);
        let dims = natality_dims(&db, 2);
        let (_, t_cube) = timed(|| {
            cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        let engine = InterventionEngine::with_universal(&db, u);
        let (_, t_naive) =
            timed(|| naive::explanation_table_naive(&db, &engine, &question, &dims).unwrap());
        println!(
            "{:>10} {:>12?} {:>12?} {:>8.1}x",
            rows,
            t_cube,
            t_naive,
            t_naive.as_secs_f64() / t_cube.as_secs_f64().max(1e-9)
        );
    }

    // (b) number of attributes vs time, fixed size (paper: 1% ≈ 40k rows).
    let rows = if full { 40_000 } else { 10_000 };
    println!("\n(b) #attributes vs time ({rows} rows)");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "attrs", "cube", "no-cube", "speedup"
    );
    let db = natality_db(rows);
    let u0 = Universal::compute(&db, &db.full_view());
    let question = q_race(&db);
    let dmax = if full { 5 } else { 4 };
    for d in 1..=dmax {
        let dims = natality_dims(&db, d);
        let (_, t_cube) = timed(|| {
            cube_algo::explanation_table(&db, &u0, &question, &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        let engine = InterventionEngine::with_universal(&db, u0.clone());
        let (_, t_naive) =
            timed(|| naive::explanation_table_naive(&db, &engine, &question, &dims).unwrap());
        println!(
            "{:>6} {:>12?} {:>12?} {:>8.1}x",
            d,
            t_cube,
            t_naive,
            t_naive.as_secs_f64() / t_cube.as_secs_f64().max(1e-9)
        );
    }
}

fn fig13(full: bool) {
    header("Figure 13 — time to compute all degrees (table M)");
    // (a) data size vs time, 4 attributes, Q_Race (m=2) vs Q_Marital (m=4).
    let sizes: &[usize] = if full {
        &[400, 4_000, 40_000, 400_000, 2_000_000, 4_000_000]
    } else {
        &[400, 4_000, 40_000, 400_000]
    };
    println!("(a) data size vs time (d = 4 attributes)");
    println!(
        "{:>10} {:>14} {:>14}",
        "rows", "Q_Race (m=2)", "Q_Marital (m=4)"
    );
    for &rows in sizes {
        let db = natality_db(rows);
        let u = Universal::compute(&db, &db.full_view());
        let dims = natality_dims(&db, 4);
        let (_, t_race) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_race(&db), &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        let (_, t_marital) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_marital(&db), &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        println!("{:>10} {:>14?} {:>14?}", rows, t_race, t_marital);
    }

    // (b) #attributes vs time, full dataset (paper: 4M; default scaled).
    let rows = if full { 4_000_000 } else { 200_000 };
    println!("\n(b) #attributes vs time ({rows} rows; log-scale growth expected)");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "attrs", "Q_Race", "Q_Marital", "|M| (Q_M)"
    );
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    for d in 2..=8 {
        let dims = natality_dims(&db, d);
        let (_, t_race) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_race(&db), &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        let (m, t_marital) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_marital(&db), &dims, CubeAlgoConfig::checked())
                .unwrap()
        });
        println!(
            "{:>6} {:>14?} {:>14?} {:>12}",
            d,
            t_race,
            t_marital,
            m.len()
        );
    }
}

fn fig14(full: bool) {
    header("Figure 14 — time to compute minimal top-K explanations (Q_Race)");
    let rows = if full { 4_000_000 } else { 200_000 };
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    let question = q_race(&db);
    for k in [1usize, 10] {
        println!("\nK = {k} ({rows} rows)");
        println!(
            "{:>6} {:>10} {:>14} {:>16} {:>15}",
            "attrs", "|M|", "no-minimal", "minimal-selfjoin", "minimal-append"
        );
        for d in 2..=8 {
            let dims = natality_dims(&db, d);
            let m =
                cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())
                    .unwrap();
            let (_, t_no) = timed(|| {
                topk::top_k(
                    &m,
                    DegreeKind::Intervention,
                    k,
                    TopKStrategy::NoMinimal,
                    MinimalityPolarity::PreferGeneral,
                )
            });
            let (_, t_sj) = timed(|| {
                topk::top_k(
                    &m,
                    DegreeKind::Intervention,
                    k,
                    TopKStrategy::MinimalSelfJoin,
                    MinimalityPolarity::PreferGeneral,
                )
            });
            let (_, t_ap) = timed(|| {
                topk::top_k(
                    &m,
                    DegreeKind::Intervention,
                    k,
                    TopKStrategy::MinimalAppend,
                    MinimalityPolarity::PreferGeneral,
                )
            });
            println!(
                "{:>6} {:>10} {:>14?} {:>16?} {:>15?}",
                d,
                m.len(),
                t_no,
                t_sj,
                t_ap
            );
        }
    }
}

fn fig15() {
    header("Figure 15 — UK SIGMOD vs PODS (8-table join)");
    let db = geodblp::generate(&geodblp::GeoDblpConfig::default());
    let u = Universal::compute(&db, &db.full_view());
    let schema = db.schema();
    let pubid = schema.attr("Publication", "pubid").unwrap();
    let venue = schema.attr("Publication", "venue").unwrap();
    let year = schema.attr("Publication", "year").unwrap();
    let country = schema.attr("CountryG", "country").unwrap();

    println!("(a) venue share by country, 2001-2011");
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>9}",
        "country", "SIGMOD", "PODS", "%SIGMOD", "%PODS"
    );
    for c in [
        "USA",
        "Germany",
        "China",
        "Canada",
        "United Kingdom",
        "Netherlands",
        "France",
    ] {
        let n = |v: &str| {
            evaluate(
                &db,
                &u,
                &Predicate::and([
                    Predicate::eq(country, c),
                    Predicate::eq(venue, v),
                    Predicate::between(year, 2001, 2011),
                ]),
                &AggFunc::CountDistinct(pubid),
            )
            .unwrap()
        };
        let (s, p) = (n("SIGMOD"), n("PODS"));
        let tot = (s + p).max(1.0);
        println!(
            "{:<16} {:>7} {:>7} {:>8.1}% {:>8.1}%",
            c,
            s,
            p,
            100.0 * s / tot,
            100.0 * p / tot
        );
    }

    let uk = Predicate::eq(country, "United Kingdom");
    let q = |v: &str| AggregateQuery {
        func: AggFunc::CountDistinct(pubid),
        selection: Predicate::and([
            uk.clone(),
            Predicate::eq(venue, v),
            Predicate::between(year, 2001, 2011),
        ]),
    };
    let question = UserQuestion::new(
        NumericalQuery::ratio(q("SIGMOD"), q("PODS")).with_smoothing(1e-4),
        Direction::Low,
    );
    println!(
        "\nQ(D) = {:.3} (dir = low)",
        question.query.eval(&db).unwrap()
    );
    let dims = vec![
        schema.attr("Author", "name").unwrap(),
        schema.attr("AffiliationG", "inst").unwrap(),
        schema.attr("CityG", "city").unwrap(),
    ];
    let (m, t) = timed(|| {
        cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked()).unwrap()
    });
    println!("table M: {} candidates, computed in {t:?}", m.len());
    println!("\n(b) top explanations by intervention:");
    let (top, t_top) = timed(|| {
        topk::top_k(
            &m,
            DegreeKind::Intervention,
            10,
            TopKStrategy::MinimalSelfJoin,
            MinimalityPolarity::PreferGeneral,
        )
    });
    for r in top {
        println!(
            "  {:>2}. {}  (mu_interv = {:.4})",
            r.rank,
            r.explanation.display(&db),
            r.degree
        );
    }
    println!("minimal top-50 by self-join took {t_top:?}");
}

fn ex37() {
    header("Example 3.7 / Figure 5 — linear-iteration chain");
    println!("(n − 2 with full semijoin reduction per Rule (ii); the paper's");
    println!(" one-hop-per-iteration trace counts n − 1)");
    println!(
        "{:>4} {:>6} {:>11} {:>8} {:>10}",
        "p", "n", "iterations", "n-2", "deleted"
    );
    for p in [1, 2, 4, 8, 16, 32, 64] {
        let db = chain::chain(p);
        let engine = InterventionEngine::new(&db);
        let phi = Explanation::new(chain::chain_phi(&db).atoms.clone());
        let iv = engine.compute(&phi);
        let n = db.total_tuples();
        println!(
            "{:>4} {:>6} {:>11} {:>8} {:>10}",
            p,
            n,
            iv.iterations,
            n - 2,
            iv.total_deleted()
        );
    }
}

fn ex41() {
    header("Example 4.1 — the data cube over the Figure 3 instance");
    let db = paper_examples::figure3();
    let u = Universal::compute(&db, &db.full_view());
    let dims = vec![
        db.schema().attr("Author", "name").unwrap(),
        db.schema().attr("Publication", "year").unwrap(),
    ];
    let cube = exq_relstore::cube::compute(
        &db,
        &u,
        &Predicate::True,
        &dims,
        &AggFunc::CountStar,
        CubeStrategy::LatticeRollup,
    )
    .unwrap();
    println!("{:<8} {:<8} {:>8}", "name", "year", "count");
    let mut cells: Vec<(&exq_relstore::cube::Coord, &f64)> = cube.cells.iter().collect();
    cells.sort_by(|a, b| a.0.cmp(b.0).reverse());
    for (coord, v) in cells {
        let s: Vec<String> = coord
            .iter()
            .map(|x| {
                if x == &Value::Null {
                    "null".to_string()
                } else {
                    x.to_string()
                }
            })
            .collect();
        println!("{:<8} {:<8} {:>8}", s[0], s[1], v);
    }
}

fn scaling(full: bool) {
    header("Thread scaling — join → cube → Algorithm 1 at 1/2/4/8 threads");
    let threads = [1usize, 2, 4, 8];

    // (a) The Figure 13 workload: Algorithm 1 end-to-end (universal join,
    // per-sub-query cubes, degree derivation), Q_Race and Q_Marital.
    let rows = if full { 2_000_000 } else { 400_000 };
    let db = natality_db(rows);
    let dims = natality_dims(&db, 4);
    println!(
        "(host reports {} available core(s))",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    // Warm-up: fault in the data and let the allocator settle, so the
    // 1-thread row is not penalized for going first.
    {
        let u = Universal::compute(&db, &db.full_view());
        let _ =
            cube_algo::explanation_table(&db, &u, &q_race(&db), &dims, CubeAlgoConfig::checked())
                .unwrap();
    }
    println!("(a) Algorithm 1, Figure 13 workload ({rows} rows, d = 4)");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12} {:>9}",
        "threads", "join", "Q_Race M", "Q_Marital M", "total", "speedup"
    );
    let mut baseline: Option<(Duration, exq_core::table_m::ExplanationTable)> = None;
    for &n in &threads {
        let exec = ExecConfig::with_threads(n);
        let (u, t_join) = timed(|| Universal::compute_with(&db, &db.full_view(), &exec));
        let config = CubeAlgoConfig::checked().with_exec(exec);
        let (m_race, t_race) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_race(&db), &dims, config.clone()).unwrap()
        });
        let (_, t_marital) = timed(|| {
            cube_algo::explanation_table(&db, &u, &q_marital(&db), &dims, config.clone()).unwrap()
        });
        let total = t_join + t_race + t_marital;
        let speedup = baseline
            .as_ref()
            .map_or(1.0, |(t1, _)| t1.as_secs_f64() / total.as_secs_f64());
        match &baseline {
            None => baseline = Some((total, m_race)),
            Some((_, m1)) => assert_eq!(m1, &m_race, "tables must be bit-identical"),
        }
        println!(
            "{:>8} {:>12?} {:>12?} {:>14?} {:>12?} {:>8.2}x",
            n, t_join, t_race, t_marital, total, speedup
        );
    }

    // (b) The Figure 12 workload: the naive engine, parallel across
    // candidates (program P per candidate).
    let nrows = if full { 40_000 } else { 8_000 };
    let db = natality_db(nrows);
    let dims = natality_dims(&db, 2);
    let question = q_race(&db);
    let u = Universal::compute(&db, &db.full_view());
    let engine = InterventionEngine::with_universal(&db, u);
    println!("\n(b) naive engine, Figure 12 workload ({nrows} rows, d = 2)");
    println!("{:>8} {:>12} {:>9}", "threads", "table M", "speedup");
    let mut base: Option<Duration> = None;
    for &n in &threads {
        let exec = ExecConfig::with_threads(n);
        let (_, t) = timed(|| {
            naive::explanation_table_naive_with(&db, &engine, &question, &dims, &exec).unwrap()
        });
        let speedup = base
            .as_ref()
            .map_or(1.0, |t1| t1.as_secs_f64() / t.as_secs_f64());
        base.get_or_insert(t);
        println!("{:>8} {:>12?} {:>8.2}x", n, t, speedup);
    }
    println!("(every thread count produces a bit-identical table; asserted for (a))");
}

fn ablation_cube(full: bool) {
    header("Ablation — cube implementations (DESIGN.md §5)");
    let rows = if full { 200_000 } else { 50_000 };
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    println!("{rows} rows, COUNT(*)");
    println!(
        "{:>6} {:>16} {:>16} {:>12}",
        "attrs", "subset-enum", "lattice-rollup", "auto picks"
    );
    for d in [2usize, 4, 6, 8] {
        let dims = natality_dims(&db, d);
        let run = |strategy| {
            let (_, t) = timed(|| {
                exq_relstore::cube::compute(
                    &db,
                    &u,
                    &Predicate::True,
                    &dims,
                    &AggFunc::CountStar,
                    strategy,
                )
                .unwrap()
            });
            t
        };
        let t_subset = run(CubeStrategy::SubsetEnumeration);
        let t_rollup = run(CubeStrategy::LatticeRollup);
        let auto_pick = if t_rollup < t_subset {
            "rollup?"
        } else {
            "subset?"
        };
        println!(
            "{:>6} {:>16?} {:>16?} {:>12}",
            d, t_subset, t_rollup, auto_pick
        );
    }
    println!("(Auto samples the input and picks roll-up for low-cardinality data)");
}

fn agreement_table(rows: usize) {
    header("Degree agreement — Kendall tau between rankings (natality)");
    let db = natality_db(rows);
    let u = Universal::compute(&db, &db.full_view());
    println!("{rows} rows; tau(mu_interv, mu_aggr) per question and attribute set");
    println!(
        "{:>10} {:>6} {:>10} {:>8}",
        "question", "attrs", "|M|", "tau"
    );
    for (name, question) in [("Q_Race", q_race(&db)), ("Q_Marital", q_marital(&db))] {
        for d in [2usize, 4] {
            let dims = natality_dims(&db, d);
            let m =
                cube_algo::explanation_table(&db, &u, &question, &dims, CubeAlgoConfig::checked())
                    .unwrap();
            let tau = topk::rank_correlation(&m, DegreeKind::Intervention, DegreeKind::Aggravation);
            println!("{:>10} {:>6} {:>10} {:>8.3}", name, d, m.len(), tau);
        }
    }
    println!("(intervention and aggravation broadly disagree — Figures 10 vs 11)");
}

fn hybrid_table() {
    header("Hybrid degree vs exact intervention (Section 6(iii))");
    // COUNT(*) on the Figure 3 schema is not intervention-additive: the
    // hybrid (cube-computable) degree diverges from the exact one exactly
    // where the backward cascade deletes extra tuples.
    let db = paper_examples::figure3();
    let engine = InterventionEngine::new(&db);
    let u = engine.universal();
    let venue = db.schema().attr("Publication", "venue").unwrap();
    let name = db.schema().attr("Author", "name").unwrap();
    let question = UserQuestion::new(
        NumericalQuery::single(AggregateQuery::count_star(Predicate::eq(venue, "SIGMOD"))),
        Direction::High,
    );
    println!("Q = COUNT(*) of SIGMOD universal tuples (NOT additive), dir = high");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "phi", "mu_interv", "mu_hybrid", "mu_aggr"
    );
    for n in ["JG", "RR", "CM"] {
        let phi = Explanation::new(vec![exq_relstore::Atom::eq(name, n)]);
        let (mu_i, _) = exq_core::degree::mu_interv(&engine, &question, &phi).unwrap();
        let mu_h = exq_core::hybrid::mu_hybrid(&db, u, &question, &phi).unwrap();
        let mu_a = exq_core::degree::mu_aggr(&db, u, &question, &phi).unwrap();
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.3}",
            format!("[name = {n}]"),
            mu_i,
            mu_h,
            mu_a
        );
    }
    println!("(hybrid ≤ interv for counts; equality iff no extra cascade fires)");
}

fn export(dir: &str, nat_rows: usize) {
    header("Exporting synthetic datasets as CSV (for the `exq` CLI)");
    use exq_relstore::csv::dump_relation;
    use std::fs;
    fs::create_dir_all(dir).expect("create export directory");
    let write = |db: &Database, rel: &str, file: &str| {
        let path = format!("{dir}/{file}");
        let f = fs::File::create(&path).expect("create csv file");
        let n = dump_relation(db, rel, std::io::BufWriter::new(f)).expect("dump relation");
        println!("  {path}: {n} rows");
    };
    let db = natality_db(nat_rows);
    write(&db, "Natality", "natality.csv");
    let db = dblp::generate(&dblp::DblpConfig::default());
    write(&db, "Author", "dblp_author.csv");
    write(&db, "Authored", "dblp_authored.csv");
    write(&db, "Publication", "dblp_publication.csv");
    println!("\ntry, from the repository root:");
    println!("  cargo run --release --bin exq -- report \\");
    println!("    --schema assets/schemas/natality.exq --table Natality={dir}/natality.csv \\");
    println!("    --question assets/questions/q_race.exq \\");
    println!(
        "    --attrs Natality.age,Natality.tobacco,Natality.prenatal,Natality.edu,Natality.marital"
    );
}

fn pipeline(full: bool) {
    header("Pipeline metrics — one obs snapshot across the evaluation workloads");
    let sink = MetricsSink::recording();
    let exec = ExecConfig::auto().with_metrics(sink.clone());

    // Figure 12 workload: the naive engine (program P per candidate) and
    // Algorithm 1 on the same small natality instance — fixpoint and
    // per-engine candidate counters.
    let rows12 = if full { 40_000 } else { 4_000 };
    println!("figure 12 workload: naive + cube, {rows12} natality rows, d = 2");
    let db = natality_db(rows12);
    let dims = natality_dims(&db, 2);
    let question = q_race(&db);
    // Columnar projections are built once per dataset, up front, under the
    // same `prepare` span `PreparedDb` uses — otherwise the lazy build
    // lands inside whichever phase touches `db.columns()` first and the
    // join span stops measuring the join.
    sink.time("prepare", || {
        let _ = db.columns();
    });
    let u = Universal::compute_with(&db, &db.full_view(), &exec);
    let engine = InterventionEngine::with_universal(&db, u.clone()).with_exec(exec.clone());
    naive::explanation_table_naive_with(&db, &engine, &question, &dims, &exec).unwrap();
    let config = CubeAlgoConfig::checked().with_exec(exec.clone());
    cube_algo::explanation_table(&db, &u, &question, &dims, config.clone()).unwrap();

    // Figure 13 workload: Algorithm 1 at d = 4, both questions — join and
    // cube counters at scale.
    let rows13 = if full { 400_000 } else { 40_000 };
    println!("figure 13 workload: cube, {rows13} natality rows, d = 4");
    let db13 = natality_db(rows13);
    sink.time("prepare", || {
        let _ = db13.columns();
    });
    let u13 = Universal::compute_with(&db13, &db13.full_view(), &exec);
    let dims13 = natality_dims(&db13, 4);
    cube_algo::explanation_table(&db13, &u13, &q_race(&db13), &dims13, config.clone()).unwrap();
    cube_algo::explanation_table(&db13, &u13, &q_marital(&db13), &dims13, config).unwrap();

    // Multi-relation DBLP pass so the Yannakakis semijoin counters fire
    // (natality is a single relation — nothing to reduce there).
    println!("dblp workload: semijoin reduction + universal relation");
    let dblp_db = dblp::generate(&dblp::DblpConfig::default());
    sink.time("prepare", || {
        let _ = dblp_db.columns();
    });
    let mut view = dblp_db.full_view();
    exq_relstore::semijoin::reduce_in_place_with(&dblp_db, &mut view, &exec);
    Universal::compute_with(&dblp_db, &view, &exec);

    // Cold-explain before/after: the dictionary-coded columnar path (the
    // default) against the retained row-oriented reference on the same
    // figure-13 instance and executor. Timed with a plain executor so
    // these extra runs leave the metrics snapshot above untouched; min of
    // three repetitions each, to keep scheduler jitter out of the gate.
    println!("cold explain: columnar (default) vs row-oriented reference, d = 4");
    let time_path = |reference_rows: bool| -> Duration {
        let config = CubeAlgoConfig {
            reference_rows,
            ..CubeAlgoConfig::checked()
        }
        .with_exec(ExecConfig::auto());
        (0..3)
            .map(|_| {
                timed(|| {
                    cube_algo::explanation_table(
                        &db13,
                        &u13,
                        &q_race(&db13),
                        &dims13,
                        config.clone(),
                    )
                    .unwrap()
                })
                .1
            })
            .min()
            .expect("three repetitions")
    };
    let t_columnar = time_path(false);
    let t_rows = time_path(true);
    let cold_speedup = t_rows.as_secs_f64() / t_columnar.as_secs_f64().max(1e-9);
    println!("  columnar {t_columnar:?}  row reference {t_rows:?}  speedup {cold_speedup:.1}x");

    let snapshot = sink.snapshot();
    let doc = {
        use std::fmt::Write as _;
        let mut doc = String::from("{\n");
        let _ = writeln!(
            doc,
            "  \"cold_explain_ns\": {{ \"columnar\": {}, \"row_reference\": {}, \"speedup\": {cold_speedup:.2} }},",
            t_columnar.as_nanos(),
            t_rows.as_nanos(),
        );
        let snap = snapshot
            .to_json()
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    l.to_string()
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = writeln!(doc, "  \"snapshot\": {snap}");
        doc.push('}');
        doc.push('\n');
        doc
    };
    std::fs::write("BENCH_pipeline.json", doc).expect("write BENCH_pipeline.json");
    println!(
        "\nwrote BENCH_pipeline.json ({} counters, {} spans)",
        snapshot.counters.len(),
        snapshot.spans.len()
    );
    // The regression gate CI relies on: the columnar path must never fall
    // more than 10% behind the row-oriented reference it replaced.
    assert!(
        t_columnar.as_secs_f64() <= 1.1 * t_rows.as_secs_f64(),
        "columnar cold explain regressed >10% vs the row-oriented baseline \
         (columnar {t_columnar:?} vs rows {t_rows:?})"
    );
    let missing: Vec<String> = required_entries(BenchScope::Pipeline)
        .into_iter()
        .filter(|(kind, name)| match kind {
            EntryKind::Counter => !snapshot.counters.contains_key(*name),
            EntryKind::Span => !snapshot.spans.contains_key(*name),
            EntryKind::Hist => !snapshot.histograms.contains_key(*name),
        })
        .map(|(kind, name)| format!("{} {name}", kind.label()))
        .collect();
    assert!(
        missing.is_empty(),
        "catalogued metrics missing from the snapshot: {missing:?}"
    );
    println!(
        "all {} catalogued pipeline metrics present",
        required_entries(BenchScope::Pipeline).len()
    );
}

/// `repro loadtest` — exercise the exq-serve HTTP server on the DBLP
/// workload: measure cold (full pipeline) explain time, then hammer
/// `/v1/explain` with a fleet of parallel clients over a small set of
/// distinct questions so almost every request is a cache hit, and write
/// `BENCH_serve.json` with the latency distribution, cache hit rate,
/// and the server's final metrics snapshot. Asserts the ISSUE 4
/// acceptance bar: a cache-hit request is ≥10x faster than a cold
/// explain run over the same data.
///
/// Always follows up with [`router_phase`] — sharded workers behind an
/// in-process `exq-router` front — so the `router.*` catalogue scope
/// lands in `BENCH_serve.json`; the `--router` flag additionally
/// asserts the ISSUE 9 bar of ≥3x throughput at 4 workers vs 1.
fn loadtest(full: bool, router: bool) {
    header("Serve loadtest — /v1/explain latency and cache effectiveness (DBLP)");
    use exq_serve::{client, Catalog, ServerConfig};
    use std::fmt::Write as _;

    let question_text = include_str!("../../../../assets/questions/bump.exq");
    // 4x the default DBLP volume: cold explain time scales with the
    // data, cache-hit latency does not, so this keeps the ≥10x assertion
    // well clear of scheduler jitter on slow CI hosts.
    let gen_config = dblp::DblpConfig {
        papers_per_year_base: 240,
        authors_per_institution: 24,
        ..dblp::DblpConfig::default()
    };

    // Cold reference: everything a one-shot `exq explain` run does after
    // process startup — materialize the data, build the universal
    // relation, run Algorithm 1, rank. The real CLI additionally pays
    // process startup and CSV parsing, so the ≥10x bar below is
    // conservative.
    let (candidates, t_cold) = timed(|| {
        let db = dblp::generate(&gen_config);
        let question = bump_question(&db);
        let explainer = exq_core::explainer::Explainer::new(&db, question)
            .attr_names(&["Author.inst"])
            .unwrap();
        explainer.q_d().unwrap();
        let (table, _) = explainer.table().unwrap();
        let top = explainer.top(DegreeKind::Intervention, 5).unwrap();
        assert!(!top.is_empty());
        table.len()
    });
    println!("cold explain (generate + prepare + rank): {t_cold:?} ({candidates} candidates)");

    // The catalog starts one split behind the full instance: 10% of the
    // Authored rows are held back and appended live mid-test, so the run
    // exercises the delta-maintenance path and the epoch-keyed cache.
    let full_db = dblp::generate(&gen_config);
    let full_tuples = full_db.total_tuples();
    let (initial_db, append_batches) = split_dblp(&full_db, 2);
    let held_rows: usize = append_batches
        .iter()
        .flat_map(|b| b.iter().map(|(_, rows)| rows.len()))
        .sum();
    let mut catalog = Catalog::new();
    let (_, t_prepare) = timed(|| {
        catalog
            .insert_database("dblp", std::sync::Arc::new(initial_db), &ExecConfig::auto())
            .unwrap()
    });
    println!(
        "catalog preload (shared intermediates; {held_rows} Authored rows held back): {t_prepare:?}"
    );

    let threads = 4usize;
    let handle = exq_serve::start(
        catalog,
        ServerConfig {
            threads,
            ..ServerConfig::default()
        },
        MetricsSink::recording(),
    )
    .expect("bind loadtest server");
    let addr = handle.addr();

    // Distinct cache keys: the same question ranked at different top-K.
    let distinct = 4usize;
    let body_for = |top: usize| {
        format!(
            "{{\"dataset\": \"dblp\", \"question\": \"{}\", \"attrs\": [\"Author.inst\"], \"top\": {top}}}",
            exq_obs::escape_json(question_text)
        )
    };
    let (_, t_warm) = timed(|| {
        for top in 1..=distinct {
            let response = client::post_json(addr, "/v1/explain", &body_for(top)).unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
        }
    });
    println!("cache fill: {distinct} distinct questions in {t_warm:?}");

    // One report miss + one report hit, plus a few uncached GETs, so
    // every catalogued `server.latency.*` histogram and request-phase
    // span shows up in the snapshot below.
    for _ in 0..2 {
        let response = client::post_json(addr, "/v1/report", &body_for(1)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    for path in [
        "/healthz",
        "/v1/health",
        "/v1/datasets",
        "/metrics",
        "/v1/debug/requests",
    ] {
        let response = client::get(addr, path).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }

    let clients = if full { 16usize } else { 8 };
    let per_client = if full { 200usize } else { 25 };
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let body_for = &body_for;
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let body = body_for(1 + (c + i) % distinct);
                        let (response, t) =
                            timed(|| client::post_json(addr, "/v1/explain", &body).unwrap());
                        assert_eq!(response.status, 200, "{}", response.text());
                        lat.push(t);
                    }
                    lat
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });

    // Live-append phase: push the held-back rows batch by batch, with an
    // explain after each — the epoch bump keys the cache, so post-append
    // explains must miss and serve fresh data.
    let mut epoch = 0u64;
    for batch in &append_batches {
        let rows: usize = batch.iter().map(|(_, r)| r.len()).sum();
        let (response, t_append) = timed(|| {
            client::post_json(addr, "/v1/datasets/dblp/rows", &append_body(batch)).unwrap()
        });
        assert_eq!(response.status, 200, "{}", response.text());
        epoch += 1;
        let want = epoch.to_string();
        assert_eq!(response.header("x-exq-epoch"), Some(want.as_str()));
        println!("append batch ({rows} rows): {t_append:?} -> epoch {epoch}");
        let after = client::post_json(addr, "/v1/explain", &body_for(1)).unwrap();
        assert_eq!(after.status, 200, "{}", after.text());
    }

    // Byte-identity at the final epoch: a server rebuilt from scratch on
    // the full instance must serve the very same explain document. (This
    // re-ask is also the final epoch's cache hit.)
    let final_response = client::post_json(addr, "/v1/explain", &body_for(1)).unwrap();
    assert_eq!(final_response.status, 200, "{}", final_response.text());
    {
        let mut rebuilt = Catalog::new();
        rebuilt
            .insert_database("dblp", std::sync::Arc::new(full_db), &ExecConfig::auto())
            .unwrap();
        let reference = exq_serve::start(
            rebuilt,
            ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
            MetricsSink::recording(),
        )
        .expect("bind reference server");
        let expected = client::post_json(reference.addr(), "/v1/explain", &body_for(1)).unwrap();
        reference.shutdown();
        assert_eq!(expected.status, 200, "{}", expected.text());
        assert_eq!(
            scrub_total_ns_and_epoch(&final_response.text()),
            scrub_total_ns_and_epoch(&expected.text()),
            "incremental dataset must serve byte-identical explains \
             (wall-clock span durations and cost epochs scrubbed) to a rebuild-from-scratch"
        );
        println!(
            "post-append explain is byte-identical to a rebuilt-from-scratch server \
             (span durations scrubbed)"
        );
    }

    // Rows in == rows stored: the dataset grew to exactly the full
    // instance (checked through the public catalog listing).
    let datasets = client::get(addr, "/v1/datasets").unwrap();
    assert_eq!(datasets.status, 200);
    let listing = datasets.text();
    assert!(
        listing.contains(&format!("\"tuples\": {full_tuples}")),
        "dataset must hold all {full_tuples} tuples after the appends: {listing}"
    );
    assert!(listing.contains(&format!("\"epoch\": {epoch}")));

    let snapshot = handle.shutdown();

    // Router tier: run the sharded-front phase now so its section (and
    // the full `router.*` catalogue scope) lands in BENCH_serve.json.
    let router_doc = router_phase(full, router);

    // Client-observed latency distribution through the obs histogram —
    // the same log-bucketed sketch the server keeps per endpoint, so
    // the client and server sides of BENCH_serve.json are comparable.
    // Quantiles are bucket upper bounds (within one sub-bucket width,
    // ~25% relative, of the exact order statistic).
    let mut sketch = exq_obs::Histogram::new();
    let mut max_ns = 0u64;
    for d in &latencies {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        sketch.record(ns);
        max_ns = max_ns.max(ns);
    }
    let pct = |q: f64| Duration::from_nanos(sketch.quantile(q));
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let hits = snapshot.counter("server.cache.hits");
    let misses = snapshot.counter("server.cache.misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = t_cold.as_secs_f64() / p50.as_secs_f64().max(1e-9);

    println!(
        "{} requests from {clients} clients against {threads} workers",
        latencies.len()
    );
    println!("latency: p50 <= {p50:?}, p95 <= {p95:?}, p99 <= {p99:?} (histogram bounds)");
    println!("cache: {hits} hits / {misses} misses (hit rate {hit_rate:.3})");
    println!("cache-hit speedup over cold explain: {speedup:.1}x");

    let mut doc = String::from("{\n");
    let _ = writeln!(
        doc,
        "  \"workload\": {{ \"clients\": {clients}, \"requests\": {}, \"distinct_questions\": {distinct}, \"server_threads\": {threads} }},",
        latencies.len()
    );
    let _ = writeln!(
        doc,
        "  \"latency_ns\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},",
        p50.as_nanos(),
        p95.as_nanos(),
        p99.as_nanos(),
        max_ns
    );
    let _ = writeln!(doc, "  \"cold_explain_ns\": {},", t_cold.as_nanos());
    let _ = writeln!(doc, "  \"cache_hit_speedup\": {speedup:.1},");
    let _ = writeln!(
        doc,
        "  \"ingest\": {{ \"batches\": {}, \"rows_appended\": {held_rows} }},",
        append_batches.len()
    );
    let _ = writeln!(
        doc,
        "  \"cache\": {{ \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.4} }},"
    );
    doc.push_str(&router_doc);
    let snap = snapshot
        .to_json()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("  {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let _ = writeln!(doc, "  \"snapshot\": {snap}");
    doc.push_str("}\n");
    std::fs::write("BENCH_serve.json", doc).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    // Counter conservation against our own client-side tallies (the
    // invariant documented next to `span:server.request.parse` in
    // assets/obs/counters.txt): the parse span fires once per routed
    // question POST body — GETs carry no parameter body, append bodies
    // parse under `server.request.append`, and reader-level rejects
    // never reach routing — and `server.requests` counts every routed
    // request (question POSTs + append POSTs + GETs).
    let appends = append_batches.len() as u64;
    // Question POSTs: cache fill + two reports + the hammer loop + one
    // explain per append + the final byte-identity re-ask.
    let posts = (distinct + 2 + clients * per_client) as u64 + appends + 1;
    let gets = 6u64;
    let parse_spans = snapshot
        .spans
        .get("server.request.parse")
        .map_or(0, |s| s.count);
    assert_eq!(
        parse_spans, posts,
        "parse spans must equal routed question POST requests"
    );
    assert_eq!(
        snapshot.counter("server.requests"),
        posts + appends + gets,
        "server.requests must equal routed POSTs + GETs"
    );

    // Ingest conservation: every appended row is counted once, every
    // batch bumped the epoch exactly once.
    assert_eq!(snapshot.counter("server.append.runs"), appends);
    assert_eq!(snapshot.counter("ingest.epoch_bumps"), appends);
    assert_eq!(snapshot.counter("ingest.rows_appended"), held_rows as u64);

    // The explain fill, the single report warm-up, and one explain per
    // append (new epoch, new cache key) are the only permitted misses;
    // the hammer loop and the final re-ask must be all hits.
    assert_eq!(
        misses,
        distinct as u64 + 1 + appends,
        "only fill and post-append requests may miss"
    );
    assert!(
        speedup >= 10.0,
        "cache-hit /v1/explain must be >= 10x faster than a cold explain \
         (cold {t_cold:?}, hit p50 {p50:?}, speedup {speedup:.1}x)"
    );
}

/// The router tier phase of `repro loadtest`: boot W sharded workers
/// behind an in-process `exq-router` front (worker addresses published
/// straight into the front's upstream pools — no child processes, so
/// the phase is hermetic and fast), then
///
/// 1. hammer `/v1/explain` with all-miss requests at W=1 and W=4 and
///    measure throughput (the ≥3x scaling bar is asserted under
///    `--router`),
/// 2. prove responses through the front are byte-identical to a
///    single-process server holding the whole catalog,
/// 3. kill one worker mid-run and show the storm yields only bounded
///    `503 Retry-After` answers — never a wrong one — then full
///    recovery once a replacement worker is published.
///
/// Returns the `"router": {…}` section for `BENCH_serve.json`,
/// including the 4-worker front's final metrics snapshot (which pins
/// the whole fixed-name `router.*` catalogue scope).
fn router_phase(full: bool, assert_scaling: bool) -> String {
    use exq_router::{Front, FrontConfig, ShardMap};
    use exq_serve::{client, Catalog, ServerConfig};
    use std::fmt::Write as _;
    use std::net::SocketAddr;
    use std::sync::Arc;

    println!();
    header("Router tier — sharded workers behind one front (1 vs 4 workers)");

    let gen_config = dblp::DblpConfig {
        papers_per_year_base: if full { 24 } else { 12 },
        authors_per_institution: if full { 8 } else { 6 },
        ..dblp::DblpConfig::default()
    };
    let db = Arc::new(dblp::generate(&gen_config));
    let question_text = include_str!("../../../../assets/questions/bump.exq");
    let body_for = |dataset: &str, top: usize| {
        format!(
            "{{\"dataset\": \"{dataset}\", \"question\": \"{}\", \"attrs\": [\"Author.inst\"], \"top\": {top}}}",
            exq_obs::escape_json(question_text)
        )
    };

    // Four dataset names chosen so the 4-worker hash ring gives each
    // worker exactly one: the hammer then spreads evenly and the 1 → 4
    // ratio measures worker parallelism, not ring luck.
    const WORKERS_HIGH: usize = 4;
    let map = ShardMap::new(WORKERS_HIGH);
    let mut names: Vec<String> = Vec::new();
    let mut owned = [false; WORKERS_HIGH];
    for i in 0.. {
        if names.len() == WORKERS_HIGH {
            break;
        }
        let candidate = format!("dblp-{i}");
        let shard = map.shard_of(&candidate);
        if !owned[shard] {
            owned[shard] = true;
            names.push(candidate);
        }
    }

    // Boot a W-worker topology: each worker is a real `exq_serve`
    // server (1 thread, so capacity scales with W alone) owning its
    // ring-assigned slice of the catalog.
    let boot = |workers: usize, sink: MetricsSink| {
        let front = Front::start_on(
            "127.0.0.1:0",
            FrontConfig {
                threads: 8,
                workers,
                per_worker_connections: 1,
                // The hammer intentionally queues 8 clients on 1-thread
                // workers; prefer queueing to shedding so throughput is
                // measured, not 503 counts.
                upstream_wait: Duration::from_secs(30),
                datasets: names.clone(),
                ..FrontConfig::default()
            },
            sink,
        )
        .expect("bind router front");
        let map = ShardMap::new(workers);
        let mut handles: Vec<Option<exq_serve::Handle>> = Vec::new();
        for (shard, group) in map
            .partition(names.iter().map(String::as_str))
            .into_iter()
            .enumerate()
        {
            let mut catalog = Catalog::new();
            for name in group {
                catalog
                    .insert_database(name, Arc::clone(&db), &ExecConfig::auto())
                    .unwrap();
            }
            let handle = exq_serve::start(
                catalog,
                ServerConfig {
                    threads: 1,
                    shard_id: Some(shard as u64),
                    // A zero slow bound retains every trace: the fleet
                    // phase below asserts a retained trace is
                    // retrievable by its Prometheus exemplar id.
                    trace_slow_ms: Some(0),
                    ..ServerConfig::default()
                },
                MetricsSink::recording(),
            )
            .expect("bind shard worker");
            front.upstreams().set_addr(shard, Some(handle.addr()));
            handles.push(Some(handle));
        }
        (handles, front)
    };

    // All-miss hammer: every request carries a fresh top-K, so every
    // request runs a real explain on its worker — the per-request work
    // the extra workers are supposed to parallelize.
    let clients = 8usize;
    let per_client = if full { 40 } else { 12 };
    let hammer = |front_addr: SocketAddr, tag: &str| {
        let names = &names;
        let body_for = &body_for;
        let (total, elapsed) = timed(|| {
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..clients)
                    .map(|c| {
                        scope.spawn(move || {
                            for i in 0..per_client {
                                let dataset = &names[(c + i) % names.len()];
                                let top = 1 + c * per_client + i;
                                let body = body_for(dataset, top);
                                let response =
                                    client::post_json(front_addr, "/v1/explain", &body).unwrap();
                                assert_eq!(response.status, 200, "{}", response.text());
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
            });
            clients * per_client
        });
        let rps = total as f64 / elapsed.as_secs_f64().max(1e-9);
        println!("{tag}: {total} all-miss explains in {elapsed:?} ({rps:.0} req/s)");
        (total, rps)
    };

    let (handles1, front1) = boot(1, MetricsSink::recording());
    let (total, rps1) = hammer(front1.addr(), "1 worker ");
    for handle in handles1.into_iter().flatten() {
        handle.shutdown();
    }
    front1.shutdown();

    let (mut handles4, front4) = boot(WORKERS_HIGH, MetricsSink::recording());
    let (_, rps4) = hammer(front4.addr(), "4 workers");
    let speedup = rps4 / rps1.max(1e-9);
    println!("router scaling 1 -> {WORKERS_HIGH} workers: {speedup:.2}x throughput");
    if assert_scaling {
        assert!(
            speedup >= 3.0,
            "--router demands >=3x throughput at {WORKERS_HIGH} workers vs 1 (got {speedup:.2}x)"
        );
    }

    // Byte-identity: the same question through the front must yield the
    // very bytes a single-process server holding the whole catalog
    // serves (span durations scrubbed, as elsewhere).
    let mut reference_catalog = Catalog::new();
    for name in &names {
        reference_catalog
            .insert_database(name, Arc::clone(&db), &ExecConfig::auto())
            .unwrap();
    }
    let reference = exq_serve::start(
        reference_catalog,
        ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        },
        MetricsSink::recording(),
    )
    .expect("bind reference server");
    let mut reference_bodies = Vec::new();
    for name in &names {
        let body = body_for(name, 3);
        let through = client::post_json(front4.addr(), "/v1/explain", &body).unwrap();
        let direct = client::post_json(reference.addr(), "/v1/explain", &body).unwrap();
        assert_eq!(through.status, 200, "{}", through.text());
        assert_eq!(direct.status, 200, "{}", direct.text());
        assert_eq!(
            scrub_total_ns(&through.text()),
            scrub_total_ns(&direct.text()),
            "{name}: routed explain must be byte-identical to a single-process server"
        );
        reference_bodies.push(scrub_total_ns(&direct.text()));
    }
    reference.shutdown();
    println!("byte-identity: all {WORKERS_HIGH} routed explains match a single-process server");

    // Kill-storm: take the worker owning names[0] down mid-run. Every
    // answer during the outage must be a bounded 503 + Retry-After
    // (clients' retry dialect) — never a wrong answer, never a hang —
    // and the surviving shards must keep serving.
    let victim = map.shard_of(&names[0]);
    handles4[victim].take().unwrap().shutdown();
    front4.upstreams().set_addr(victim, None);
    let storm = 20usize;
    let mut storm_503s = 0usize;
    for _ in 0..storm {
        let down =
            client::post_json(front4.addr(), "/v1/explain", &body_for(&names[0], 3)).unwrap();
        assert_eq!(down.status, 503, "{}", down.text());
        assert!(down.header("retry-after").is_some());
        storm_503s += 1;
        let alive =
            client::post_json(front4.addr(), "/v1/explain", &body_for(&names[1], 3)).unwrap();
        assert_eq!(alive.status, 200, "{}", alive.text());
    }

    // Recovery: publish a replacement worker (fresh catalog slice, same
    // data) and probe until the shard answers again — with the very
    // bytes it served before the kill.
    let mut catalog = Catalog::new();
    for name in map.partition(names.iter().map(String::as_str))[victim].iter() {
        catalog
            .insert_database(name, Arc::clone(&db), &ExecConfig::auto())
            .unwrap();
    }
    let replacement = exq_serve::start(
        catalog,
        ServerConfig {
            threads: 1,
            shard_id: Some(victim as u64),
            trace_slow_ms: Some(0),
            ..ServerConfig::default()
        },
        MetricsSink::recording(),
    )
    .expect("bind replacement worker");
    front4
        .upstreams()
        .set_addr(victim, Some(replacement.addr()));
    handles4[victim] = Some(replacement);
    let mut recovery_probes = 0usize;
    loop {
        recovery_probes += 1;
        let probe =
            client::post_json(front4.addr(), "/v1/explain", &body_for(&names[0], 3)).unwrap();
        if probe.status == 200 {
            assert_eq!(
                scrub_total_ns(&probe.text()),
                reference_bodies[0],
                "post-recovery explain must match the pre-kill bytes"
            );
            break;
        }
        assert_eq!(probe.status, 503, "{}", probe.text());
        assert!(recovery_probes < 50, "shard never recovered");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "kill-storm: {storm_503s} bounded 503s while down, recovered in {recovery_probes} probe(s), 0 wrong answers"
    );

    // Fleet observability: one scrape through the front, then each
    // worker directly, and exact counter conservation between the two.
    // The offset is deterministic: `server.requests` is incremented
    // before the snapshot is taken, so a worker's own scrape GET counts
    // itself — each direct scrape therefore reads its fleet-scrape
    // value plus exactly one.
    let fleet_response = client::get(front4.addr(), "/v1/metrics?format=snapshot").unwrap();
    assert_eq!(fleet_response.status, 200, "{}", fleet_response.text());
    let (fleet, _) =
        exq_obs::decode_snapshot(&fleet_response.text()).expect("fleet snapshot must decode");
    let fleet_requests = fleet.counter("server.requests");
    assert_eq!(
        fleet.counter("router.scrape.partial"),
        0,
        "all shards are live: the fleet scrape must be complete"
    );
    let shard_sum: u64 = (0..WORKERS_HIGH)
        .map(|shard| fleet.counter(&format!("server.requests.shard.{shard}")))
        .sum();
    assert_eq!(
        shard_sum, fleet_requests,
        "per-shard labelled copies must sum to the fleet aggregate"
    );
    let mut direct_sum = 0u64;
    for handle in handles4.iter().flatten() {
        let direct = client::get(handle.addr(), "/v1/metrics?format=snapshot").unwrap();
        assert_eq!(direct.status, 200, "{}", direct.text());
        let (snap, _) =
            exq_obs::decode_snapshot(&direct.text()).expect("worker snapshot must decode");
        direct_sum += snap.counter("server.requests");
    }
    assert_eq!(
        direct_sum,
        fleet_requests + WORKERS_HIGH as u64,
        "fleet scrape must conserve server.requests across shards"
    );

    // The fleet exposition is checker-clean and carries a retained
    // trace's exemplar; that very trace must be retrievable through the
    // front's merged /v1/debug/traces fan-in.
    let prom = client::get(front4.addr(), "/metrics").unwrap();
    assert_eq!(prom.status, 200, "{}", prom.text());
    let prom_text = prom.text();
    exq_obs::check_prometheus(&prom_text)
        .unwrap_or_else(|e| panic!("fleet exposition must be checker-clean: {e}\n{prom_text}"));
    let exemplar_id: u64 = prom_text
        .lines()
        .find_map(|line| {
            line.strip_prefix("# exemplar ")?
                .rsplit_once("trace_id=")?
                .1
                .parse()
                .ok()
        })
        .expect("fleet exposition must carry at least one exemplar");
    let traces = client::get(front4.addr(), "/v1/debug/traces").unwrap();
    assert_eq!(traces.status, 200, "{}", traces.text());
    assert!(
        traces.text().contains(&format!("\"trace_id\": {exemplar_id}")),
        "exemplar trace {exemplar_id} must be retrievable through the front"
    );
    println!(
        "fleet scrape: server.requests {fleet_requests} conserved across {WORKERS_HIGH} shards \
         (+{WORKERS_HIGH} self-scrapes), exemplar trace {exemplar_id} retained and retrievable"
    );

    for handle in handles4.into_iter().flatten() {
        handle.shutdown();
    }
    let front_snapshot = front4.shutdown();

    let mut doc = String::new();
    let _ = writeln!(doc, "  \"router\": {{");
    let _ = writeln!(
        doc,
        "    \"scaling\": {{ \"workers\": [1, {WORKERS_HIGH}], \"requests_per_run\": {total}, \"rps_1_worker\": {rps1:.1}, \"rps_{WORKERS_HIGH}_workers\": {rps4:.1}, \"speedup\": {speedup:.2} }},"
    );
    let _ = writeln!(
        doc,
        "    \"storm\": {{ \"throttled_503s\": {storm_503s}, \"recovery_probes\": {recovery_probes}, \"wrong_answers\": 0 }},"
    );
    let _ = writeln!(
        doc,
        "    \"fleet\": {{ \"shards\": {WORKERS_HIGH}, \"requests_at_scrape\": {fleet_requests}, \"scrape_partial\": 0 }},"
    );
    let snap = front_snapshot
        .to_json()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("    {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let _ = writeln!(doc, "    \"snapshot\": {snap}");
    doc.push_str("  },\n");
    doc
}

/// `repro incremental` — live-append amortized cost and incremental-vs-
/// rebuild explain medians on DBLP, via the same `Dataset` epoch state
/// the server uses (no HTTP, so the snapshot isolates the ingest path).
/// Every epoch is differentially checked: the incrementally maintained
/// `PreparedDb` must produce the same explanation table a rebuild from
/// scratch does. Writes `BENCH_incremental.json` and asserts the ISSUE 8
/// acceptance bar: serving a fresh explanation through incremental
/// maintenance is ≥5x faster than rebuilding the prepared intermediates.
fn incremental(full: bool) {
    header("Incremental ingestion — live appends vs rebuild-from-scratch (DBLP)");
    use exq_core::prepared::PreparedDb;
    use exq_serve::{Catalog, INGEST_COUNTERS};
    use std::fmt::Write as _;
    use std::sync::Arc;

    let gen_config = dblp::DblpConfig {
        papers_per_year_base: if full { 240 } else { 120 },
        authors_per_institution: if full { 24 } else { 12 },
        ..dblp::DblpConfig::default()
    };
    let full_db = dblp::generate(&gen_config);
    let full_tuples = full_db.total_tuples();
    let (initial_db, batches) = split_dblp(&full_db, 5);
    let initial_tuples = initial_db.total_tuples();

    // Pre-register the pinned ingest counters at zero (the server does
    // the same at startup), then build the catalog under the recording
    // sink so the delta-maintenance counters and spans land in the
    // snapshot.
    let sink = MetricsSink::recording();
    for name in INGEST_COUNTERS {
        sink.add(name, 0);
    }
    let exec = ExecConfig::auto().with_metrics(sink.clone());
    let mut catalog = Catalog::new();
    let (_, t_prepare) = timed(|| {
        catalog
            .insert_database("dblp", Arc::new(initial_db), &exec)
            .unwrap()
    });
    let dataset = catalog.get("dblp").expect("dataset just inserted");
    println!(
        "initial prepare: {initial_tuples} tuples in {t_prepare:?}; appending {} rows in {} batches",
        full_tuples - initial_tuples,
        batches.len()
    );

    let table_of = |prepared: &PreparedDb| {
        prepared
            .explainer(bump_question(prepared.db()))
            .attr_names(&["Author.inst"])
            .unwrap()
            .table()
            .unwrap()
            .0
    };

    // The rebuild reference runs on a plain executor so it cannot
    // contaminate the ingest snapshot. Each epoch it re-prepares from the
    // raw rows alone — `materialize` yields a store with no columnar
    // cache, so the rebuild pays the full column + join + semijoin cost a
    // server restart would, which is exactly what delta maintenance
    // replaces.
    let plain = ExecConfig::auto();
    let (mut t_appends, mut t_explains, mut t_rebuilds) = (Vec::new(), Vec::new(), Vec::new());
    let mut appended_total = 0usize;
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "epoch", "rows", "append", "explain", "rebuild", "speedup"
    );
    for batch in &batches {
        let rows: usize = batch.iter().map(|(_, r)| r.len()).sum();
        let batch = batch.clone();
        let (result, t_append) = timed(|| dataset.append(batch, &exec));
        let (epoch, appended) = result.expect("append batch");
        assert_eq!(appended, rows);
        appended_total += appended;

        let (prepared, snap_epoch) = dataset.snapshot();
        assert_eq!(snap_epoch, epoch);
        let (incremental_table, t_explain) = timed(|| table_of(&prepared));

        let raw = prepared.db().materialize(&prepared.db().full_view());
        let (rebuilt, t_rebuild) = timed(|| PreparedDb::build_with(Arc::new(raw.clone()), &plain));
        let rebuilt_table = table_of(&rebuilt);
        assert_eq!(
            incremental_table, rebuilt_table,
            "epoch {epoch}: incremental explain diverged from the rebuild"
        );
        let per_epoch = t_rebuild.as_secs_f64() / t_append.as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>6} {:>12?} {:>12?} {:>12?} {:>8.1}x",
            epoch, rows, t_append, t_explain, t_rebuild, per_epoch
        );
        t_appends.push(t_append);
        t_explains.push(t_explain);
        t_rebuilds.push(t_rebuild);
    }

    // Conservation: rows in == rows stored, one epoch bump per batch.
    let (prepared, epoch) = dataset.snapshot();
    assert_eq!(epoch, batches.len() as u64);
    assert_eq!(prepared.db().total_tuples(), full_tuples);
    assert_eq!(initial_tuples + appended_total, full_tuples);
    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.counter("ingest.rows_appended"),
        appended_total as u64
    );
    assert_eq!(snapshot.counter("ingest.epoch_bumps"), batches.len() as u64);

    let t_append_total: Duration = t_appends.iter().sum();
    let amortized_ns = t_append_total.as_nanos() as f64 / appended_total.max(1) as f64;
    let append_median = median(&t_appends);
    let explain_median = median(&t_explains);
    let rebuild_median = median(&t_rebuilds);
    let speedup = rebuild_median.as_secs_f64() / append_median.as_secs_f64().max(1e-9);
    println!("\namortized append cost: {amortized_ns:.0} ns/row over {appended_total} rows");
    println!(
        "keeping explanations fresh: delta maintenance {append_median:?} vs \
         rebuild-from-scratch {rebuild_median:?} per epoch, speedup {speedup:.1}x \
         (explain itself is epoch-independent: {explain_median:?} on the maintained state)"
    );

    let mut doc = String::from("{\n");
    let _ = writeln!(
        doc,
        "  \"workload\": {{ \"initial_tuples\": {initial_tuples}, \"rows_appended\": {appended_total}, \"batches\": {} }},",
        batches.len()
    );
    let _ = writeln!(doc, "  \"amortized_append_ns_per_row\": {amortized_ns:.0},");
    let _ = writeln!(
        doc,
        "  \"maintenance_ns\": {{ \"append_median\": {}, \"rebuild_median\": {}, \"speedup\": {speedup:.1} }},",
        append_median.as_nanos(),
        rebuild_median.as_nanos()
    );
    let _ = writeln!(
        doc,
        "  \"explain_ns\": {{ \"median_on_maintained\": {} }},",
        explain_median.as_nanos()
    );
    let snap = snapshot
        .to_json()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("  {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let _ = writeln!(doc, "  \"snapshot\": {snap}");
    doc.push_str("}\n");
    std::fs::write("BENCH_incremental.json", doc).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json");

    // The regression gate CI relies on: incremental maintenance must
    // keep beating a from-scratch rebuild by a wide margin. (The explain
    // itself runs on identical intermediates either way, so the bar is on
    // the maintenance work an append actually adds.)
    assert!(
        speedup >= 5.0,
        "incremental maintenance must be >= 5x faster than a full rebuild \
         (append {append_median:?} vs rebuild {rebuild_median:?}, {speedup:.1}x)"
    );
    let missing: Vec<String> = required_entries(BenchScope::Incremental)
        .into_iter()
        .filter(|(kind, name)| match kind {
            EntryKind::Counter => !snapshot.counters.contains_key(*name),
            EntryKind::Span => !snapshot.spans.contains_key(*name),
            EntryKind::Hist => !snapshot.histograms.contains_key(*name),
        })
        .map(|(kind, name)| format!("{} {name}", kind.label()))
        .collect();
    assert!(
        missing.is_empty(),
        "catalogued metrics missing from the snapshot: {missing:?}"
    );
    println!(
        "all {} catalogued incremental metrics present",
        required_entries(BenchScope::Incremental).len()
    );
}

/// Check a bench snapshot (`BENCH_pipeline.json` from `pipeline`, or
/// `BENCH_serve.json` from `loadtest`) against the committed counter
/// catalogue: the file must be a well-formed metrics document and every
/// counter catalogued for `scope` must be present. Exits 1 on any
/// failure so CI can gate on it.
fn validate_bench(path: &str, scope: BenchScope) {
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(1);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(format!("{path}: {e}")),
    };
    // Structural sanity: one JSON object with balanced braces outside
    // strings and a counters section.
    let (mut depth, mut max_depth, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in text.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    fail(format!("{path}: unbalanced JSON"));
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str || max_depth == 0 {
        fail(format!("{path}: not a complete JSON document"));
    }
    if !text.contains("\"counters\": {")
        || !text.contains("\"spans\": {")
        || !text.contains("\"histograms\": {")
    {
        fail(format!("{path}: not a metrics snapshot"));
    }
    // Kind-aware presence checks: counters render as `"name": N`, spans
    // as `"name": { "count": ...`, histograms as `"name": { "kind": ...`.
    let missing: Vec<String> = required_entries(scope)
        .into_iter()
        .filter(|(kind, name)| {
            let probe = match kind {
                EntryKind::Counter => format!("\"{name}\": "),
                EntryKind::Span => format!("\"{name}\": {{ \"count\""),
                EntryKind::Hist => format!("\"{name}\": {{ \"kind\""),
            };
            !text.contains(&probe)
        })
        .map(|(kind, name)| format!("{} {name}", kind.label()))
        .collect();
    if !missing.is_empty() {
        fail(format!(
            "{path}: missing catalogued {} metrics: {}",
            scope.name(),
            missing.join(", ")
        ));
    }
    // Cross-check the catalogue against the source tree (every entry
    // has an emit site and vice versa) when run from a workspace
    // checkout — the same audit `exq lint` runs, so a stale
    // counters.txt fails here too, not only in the lint job.
    match std::env::current_dir()
        .ok()
        .and_then(|d| exq_lint::find_workspace_root(&d))
    {
        Some(root) => {
            let sources = match exq_lint::collect_sources(&root) {
                Ok(s) => s,
                Err(e) => fail(format!("catalogue cross-check: {e}")),
            };
            let diags = match exq_lint::audit::counters_audit(&root, &sources) {
                Ok(d) => d,
                Err(e) => fail(format!("catalogue cross-check: {e}")),
            };
            if !diags.is_empty() {
                for d in &diags {
                    eprintln!(
                        "{} {}:{}:{} {}",
                        d.code, d.file, d.span.line, d.span.col, d.message
                    );
                }
                fail(format!(
                    "assets/obs/counters.txt disagrees with the source tree \
                     ({} problem(s) above)",
                    diags.len()
                ));
            }
            println!("ok: counters.txt matches the source tree's emit sites");
        }
        None => println!("note: not in a workspace checkout; emit-site cross-check skipped"),
    }
    println!(
        "ok: {path} has all {} catalogued {} metrics",
        required_entries(scope).len(),
        scope.name()
    );
}

/// Check a Prometheus text-exposition dump (a curl of `GET /metrics`)
/// with the in-repo checker: HELP/TYPE ordering, legal names, monotone
/// cumulative histogram buckets with a terminal `le="+Inf"`. Exits 1 on
/// any failure so CI can gate on it.
fn validate_prom(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = exq_obs::check_prometheus(&text) {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
    println!("ok: {path} is well-formed Prometheus text exposition");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let full = args.iter().skip(2).any(|a| a == "full");
    let router = args.iter().skip(2).any(|a| a == "--router");
    let nat_rows = if full { 4_000_000 } else { 200_000 };

    match which {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig6" => fig6(),
        "fig7" | "fig8" | "fig9" => fig7_8_9(nat_rows),
        "fig10" | "fig11" => fig10_11(nat_rows),
        "fig12" => fig12(full),
        "fig13" => fig13(full),
        "fig14" => fig14(full),
        "fig15" => fig15(),
        "ex37" => ex37(),
        "ex41" => ex41(),
        "ablation" => ablation_cube(full),
        "scaling" => scaling(full),
        "hybrid" => hybrid_table(),
        "agreement" => agreement_table(nat_rows),
        "pipeline" => pipeline(full),
        "loadtest" => loadtest(full, router),
        "incremental" => incremental(full),
        "validate-bench" => match args.get(2) {
            Some(path) => {
                let scope = match args.get(3).map(String::as_str) {
                    Some("pipeline") => BenchScope::Pipeline,
                    Some("serve") => BenchScope::Serve,
                    Some("incremental") => BenchScope::Incremental,
                    Some(other) => {
                        eprintln!("unknown scope `{other}`; expected pipeline|serve|incremental");
                        std::process::exit(2);
                    }
                    // Default the scope from the file name.
                    None if path.contains("incremental") => BenchScope::Incremental,
                    None if path.contains("serve") => BenchScope::Serve,
                    None => BenchScope::Pipeline,
                };
                validate_bench(path, scope)
            }
            None => {
                eprintln!("usage: repro validate-bench FILE [pipeline|serve|incremental]");
                std::process::exit(2);
            }
        },
        "validate-prom" => match args.get(2) {
            Some(path) => validate_prom(path),
            None => {
                eprintln!("usage: repro validate-prom FILE");
                std::process::exit(2);
            }
        },
        "export" => export(args.get(2).map(String::as_str).unwrap_or("export"), 100_000),
        "all" => {
            fig1();
            fig2();
            fig6();
            ex41();
            ex37();
            fig7_8_9(nat_rows);
            fig10_11(nat_rows);
            fig12(full);
            fig13(full);
            fig14(full);
            fig15();
            ablation_cube(full);
            scaling(full);
            hybrid_table();
            agreement_table(nat_rows);
            pipeline(full);
            loadtest(full, router);
            incremental(full);
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of fig1 fig2 fig6 fig7 fig8 fig9 \
                 fig10 fig11 fig12 fig13 fig14 fig15 ex37 ex41 ablation scaling hybrid \
                 agreement pipeline loadtest incremental validate-bench validate-prom export all"
            );
            std::process::exit(2);
        }
    }
}
