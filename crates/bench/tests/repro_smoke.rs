//! Smoke tests for the `repro` harness binary: every fast experiment runs
//! to completion and prints its headline content.

use std::process::Command;

fn run(experiment: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg(experiment)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "repro {experiment} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn ex41_prints_the_cube() {
    let text = run("ex41");
    assert!(text.contains("RR       2001            2"), "{text}");
    assert!(text.contains("null     null            6"), "{text}");
}

#[test]
fn ex37_prints_iteration_counts() {
    let text = run("ex37");
    assert!(
        text.contains("  32    129         127      127        129"),
        "{text}"
    );
}

#[test]
fn fig6_prints_both_graphs() {
    let text = run("fig6");
    assert!(text.contains("Authored ┄┄▶ Publication"), "{text}");
    assert!(text.contains("Author[0](A1,JG,C.edu,edu)"), "{text}");
}

#[test]
fn hybrid_prints_divergence() {
    let text = run("hybrid");
    assert!(text.contains("[name = RR]"), "{text}");
    assert!(text.contains("mu_hybrid"), "{text}");
}

#[test]
fn unknown_experiment_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fig99")
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
