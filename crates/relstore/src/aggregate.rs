//! Aggregate functions over (filtered) universal relations.
//!
//! Each of the paper's sub-queries `q_j` is a single-aggregate SQL query
//! over the universal relation: `SELECT agg(…) FROM R_1 ⋈ … ⋈ R_k WHERE
//! selection`. [`AggFunc`] is the aggregate; evaluation filters universal
//! tuples by the selection predicate and folds an [`AggState`].

use crate::column::ColumnStore;
use crate::database::Database;
use crate::dict::Dict;
use crate::error::{Error, Result};
use crate::join::Universal;
use crate::predicate::Predicate;
use crate::schema::{AttrRef, DatabaseSchema};
use crate::value::{Value, ValueType};
use std::collections::HashSet;

/// An aggregate function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` over universal tuples.
    CountStar,
    /// `COUNT(DISTINCT attr)`.
    CountDistinct(AttrRef),
    /// `SUM(attr)` (numeric attr).
    Sum(AttrRef),
    /// `AVG(attr)` (numeric attr).
    Avg(AttrRef),
    /// `MIN(attr)` (numeric attr).
    Min(AttrRef),
    /// `MAX(attr)` (numeric attr).
    Max(AttrRef),
}

impl AggFunc {
    /// The attribute aggregated over, if any.
    pub fn attr(&self) -> Option<AttrRef> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::CountDistinct(a)
            | AggFunc::Sum(a)
            | AggFunc::Avg(a)
            | AggFunc::Min(a)
            | AggFunc::Max(a) => Some(*a),
        }
    }

    /// Check the aggregated attribute is numeric where required.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        match self {
            AggFunc::CountStar | AggFunc::CountDistinct(_) => Ok(()),
            AggFunc::Sum(a) | AggFunc::Avg(a) | AggFunc::Min(a) | AggFunc::Max(a) => {
                let ty = schema.relation(a.rel).attributes[a.col].ty;
                if matches!(ty, ValueType::Int | ValueType::Float | ValueType::Any) {
                    Ok(())
                } else {
                    Err(Error::NotNumeric(schema.attr_name(*a)))
                }
            }
        }
    }

    /// A fresh accumulator for this function.
    pub fn new_state(&self) -> AggState {
        match self {
            AggFunc::CountStar => AggState::Count(0),
            AggFunc::CountDistinct(_) => AggState::Distinct(HashSet::new()),
            AggFunc::Sum(_) => AggState::Sum { int: 0, float: 0.0 },
            AggFunc::Avg(_) => AggState::Avg {
                int: 0,
                float: 0.0,
                n: 0,
            },
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
        }
    }

    /// Whether roll-up merging of two states loses nothing (distributive or
    /// algebraic aggregates). True for every [`AggFunc`] — COUNT DISTINCT
    /// keeps its key set in the state precisely so it merges exactly.
    pub fn mergeable(&self) -> bool {
        true
    }

    /// Compile this aggregate against a column store for a hot loop.
    ///
    /// The only shape that changes is `COUNT(DISTINCT a)` over a
    /// dictionary-coded column: the state keeps a `HashSet<u32>` of codes
    /// instead of cloned `Value`s, which is exact because the dictionary
    /// assigns one code per `Value` equivalence class (and the null class
    /// maps to the null code, preserving the null-skipping rule). Every
    /// other aggregate delegates to the uncompiled update path.
    pub fn compile<'a>(&'a self, store: &'a ColumnStore) -> AggEval<'a> {
        let distinct = match self {
            AggFunc::CountDistinct(a) => store
                .dict_column(*a)
                .map(|(codes, dict)| (a.rel, codes, dict)),
            _ => None,
        };
        AggEval {
            func: self,
            distinct,
        }
    }
}

/// An aggregate resolved against a column store — see [`AggFunc::compile`].
pub struct AggEval<'a> {
    func: &'a AggFunc,
    /// For `CountDistinct` over a dict column: (relation, codes, dict).
    distinct: Option<(usize, &'a [u32], &'a Dict)>,
}

impl AggEval<'_> {
    /// A fresh accumulator matching this compiled shape.
    pub fn new_state(&self) -> AggState {
        if self.distinct.is_some() {
            AggState::DistinctCodes(HashSet::new())
        } else {
            self.func.new_state()
        }
    }

    /// Fold one universal tuple into `state`.
    #[inline]
    pub fn update(&self, state: &mut AggState, db: &Database, utuple: &[u32]) -> Result<()> {
        match (state, self.distinct) {
            (AggState::DistinctCodes(set), Some((rel, codes, dict))) => {
                let code = codes[utuple[rel] as usize];
                if !dict.is_null_code(code) {
                    set.insert(code);
                }
                Ok(())
            }
            (state, _) => state.update(self.func, db, utuple),
        }
    }
}

/// A mergeable accumulator for one aggregate.
///
/// SUM and AVG keep integer and float contributions in **separate
/// lanes**: `Value::Int`s accumulate exactly in an `i128` (no `i64` sum
/// of row values can overflow it — even 2⁶³·n fits for any feasible row
/// count) and `Value::Float`s in an `f64`. Folding every `Int` through
/// `Value::as_f64` — the old behaviour — silently loses precision above
/// 2⁵³: `SUM` over `[2⁵³, 1, −2⁵³]` came out 0 instead of 1. The lanes
/// combine only in [`AggState::finalize`], with a single rounding at the
/// end.
#[derive(Debug, Clone)]
pub enum AggState {
    /// COUNT(*) accumulator.
    Count(u64),
    /// SUM accumulator.
    Sum {
        /// Exact running sum of the `Value::Int` contributions.
        int: i128,
        /// Running sum of the `Value::Float` contributions.
        float: f64,
    },
    /// AVG accumulator.
    Avg {
        /// Exact running sum of the `Value::Int` contributions.
        int: i128,
        /// Running sum of the `Value::Float` contributions.
        float: f64,
        /// Running count of non-null values.
        n: u64,
    },
    /// MIN accumulator.
    Min(Option<Value>),
    /// MAX accumulator.
    Max(Option<Value>),
    /// COUNT DISTINCT accumulator (exact: keeps the key set so roll-up
    /// merges stay correct).
    Distinct(HashSet<Value>),
    /// COUNT DISTINCT accumulator in code space (one code per `Value`
    /// equivalence class, nulls already skipped); produced only by
    /// [`AggEval`] when the aggregated column is dictionary-coded, so the
    /// two distinct shapes never meet in one run.
    DistinctCodes(HashSet<u32>),
}

impl AggState {
    /// Fold one universal tuple into the state.
    #[inline]
    pub fn update(&mut self, func: &AggFunc, db: &Database, utuple: &[u32]) -> Result<()> {
        let attr_value = |a: AttrRef| db.value(a, utuple[a.rel] as usize);
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => *c += 1,
            (AggState::Distinct(set), AggFunc::CountDistinct(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && !set.contains(v) {
                    set.insert(v.clone());
                }
            }
            (AggState::Sum { int, float }, AggFunc::Sum(a)) => match attr_value(*a) {
                Value::Null => {}
                Value::Int(i) => *int += i128::from(*i),
                Value::Float(f) => *float += f,
                _ => return Err(Error::NotNumeric(db.schema().attr_name(*a))),
            },
            (AggState::Avg { int, float, n }, AggFunc::Avg(a)) => match attr_value(*a) {
                Value::Null => {}
                Value::Int(i) => {
                    *int += i128::from(*i);
                    *n += 1;
                }
                Value::Float(f) => {
                    *float += f;
                    *n += 1;
                }
                _ => return Err(Error::NotNumeric(db.schema().attr_name(*a))),
            },
            (AggState::Min(m), AggFunc::Min(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::Max(m), AggFunc::Max(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            (state, func) => unreachable!("state {state:?} does not match function {func:?}"),
        }
        Ok(())
    }

    /// Merge another state of the same shape into this one (roll-up).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum { int: i1, float: f1 }, AggState::Sum { int: i2, float: f2 }) => {
                *i1 += i2;
                *f1 += f2;
            }
            (
                AggState::Avg {
                    int: i1,
                    float: f1,
                    n: n1,
                },
                AggState::Avg {
                    int: i2,
                    float: f2,
                    n: n2,
                },
            ) => {
                *i1 += i2;
                *f1 += f2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv < av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv > av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (AggState::DistinctCodes(a), AggState::DistinctCodes(b)) => {
                a.extend(b.iter().copied());
            }
            (a, b) => unreachable!("cannot merge {a:?} with {b:?}"),
        }
    }

    /// Extract the numeric result. Empty MIN/MAX/AVG yield SQL-null, which
    /// the numerical-query layer treats as 0 (the paper's outer-join
    /// convention: explanations missing from a cube count as zero).
    pub fn finalize(&self) -> f64 {
        match self {
            AggState::Count(c) => *c as f64,
            AggState::Sum { int, float } => sum_finalize(*int, *float),
            AggState::Avg { int, float, n } => {
                if *n == 0 {
                    0.0
                } else {
                    sum_finalize(*int, *float) / *n as f64
                }
            }
            AggState::Min(v) | AggState::Max(v) => {
                v.as_ref().and_then(Value::as_f64).unwrap_or(0.0)
            }
            AggState::Distinct(set) => set.len() as f64,
            AggState::DistinctCodes(set) => set.len() as f64,
        }
    }
}

/// Combine the two sum lanes with one rounding. The `int == 0` branch
/// returns the float lane untouched so pure-float sums keep their exact
/// bit pattern (adding `0.0` would e.g. turn `-0.0` into `+0.0`).
fn sum_finalize(int: i128, float: f64) -> f64 {
    if int == 0 {
        float
    } else {
        int as f64 + float
    }
}

/// Evaluate `func` over the universal tuples of `u` that satisfy
/// `selection`.
///
/// The selection is compiled against the column store first
/// ([`crate::ColumnStore::compile_predicate`]) so atoms over
/// dictionary-coded columns cost two array loads per tuple instead of a
/// `Value` comparison; the compiled form returns bit-identical decisions,
/// so this is unobservable apart from speed.
pub fn evaluate(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    func: &AggFunc,
) -> Result<f64> {
    let store = std::sync::Arc::clone(db.columns());
    let coded = store.compile_predicate(selection);
    let agg = func.compile(&store);
    let mut state = agg.new_state();
    for t in u.iter() {
        if coded.eval(db, t) {
            agg.update(&mut state, db, t)?;
        }
    }
    Ok(state.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("g", T::Str), ("x", T::Int)], &["g", "x"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (g, x) in [("a", 1), ("a", 2), ("b", 3), ("b", 3), ("c", 10)] {
            db.insert("R", vec![g.into(), x.into()]).unwrap();
        }
        db
    }

    fn x(db: &Database) -> AttrRef {
        db.schema().attr("R", "x").unwrap()
    }
    fn g(db: &Database) -> AttrRef {
        db.schema().attr("R", "g").unwrap()
    }

    #[test]
    fn count_star() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountStar).unwrap(),
            5.0
        );
        let sel = Predicate::eq(g(&db), "a");
        assert_eq!(evaluate(&db, &u, &sel, &AggFunc::CountStar).unwrap(), 2.0);
    }

    #[test]
    fn count_distinct() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(x(&db))).unwrap(),
            4.0,
            "values 1,2,3,10"
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(g(&db))).unwrap(),
            3.0
        );
    }

    #[test]
    fn sum_avg_min_max() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x(&db))).unwrap(),
            19.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x(&db))).unwrap(),
            3.8
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Min(x(&db))).unwrap(),
            1.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Max(x(&db))).unwrap(),
            10.0
        );
    }

    #[test]
    fn empty_selection_finalizes_to_zero() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        let none = Predicate::False;
        for f in [
            AggFunc::CountStar,
            AggFunc::CountDistinct(x(&db)),
            AggFunc::Sum(x(&db)),
            AggFunc::Avg(x(&db)),
            AggFunc::Min(x(&db)),
            AggFunc::Max(x(&db)),
        ] {
            assert_eq!(evaluate(&db, &u, &none, &f).unwrap(), 0.0);
        }
    }

    #[test]
    fn sum_is_exact_beyond_f64_precision() {
        // 2^53 + 1 is not representable in f64: the old f64-lane-only sum
        // computed (2^53 + 1) - 2^53 = 0. The i128 lane gets 1 exactly.
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Int)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let big = 1i64 << 53;
        for (id, x) in [(1, big), (2, 1), (3, -big)] {
            db.insert("R", vec![id.into(), x.into()]).unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x)).unwrap(),
            1.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x)).unwrap(),
            1.0 / 3.0
        );
    }

    #[test]
    fn pure_float_sum_keeps_bit_pattern() {
        // The zero int lane must not contaminate a float-only sum: the
        // result is bit-identical to the plain left-to-right f64 fold the
        // single-lane accumulator used to compute (0.1 + 0.2 + 0.3 is not
        // 0.6, and finalize must not add any rounding of its own).
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Float)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, x) in [(1, 0.1), (2, 0.2), (3, 0.3)] {
            db.insert("R", vec![id.into(), Value::Float(x)]).unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        let s = evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x)).unwrap();
        assert_eq!(s.to_bits(), (0.0f64 + 0.1 + 0.2 + 0.3).to_bits());
    }

    #[test]
    fn mixed_int_float_sum_rounds_once() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Any)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), Value::Int(1 << 53)]).unwrap();
        db.insert("R", vec![2.into(), Value::Float(0.5)]).unwrap();
        db.insert("R", vec![3.into(), Value::Int(1)]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        let s = evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x)).unwrap();
        // Exactly ((2^53 + 1) as f64) + 0.5, one rounding at the end.
        assert_eq!(s, ((1i128 << 53) + 1) as f64 + 0.5);
    }

    #[test]
    fn validate_rejects_sum_over_strings() {
        let db = db();
        assert!(AggFunc::Sum(g(&db)).validate(db.schema()).is_err());
        assert!(AggFunc::Sum(x(&db)).validate(db.schema()).is_ok());
        assert!(AggFunc::CountDistinct(g(&db)).validate(db.schema()).is_ok());
    }

    #[test]
    fn state_merge_matches_single_pass() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        for f in [
            AggFunc::CountStar,
            AggFunc::CountDistinct(x(&db)),
            AggFunc::Sum(x(&db)),
            AggFunc::Avg(x(&db)),
            AggFunc::Min(x(&db)),
            AggFunc::Max(x(&db)),
        ] {
            // Split tuples into two halves, accumulate separately, merge.
            let mut s1 = f.new_state();
            let mut s2 = f.new_state();
            for (i, t) in u.iter().enumerate() {
                let s = if i % 2 == 0 { &mut s1 } else { &mut s2 };
                s.update(&f, &db, t).unwrap();
            }
            s1.merge(&s2);
            let whole = evaluate(&db, &u, &Predicate::True, &f).unwrap();
            assert_eq!(s1.finalize(), whole, "merge mismatch for {f:?}");
        }
    }

    #[test]
    fn nulls_ignored_by_value_aggregates() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Int)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), 5.into()]).unwrap();
        db.insert("R", vec![2.into(), Value::Null]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountStar).unwrap(),
            2.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(x)).unwrap(),
            1.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x)).unwrap(),
            5.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Min(x)).unwrap(),
            5.0
        );
    }
}
