//! Aggregate functions over (filtered) universal relations.
//!
//! Each of the paper's sub-queries `q_j` is a single-aggregate SQL query
//! over the universal relation: `SELECT agg(…) FROM R_1 ⋈ … ⋈ R_k WHERE
//! selection`. [`AggFunc`] is the aggregate; evaluation filters universal
//! tuples by the selection predicate and folds an [`AggState`].

use crate::database::Database;
use crate::error::{Error, Result};
use crate::join::Universal;
use crate::predicate::Predicate;
use crate::schema::{AttrRef, DatabaseSchema};
use crate::value::{Value, ValueType};
use std::collections::HashSet;

/// An aggregate function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` over universal tuples.
    CountStar,
    /// `COUNT(DISTINCT attr)`.
    CountDistinct(AttrRef),
    /// `SUM(attr)` (numeric attr).
    Sum(AttrRef),
    /// `AVG(attr)` (numeric attr).
    Avg(AttrRef),
    /// `MIN(attr)` (numeric attr).
    Min(AttrRef),
    /// `MAX(attr)` (numeric attr).
    Max(AttrRef),
}

impl AggFunc {
    /// The attribute aggregated over, if any.
    pub fn attr(&self) -> Option<AttrRef> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::CountDistinct(a)
            | AggFunc::Sum(a)
            | AggFunc::Avg(a)
            | AggFunc::Min(a)
            | AggFunc::Max(a) => Some(*a),
        }
    }

    /// Check the aggregated attribute is numeric where required.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        match self {
            AggFunc::CountStar | AggFunc::CountDistinct(_) => Ok(()),
            AggFunc::Sum(a) | AggFunc::Avg(a) | AggFunc::Min(a) | AggFunc::Max(a) => {
                let ty = schema.relation(a.rel).attributes[a.col].ty;
                if matches!(ty, ValueType::Int | ValueType::Float | ValueType::Any) {
                    Ok(())
                } else {
                    Err(Error::NotNumeric(schema.attr_name(*a)))
                }
            }
        }
    }

    /// A fresh accumulator for this function.
    pub fn new_state(&self) -> AggState {
        match self {
            AggFunc::CountStar => AggState::Count(0),
            AggFunc::CountDistinct(_) => AggState::Distinct(HashSet::new()),
            AggFunc::Sum(_) => AggState::Sum(0.0),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
        }
    }

    /// Whether roll-up merging of two states loses nothing (distributive or
    /// algebraic aggregates). True for every [`AggFunc`] — COUNT DISTINCT
    /// keeps its key set in the state precisely so it merges exactly.
    pub fn mergeable(&self) -> bool {
        true
    }
}

/// A mergeable accumulator for one aggregate.
#[derive(Debug, Clone)]
pub enum AggState {
    /// COUNT(*) accumulator.
    Count(u64),
    /// SUM accumulator.
    Sum(f64),
    /// AVG accumulator.
    Avg {
        /// Running sum.
        sum: f64,
        /// Running count.
        n: u64,
    },
    /// MIN accumulator.
    Min(Option<Value>),
    /// MAX accumulator.
    Max(Option<Value>),
    /// COUNT DISTINCT accumulator (exact: keeps the key set so roll-up
    /// merges stay correct).
    Distinct(HashSet<Value>),
}

impl AggState {
    /// Fold one universal tuple into the state.
    #[inline]
    pub fn update(&mut self, func: &AggFunc, db: &Database, utuple: &[u32]) -> Result<()> {
        let attr_value = |a: AttrRef| db.value(a, utuple[a.rel] as usize);
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => *c += 1,
            (AggState::Distinct(set), AggFunc::CountDistinct(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && !set.contains(v) {
                    set.insert(v.clone());
                }
            }
            (AggState::Sum(s), AggFunc::Sum(a)) => {
                *s += numeric(attr_value(*a), db, *a)?;
            }
            (AggState::Avg { sum, n }, AggFunc::Avg(a)) => {
                let v = attr_value(*a);
                if !v.is_null() {
                    *sum += numeric(v, db, *a)?;
                    *n += 1;
                }
            }
            (AggState::Min(m), AggFunc::Min(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::Max(m), AggFunc::Max(a)) => {
                let v = attr_value(*a);
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            (state, func) => unreachable!("state {state:?} does not match function {func:?}"),
        }
        Ok(())
    }

    /// Merge another state of the same shape into this one (roll-up).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Avg { sum: s1, n: n1 }, AggState::Avg { sum: s2, n: n2 }) => {
                *s1 += s2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv < av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv > av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (a, b) => unreachable!("cannot merge {a:?} with {b:?}"),
        }
    }

    /// Extract the numeric result. Empty MIN/MAX/AVG yield SQL-null, which
    /// the numerical-query layer treats as 0 (the paper's outer-join
    /// convention: explanations missing from a cube count as zero).
    pub fn finalize(&self) -> f64 {
        match self {
            AggState::Count(c) => *c as f64,
            AggState::Sum(s) => *s,
            AggState::Avg { sum, n } => {
                if *n == 0 {
                    0.0
                } else {
                    sum / *n as f64
                }
            }
            AggState::Min(v) | AggState::Max(v) => {
                v.as_ref().and_then(Value::as_f64).unwrap_or(0.0)
            }
            AggState::Distinct(set) => set.len() as f64,
        }
    }
}

fn numeric(v: &Value, db: &Database, a: AttrRef) -> Result<f64> {
    if v.is_null() {
        return Ok(0.0);
    }
    v.as_f64()
        .ok_or_else(|| Error::NotNumeric(db.schema().attr_name(a)))
}

/// Evaluate `func` over the universal tuples of `u` that satisfy
/// `selection`.
pub fn evaluate(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    func: &AggFunc,
) -> Result<f64> {
    let mut state = func.new_state();
    for t in u.iter() {
        if selection.eval(db, t) {
            state.update(func, db, t)?;
        }
    }
    Ok(state.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("g", T::Str), ("x", T::Int)], &["g", "x"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (g, x) in [("a", 1), ("a", 2), ("b", 3), ("b", 3), ("c", 10)] {
            db.insert("R", vec![g.into(), x.into()]).unwrap();
        }
        db
    }

    fn x(db: &Database) -> AttrRef {
        db.schema().attr("R", "x").unwrap()
    }
    fn g(db: &Database) -> AttrRef {
        db.schema().attr("R", "g").unwrap()
    }

    #[test]
    fn count_star() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountStar).unwrap(),
            5.0
        );
        let sel = Predicate::eq(g(&db), "a");
        assert_eq!(evaluate(&db, &u, &sel, &AggFunc::CountStar).unwrap(), 2.0);
    }

    #[test]
    fn count_distinct() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(x(&db))).unwrap(),
            4.0,
            "values 1,2,3,10"
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(g(&db))).unwrap(),
            3.0
        );
    }

    #[test]
    fn sum_avg_min_max() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x(&db))).unwrap(),
            19.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x(&db))).unwrap(),
            3.8
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Min(x(&db))).unwrap(),
            1.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Max(x(&db))).unwrap(),
            10.0
        );
    }

    #[test]
    fn empty_selection_finalizes_to_zero() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        let none = Predicate::False;
        for f in [
            AggFunc::CountStar,
            AggFunc::CountDistinct(x(&db)),
            AggFunc::Sum(x(&db)),
            AggFunc::Avg(x(&db)),
            AggFunc::Min(x(&db)),
            AggFunc::Max(x(&db)),
        ] {
            assert_eq!(evaluate(&db, &u, &none, &f).unwrap(), 0.0);
        }
    }

    #[test]
    fn validate_rejects_sum_over_strings() {
        let db = db();
        assert!(AggFunc::Sum(g(&db)).validate(db.schema()).is_err());
        assert!(AggFunc::Sum(x(&db)).validate(db.schema()).is_ok());
        assert!(AggFunc::CountDistinct(g(&db)).validate(db.schema()).is_ok());
    }

    #[test]
    fn state_merge_matches_single_pass() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        for f in [
            AggFunc::CountStar,
            AggFunc::CountDistinct(x(&db)),
            AggFunc::Sum(x(&db)),
            AggFunc::Avg(x(&db)),
            AggFunc::Min(x(&db)),
            AggFunc::Max(x(&db)),
        ] {
            // Split tuples into two halves, accumulate separately, merge.
            let mut s1 = f.new_state();
            let mut s2 = f.new_state();
            for (i, t) in u.iter().enumerate() {
                let s = if i % 2 == 0 { &mut s1 } else { &mut s2 };
                s.update(&f, &db, t).unwrap();
            }
            s1.merge(&s2);
            let whole = evaluate(&db, &u, &Predicate::True, &f).unwrap();
            assert_eq!(s1.finalize(), whole, "merge mismatch for {f:?}");
        }
    }

    #[test]
    fn nulls_ignored_by_value_aggregates() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Int)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), 5.into()]).unwrap();
        db.insert("R", vec![2.into(), Value::Null]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountStar).unwrap(),
            2.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::CountDistinct(x)).unwrap(),
            1.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x)).unwrap(),
            5.0
        );
        assert_eq!(
            evaluate(&db, &u, &Predicate::True, &AggFunc::Min(x)).unwrap(),
            5.0
        );
    }
}
