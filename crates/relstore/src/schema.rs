//! Database schemas: relations, primary keys, and foreign keys.
//!
//! Foreign keys come in two flavours, following Section 2.2 of the paper:
//!
//! * **standard** (`R_j.fk → R_i.pk`) — deleting the referenced tuple
//!   cascade-deletes the referencing one (`t_i ⇝ t_j`);
//! * **back-and-forth** (`R_j.fk ↪ R_i.pk`) — additionally, deleting the
//!   referencing tuple deletes the referenced one (`t_j ⇝ t_i`): every
//!   member of a collection is necessary for the collection (every author is
//!   necessary for her paper).
//!
//! The schema-level causal structure these induce is the *schema causal
//! graph* of Definition 3.8, exposed by [`DatabaseSchema::causal_graph`].

use crate::error::{Error, Result};
use crate::value::ValueType;
use std::collections::HashMap;
use std::fmt;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name, unique within its relation.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

/// Schema of a single relation: named, typed columns plus a primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, unique within the database schema.
    pub name: String,
    /// Columns in declaration order.
    pub attributes: Vec<Attribute>,
    /// Column indices forming the primary key (non-empty).
    pub primary_key: Vec<usize>,
}

impl RelationSchema {
    /// Index of the column named `attr`, if any.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == attr)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

/// Whether a foreign key is standard (cascade only) or back-and-forth
/// (cascade plus backward cascade).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FkKind {
    /// `R_j.fk → R_i.pk`: causal edge `t_i ⇝ t_j` only.
    Standard,
    /// `R_j.fk ↪ R_i.pk`: causal edges both ways.
    BackAndForth,
}

/// A resolved foreign key `from.from_cols → to.to_cols`, where `to_cols` is
/// the primary key of `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Index of the referencing relation (the paper's `R_j`).
    pub from_rel: usize,
    /// Referencing columns in `from_rel`.
    pub from_cols: Vec<usize>,
    /// Index of the referenced relation (the paper's `R_i`).
    pub to_rel: usize,
    /// Referenced columns (always the primary key of `to_rel`).
    pub to_cols: Vec<usize>,
    /// Standard or back-and-forth.
    pub kind: FkKind,
}

/// Reference to one attribute of one relation, resolved to indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Relation index in the database schema.
    pub rel: usize,
    /// Column index within that relation.
    pub col: usize,
}

/// Schema of an entire database: relations plus foreign keys.
///
/// Invariants established by [`SchemaBuilder::build`]:
/// * relation and attribute names are unique;
/// * every foreign key targets the full primary key of its target, with
///   matching arity and types;
/// * the undirected foreign-key graph is a forest (acyclic) — required for
///   the universal relation and the Yannakakis reducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: Vec<RelationSchema>,
    foreign_keys: Vec<ForeignKey>,
}

impl DatabaseSchema {
    /// All relation schemas, in declaration order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The relation schema at `idx`.
    pub fn relation(&self, idx: usize) -> &RelationSchema {
        &self.relations[idx]
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Index of the relation named `name`.
    pub fn relation_index(&self, name: &str) -> Result<usize> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Resolve `"Relation.attribute"` or (`relation`, `attribute`) names to
    /// an [`AttrRef`].
    pub fn attr(&self, relation: &str, attribute: &str) -> Result<AttrRef> {
        let rel = self.relation_index(relation)?;
        let col =
            self.relations[rel]
                .attr_index(attribute)
                .ok_or_else(|| Error::UnknownAttribute {
                    relation: relation.to_string(),
                    attribute: attribute.to_string(),
                })?;
        Ok(AttrRef { rel, col })
    }

    /// Resolve a dotted `"Relation.attribute"` path.
    pub fn attr_path(&self, path: &str) -> Result<AttrRef> {
        match path.split_once('.') {
            Some((r, a)) => self.attr(r, a),
            None => Err(Error::UnknownAttribute {
                relation: String::new(),
                attribute: path.to_string(),
            }),
        }
    }

    /// Human-readable name of an attribute reference.
    pub fn attr_name(&self, a: AttrRef) -> String {
        format!(
            "{}.{}",
            self.relations[a.rel].name, self.relations[a.rel].attributes[a.col].name
        )
    }

    /// Whether the schema has any back-and-forth foreign key. When it does
    /// not, program **P** converges in two steps (Proposition 3.5) and
    /// COUNT(*) numerical queries are intervention-additive (Section 4.1).
    pub fn has_back_and_forth(&self) -> bool {
        self.foreign_keys
            .iter()
            .any(|fk| fk.kind == FkKind::BackAndForth)
    }

    /// Total number of back-and-forth foreign keys (the `s` of
    /// Proposition 3.11).
    pub fn back_and_forth_count(&self) -> usize {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.kind == FkKind::BackAndForth)
            .count()
    }

    /// The schema causal graph of Definition 3.8.
    pub fn causal_graph(&self) -> SchemaCausalGraph {
        let mut solid = Vec::new();
        let mut dotted = Vec::new();
        for fk in &self.foreign_keys {
            // Edge from the referenced relation to the referencing one.
            solid.push((fk.to_rel, fk.from_rel));
            if fk.kind == FkKind::BackAndForth {
                dotted.push((fk.from_rel, fk.to_rel));
            }
        }
        SchemaCausalGraph {
            relation_count: self.relations.len(),
            solid,
            dotted,
        }
    }

    /// Adjacency of the undirected foreign-key graph: for each relation, the
    /// `(fk index, neighbour relation)` pairs it participates in.
    pub(crate) fn fk_adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.relations.len()];
        for (i, fk) in self.foreign_keys.iter().enumerate() {
            adj[fk.from_rel].push((i, fk.to_rel));
            adj[fk.to_rel].push((i, fk.from_rel));
        }
        adj
    }

    /// Connected components of the undirected foreign-key graph, each a list
    /// of relation indices. The universal relation joins within components
    /// and cross-products across them.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let adj = self.fk_adjacency();
        let mut seen = vec![false; self.relations.len()];
        let mut comps = Vec::new();
        for start in 0..self.relations.len() {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for &(_, v) in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

/// The schema causal graph (Definition 3.8): one node per relation, a solid
/// edge `R_i → R_j` for every foreign key `R_j.fk → R_i.pk`, and an extra
/// dotted edge `R_j → R_i` when the key is back-and-forth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaCausalGraph {
    /// Number of relations (nodes).
    pub relation_count: usize,
    /// Solid (cascade) edges, `(referenced, referencing)`.
    pub solid: Vec<(usize, usize)>,
    /// Dotted (backward cascade) edges, `(referencing, referenced)`.
    pub dotted: Vec<(usize, usize)>,
}

impl SchemaCausalGraph {
    /// Footnote 10: at most one foreign key between any two relations.
    pub fn is_simple(&self) -> bool {
        let mut pairs: Vec<(usize, usize)> = self
            .solid
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        pairs.sort_unstable();
        pairs.windows(2).all(|w| w[0] != w[1])
    }

    /// Number of *distinct referencing relations* that carry more than one
    /// back-and-forth foreign key. Proposition 3.11 requires this to be
    /// zero for the non-recursive evaluation to apply.
    pub fn max_back_and_forth_per_relation(&self) -> usize {
        let mut counts = vec![0usize; self.relation_count];
        for &(from, _) in &self.dotted {
            counts[from] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// Incremental builder for a [`DatabaseSchema`].
///
/// ```
/// use exq_relstore::{SchemaBuilder, ValueType};
/// let schema = SchemaBuilder::new()
///     .relation("Author", &[("id", ValueType::Str), ("name", ValueType::Str)], &["id"])
///     .relation("Authored", &[("id", ValueType::Str), ("pubid", ValueType::Str)], &["id", "pubid"])
///     .standard_fk("Authored", &["id"], "Author")
///     .build()
///     .unwrap();
/// assert_eq!(schema.relation_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    // Unresolved fk declarations: (from name, from cols, to name, kind).
    fks: Vec<(String, Vec<String>, String, FkKind)>,
}

impl SchemaBuilder {
    /// An empty builder.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Declare a relation with `(name, type)` columns and a primary key
    /// given by column names. Errors (duplicate names, unknown pk columns)
    /// are reported by [`SchemaBuilder::build`].
    pub fn relation(mut self, name: &str, columns: &[(&str, ValueType)], pk: &[&str]) -> Self {
        let attributes = columns
            .iter()
            .map(|(n, t)| Attribute {
                name: (*n).to_string(),
                ty: *t,
            })
            .collect::<Vec<_>>();
        let primary_key = pk
            .iter()
            .map(|p| {
                attributes
                    .iter()
                    .position(|a| a.name == *p)
                    .unwrap_or(usize::MAX)
            })
            .collect();
        self.relations.push(RelationSchema {
            name: name.to_string(),
            attributes,
            primary_key,
        });
        self
    }

    /// Declare a standard foreign key `from.cols → to.pk`.
    pub fn standard_fk(mut self, from: &str, cols: &[&str], to: &str) -> Self {
        self.fks.push((
            from.to_string(),
            cols.iter().map(|c| c.to_string()).collect(),
            to.to_string(),
            FkKind::Standard,
        ));
        self
    }

    /// Declare a back-and-forth foreign key `from.cols ↪ to.pk`.
    pub fn back_and_forth_fk(mut self, from: &str, cols: &[&str], to: &str) -> Self {
        self.fks.push((
            from.to_string(),
            cols.iter().map(|c| c.to_string()).collect(),
            to.to_string(),
            FkKind::BackAndForth,
        ));
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<DatabaseSchema> {
        // Relation-level checks.
        let mut names = HashMap::new();
        for (i, r) in self.relations.iter().enumerate() {
            if names.insert(r.name.clone(), i).is_some() {
                return Err(Error::DuplicateRelation(r.name.clone()));
            }
            let mut attr_names = HashMap::new();
            for a in &r.attributes {
                if attr_names.insert(a.name.as_str(), ()).is_some() {
                    return Err(Error::DuplicateAttribute {
                        relation: r.name.clone(),
                        attribute: a.name.clone(),
                    });
                }
            }
            if r.primary_key.is_empty() || r.primary_key.iter().any(|&c| c >= r.attributes.len()) {
                return Err(Error::UnknownAttribute {
                    relation: r.name.clone(),
                    attribute: "<primary key>".to_string(),
                });
            }
        }

        // Resolve foreign keys.
        let mut foreign_keys = Vec::with_capacity(self.fks.len());
        for (from, cols, to, kind) in &self.fks {
            let from_rel = *names
                .get(from)
                .ok_or_else(|| Error::UnknownRelation(from.clone()))?;
            let to_rel = *names
                .get(to)
                .ok_or_else(|| Error::UnknownRelation(to.clone()))?;
            let from_schema = &self.relations[from_rel];
            let mut from_cols = Vec::with_capacity(cols.len());
            for c in cols {
                from_cols.push(from_schema.attr_index(c).ok_or_else(|| {
                    Error::UnknownAttribute {
                        relation: from.clone(),
                        attribute: c.clone(),
                    }
                })?);
            }
            let to_cols = self.relations[to_rel].primary_key.clone();
            if from_cols.len() != to_cols.len() {
                return Err(Error::ForeignKeyArity {
                    from: from.clone(),
                    to: to.clone(),
                });
            }
            for (&f, &t) in from_cols.iter().zip(&to_cols) {
                let ft = self.relations[from_rel].attributes[f].ty;
                let tt = self.relations[to_rel].attributes[t].ty;
                if ft != tt && ft != ValueType::Any && tt != ValueType::Any {
                    return Err(Error::ForeignKeyTarget {
                        from: from.clone(),
                        to: to.clone(),
                    });
                }
            }
            foreign_keys.push(ForeignKey {
                from_rel,
                from_cols,
                to_rel,
                to_cols,
                kind: *kind,
            });
        }

        let schema = DatabaseSchema {
            relations: self.relations,
            foreign_keys,
        };

        // Acyclicity: the undirected fk graph must be a forest.
        let adj = schema.fk_adjacency();
        let n = schema.relations.len();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // DFS remembering the edge we arrived by; revisiting a seen node
            // through a different edge means a cycle (multi-edges included).
            let mut stack: Vec<(usize, usize)> = vec![(start, usize::MAX)];
            seen[start] = true;
            while let Some((u, via)) = stack.pop() {
                for &(edge, v) in &adj[u] {
                    if edge == via {
                        continue;
                    }
                    if seen[v] {
                        return Err(Error::CyclicSchema);
                    }
                    seen[v] = true;
                    stack.push((v, edge));
                }
            }
        }

        Ok(schema)
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            write!(f, "{}(", r.name)?;
            for (i, a) in r.attributes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let key = if r.primary_key.contains(&i) { "*" } else { "" };
                write!(f, "{key}{}: {}", a.name, a.ty)?;
            }
            writeln!(f, ")")?;
        }
        for fk in &self.foreign_keys {
            let arrow = match fk.kind {
                FkKind::Standard => "->",
                FkKind::BackAndForth => "<->",
            };
            let from = &self.relations[fk.from_rel];
            let cols: Vec<&str> = fk
                .from_cols
                .iter()
                .map(|&c| from.attributes[c].name.as_str())
                .collect();
            writeln!(
                f,
                "  {}.({}) {} {}.pk",
                from.name,
                cols.join(","),
                arrow,
                self.relations[fk.to_rel].name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType as T;

    /// The running example's schema (Figure 3 / Eq. (2)).
    pub(crate) fn dblp_schema() -> DatabaseSchema {
        SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap()
    }

    #[test]
    fn builds_running_example_schema() {
        let s = dblp_schema();
        assert_eq!(s.relation_count(), 3);
        assert!(s.has_back_and_forth());
        assert_eq!(s.back_and_forth_count(), 1);
        let a = s.attr("Author", "name").unwrap();
        assert_eq!(s.attr_name(a), "Author.name");
        assert_eq!(
            s.attr_path("Publication.year").unwrap(),
            s.attr("Publication", "year").unwrap()
        );
    }

    #[test]
    fn rejects_duplicate_relation() {
        let err = SchemaBuilder::new()
            .relation("R", &[("a", T::Int)], &["a"])
            .relation("R", &[("b", T::Int)], &["b"])
            .build()
            .unwrap_err();
        assert_eq!(err, Error::DuplicateRelation("R".to_string()));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = SchemaBuilder::new()
            .relation("R", &[("a", T::Int), ("a", T::Str)], &["a"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateAttribute { .. }));
    }

    #[test]
    fn rejects_unknown_pk_column() {
        let err = SchemaBuilder::new()
            .relation("R", &[("a", T::Int)], &["zz"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
    }

    #[test]
    fn rejects_fk_arity_mismatch() {
        let err = SchemaBuilder::new()
            .relation("R", &[("a", T::Int), ("b", T::Int)], &["a", "b"])
            .relation("S", &[("a", T::Int)], &["a"])
            .standard_fk("S", &["a"], "R") // R's pk has two columns
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ForeignKeyArity { .. }));
    }

    #[test]
    fn rejects_fk_type_mismatch() {
        let err = SchemaBuilder::new()
            .relation("R", &[("a", T::Int)], &["a"])
            .relation("S", &[("a", T::Str)], &["a"])
            .standard_fk("S", &["a"], "R")
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ForeignKeyTarget { .. }));
    }

    #[test]
    fn rejects_cyclic_fk_graph() {
        let err = SchemaBuilder::new()
            .relation("A", &[("id", T::Int), ("b", T::Int)], &["id"])
            .relation("B", &[("id", T::Int), ("a", T::Int)], &["id"])
            .standard_fk("A", &["b"], "B")
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap_err();
        assert_eq!(err, Error::CyclicSchema);
    }

    #[test]
    fn rejects_parallel_fks_between_same_relations() {
        // Two fks between the same pair of relations form a multigraph
        // cycle, which also breaks the join-tree assumption.
        let err = SchemaBuilder::new()
            .relation("A", &[("id", T::Int)], &["id"])
            .relation("B", &[("x", T::Int), ("y", T::Int)], &["x"])
            .standard_fk("B", &["x"], "A")
            .standard_fk("B", &["y"], "A")
            .build()
            .unwrap_err();
        assert_eq!(err, Error::CyclicSchema);
    }

    #[test]
    fn causal_graph_of_running_example() {
        let s = dblp_schema();
        let g = s.causal_graph();
        let author = s.relation_index("Author").unwrap();
        let authored = s.relation_index("Authored").unwrap();
        let publication = s.relation_index("Publication").unwrap();
        assert!(g.solid.contains(&(author, authored)));
        assert!(g.solid.contains(&(publication, authored)));
        assert_eq!(g.dotted, vec![(authored, publication)]);
        assert!(g.is_simple());
        assert_eq!(g.max_back_and_forth_per_relation(), 1);
    }

    #[test]
    fn example_37_schema_has_two_bf_fks_on_one_relation() {
        // R1(a), R2(b), R3(c, a, b) with two back-and-forth fks from R3.
        let s = SchemaBuilder::new()
            .relation("R1", &[("a", T::Int)], &["a"])
            .relation("R2", &[("b", T::Int)], &["b"])
            .relation("R3", &[("c", T::Int), ("a", T::Int), ("b", T::Int)], &["c"])
            .back_and_forth_fk("R3", &["a"], "R1")
            .back_and_forth_fk("R3", &["b"], "R2")
            .build()
            .unwrap();
        let g = s.causal_graph();
        assert_eq!(
            g.max_back_and_forth_per_relation(),
            2,
            "recursion required per §3.3"
        );
        assert_eq!(s.back_and_forth_count(), 2);
    }

    #[test]
    fn components_of_forest() {
        let s = SchemaBuilder::new()
            .relation("A", &[("id", T::Int)], &["id"])
            .relation("B", &[("id", T::Int), ("a", T::Int)], &["id"])
            .relation("C", &[("id", T::Int)], &["id"])
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap();
        let comps = s.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn display_is_readable() {
        let s = dblp_schema();
        let text = s.to_string();
        assert!(text.contains("Author(*id: str"));
        assert!(text.contains("Authored.(pubid) <-> Publication.pk"));
    }
}
