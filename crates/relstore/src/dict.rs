//! First-appearance dictionary encoding for attribute values.
//!
//! A [`Dict`] maps the distinct [`Value`]s of one column to dense `u32`
//! codes. Codes are assigned **in first-appearance-in-table order** during
//! a sequential scan, so a dictionary is a pure function of the stored
//! rows — never of thread counts, hash seeds, or probe order. That makes
//! code-space computations (hash-join probes, semijoin membership, cube
//! grouping) safe to substitute for `Value`-space computations inside the
//! engine's bit-identity contract: the code↔value mapping is a bijection
//! on the column's distinct values, and the per-code `rank` table recovers
//! the `Value` total order exactly.
//!
//! Distinctness is measured under the [`Value`] total order, which is the
//! same equality every `Value`-keyed hash map in the engine uses: a mixed
//! column holding `Int(2)` and `Float(2.0)` assigns both the *same* code,
//! whose decoded representative is whichever spelling appeared first —
//! mirroring how a `HashMap<Value, _>` retains the first-inserted key.

use crate::value::Value;
use std::collections::HashMap;

/// Maximum number of distinct values a dictionary will hold. Columns with
/// more distinct values stay undictionarized (see
/// [`ColumnData`](crate::column::ColumnData) for the fallbacks).
pub const DICT_MAX: usize = 1 << 20;

/// The reserved "no code" sentinel: used for failed cross-dictionary
/// translations and for the cube's "don't care" coordinate. Safe because a
/// dictionary never exceeds [`DICT_MAX`] codes.
pub const NO_CODE: u32 = u32::MAX;

/// An immutable value dictionary for one column.
#[derive(Debug, Clone)]
pub struct Dict {
    /// Code → value, in first-appearance order.
    values: Vec<Value>,
    /// Value → code (same equality/hash as every `Value`-keyed map).
    index: HashMap<Value, u32>,
    /// Code → rank of its value under the `Value` total order.
    rank: Vec<u32>,
    /// The code NULL was assigned, if the column contains NULLs.
    null_code: Option<u32>,
}

impl Dict {
    /// Number of distinct values (= number of codes).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty (column had no rows).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The first-appearance representative value of `code`.
    #[inline]
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The code of `v`, if `v` occurs in the column (equality under the
    /// `Value` total order, so `Int(2)` finds a code stored for
    /// `Float(2.0)` and vice versa).
    #[inline]
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.index.get(v).copied()
    }

    /// The position of `code`'s value when all dictionary values are
    /// sorted by the `Value` total order. Ranks are distinct, so sorting
    /// codes by rank reproduces exactly the order `Value`-sorting the
    /// decoded values would.
    #[inline]
    pub fn rank(&self, code: u32) -> u32 {
        self.rank[code as usize]
    }

    /// The code assigned to SQL NULL, if the column contains NULLs.
    pub fn null_code(&self) -> Option<u32> {
        self.null_code
    }

    /// Whether `code` encodes SQL NULL.
    #[inline]
    pub fn is_null_code(&self, code: u32) -> bool {
        self.null_code == Some(code)
    }

    /// Per-code translation table into another column's dictionary:
    /// `table[c]` is the `other` code of `self.value(c)`, or [`NO_CODE`]
    /// when the value does not occur in `other`. This is the join-probe
    /// primitive: translating once per *code* replaces hashing once per
    /// *row*.
    pub fn translate_to(&self, other: &Dict) -> Vec<u32> {
        self.values
            .iter()
            .map(|v| other.code(v).unwrap_or(NO_CODE))
            .collect()
    }
}

/// Incremental dictionary builder for one sequential column scan.
#[derive(Debug, Default)]
pub struct DictBuilder {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> DictBuilder {
        DictBuilder::default()
    }

    /// Encode one value, assigning the next code on first appearance.
    /// Returns `None` when the dictionary would exceed [`DICT_MAX`]
    /// distinct values — the caller abandons dictionary encoding.
    pub fn encode(&mut self, v: &Value) -> Option<u32> {
        if let Some(&code) = self.index.get(v) {
            return Some(code);
        }
        if self.values.len() >= DICT_MAX {
            return None;
        }
        let code = self.values.len() as u32;
        self.values.push(v.clone());
        self.index.insert(v.clone(), code);
        Some(code)
    }

    /// Number of codes assigned so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no codes have been assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Freeze into a [`Dict`], computing the rank table and null code.
    pub fn finish(self) -> Dict {
        let DictBuilder { values, index } = self;
        // Sort code ids by their values; the sort key is the Value total
        // order, under which all dictionary values are distinct, so the
        // resulting permutation (and hence every rank) is unique.
        let mut by_value: Vec<u32> = (0..values.len() as u32).collect();
        by_value.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));
        let mut rank = vec![0u32; values.len()];
        for (pos, &code) in by_value.iter().enumerate() {
            rank[code as usize] = pos as u32;
        }
        let null_code = values
            .iter()
            .position(Value::is_null)
            .map(|p| p as u32);
        Dict {
            values,
            index,
            rank,
            null_code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_of(values: &[Value]) -> Dict {
        let mut b = DictBuilder::new();
        for v in values {
            b.encode(v).expect("under DICT_MAX");
        }
        b.finish()
    }

    #[test]
    fn codes_are_first_appearance_order() {
        let d = dict_of(&[
            Value::str("b"),
            Value::str("a"),
            Value::str("b"),
            Value::str("c"),
            Value::str("a"),
        ]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code(&Value::str("b")), Some(0));
        assert_eq!(d.code(&Value::str("a")), Some(1));
        assert_eq!(d.code(&Value::str("c")), Some(2));
        assert_eq!(d.value(0), &Value::str("b"));
        assert_eq!(d.code(&Value::str("zzz")), None);
    }

    #[test]
    fn rank_recovers_value_order() {
        let d = dict_of(&[Value::str("b"), Value::str("a"), Value::str("c")]);
        // a < b < c, so code 1 (a) ranks 0, code 0 (b) ranks 1, code 2 ranks 2.
        assert_eq!(d.rank(1), 0);
        assert_eq!(d.rank(0), 1);
        assert_eq!(d.rank(2), 2);
    }

    #[test]
    fn null_gets_a_regular_code() {
        let d = dict_of(&[Value::Int(1), Value::Null, Value::Int(2), Value::Null]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.null_code(), Some(1));
        assert!(d.is_null_code(1));
        assert!(!d.is_null_code(0));
        // Null sorts below everything, so its rank is 0.
        assert_eq!(d.rank(1), 0);
    }

    #[test]
    fn int_float_unify_to_first_appearance() {
        let d = dict_of(&[Value::Float(2.0), Value::Int(2), Value::Int(3)]);
        assert_eq!(d.len(), 2, "Int(2) == Float(2.0) under the total order");
        assert_eq!(d.code(&Value::Int(2)), Some(0));
        assert_eq!(d.code(&Value::Float(2.0)), Some(0));
        assert_eq!(d.value(0), &Value::Float(2.0), "first spelling wins");
    }

    #[test]
    fn nan_payloads_are_distinct_values() {
        let q1 = f64::NAN;
        let q2 = f64::from_bits(f64::NAN.to_bits() ^ 1);
        let d = dict_of(&[Value::Float(q1), Value::Float(q2), Value::Float(q1)]);
        assert_eq!(d.len(), 2, "total_cmp distinguishes NaN bit patterns");
        assert_eq!(d.code(&Value::Float(q1)), Some(0));
        assert_eq!(d.code(&Value::Float(q2)), Some(1));
    }

    #[test]
    fn translate_maps_shared_values_and_flags_missing() {
        let a = dict_of(&[Value::str("x"), Value::str("y"), Value::str("z")]);
        let b = dict_of(&[Value::str("z"), Value::str("x")]);
        let t = a.translate_to(&b);
        assert_eq!(t, vec![1, NO_CODE, 0]);
    }

    #[test]
    fn builder_overflow_returns_none() {
        // Shrunk-scale check of the overflow contract via the builder's
        // own bookkeeping: encode DICT_MAX distinct values is too slow for
        // a unit test, so exercise the boundary arithmetic directly.
        let mut b = DictBuilder::new();
        for i in 0..100i64 {
            assert!(b.encode(&Value::Int(i)).is_some());
        }
        assert_eq!(b.len(), 100);
        // Re-encoding an existing value never counts against the cap.
        assert_eq!(b.encode(&Value::Int(7)), Some(7));
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn empty_dict() {
        let d = DictBuilder::new().finish();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.null_code(), None);
        assert_eq!(d.code(&Value::Int(1)), None);
    }
}
