//! First-appearance dictionary encoding for attribute values.
//!
//! A [`Dict`] maps the distinct [`Value`]s of one column to dense `u32`
//! codes. Codes are assigned **in first-appearance-in-table order** during
//! a sequential scan, so a dictionary is a pure function of the stored
//! rows — never of thread counts, hash seeds, or probe order. That makes
//! code-space computations (hash-join probes, semijoin membership, cube
//! grouping) safe to substitute for `Value`-space computations inside the
//! engine's bit-identity contract: the code↔value mapping is a bijection
//! on the column's distinct values, and the per-code `rank` table recovers
//! the `Value` total order exactly.
//!
//! Distinctness is measured under the [`Value`] total order, which is the
//! same equality every `Value`-keyed hash map in the engine uses: a mixed
//! column holding `Int(2)` and `Float(2.0)` assigns both the *same* code,
//! whose decoded representative is whichever spelling appeared first —
//! mirroring how a `HashMap<Value, _>` retains the first-inserted key.

use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum number of distinct values a dictionary will hold. Columns with
/// more distinct values stay undictionarized (see
/// [`ColumnData`](crate::column::ColumnData) for the fallbacks).
pub const DICT_MAX: usize = 1 << 20;

/// The reserved "no code" sentinel: used for failed cross-dictionary
/// translations and for the cube's "don't care" coordinate. Safe because a
/// dictionary never exceeds [`DICT_MAX`] codes.
pub const NO_CODE: u32 = u32::MAX;

/// The bulk storage of a [`Dict`]: code → value plus value → code for a
/// contiguous code prefix. Shared (`Arc`) between a dictionary and its
/// live-append extensions so that [`Dict::extended`] never deep-copies
/// the prefix.
#[derive(Debug)]
struct DictBase {
    /// Code → value, in first-appearance order.
    values: Vec<Value>,
    /// Value → code (same equality/hash as every `Value`-keyed map).
    index: HashMap<Value, u32>,
}

/// An immutable value dictionary for one column.
///
/// Storage is split in two layers: a shared `DictBase` holding codes
/// `0..base.values.len()`, and a small owned overlay holding the codes
/// live appends added past it ([`Dict::extended`] keeps the overlay
/// below a fraction of the base, consolidating when it grows past
/// that). Lookups probe the base first, then the overlay; every public
/// accessor hides the split.
#[derive(Debug, Clone)]
pub struct Dict {
    base: Arc<DictBase>,
    /// Codes `base.values.len()..`, in first-appearance order.
    extra_values: Vec<Value>,
    /// Value → code for the overlay values only.
    extra_index: HashMap<Value, u32>,
    /// Code → rank of its value under the `Value` total order, for *all*
    /// codes. Owned: a flat `u32` array is cheap to copy, unlike the
    /// value storage.
    rank: Vec<u32>,
    /// The code NULL was assigned, if the column contains NULLs.
    null_code: Option<u32>,
}

impl Dict {
    /// Number of distinct values (= number of codes).
    pub fn len(&self) -> usize {
        self.base.values.len() + self.extra_values.len()
    }

    /// Whether the dictionary is empty (column had no rows).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first-appearance representative value of `code`.
    #[inline]
    pub fn value(&self, code: u32) -> &Value {
        let idx = code as usize;
        match self.base.values.get(idx) {
            Some(v) => v,
            None => &self.extra_values[idx - self.base.values.len()],
        }
    }

    /// The code of `v`, if `v` occurs in the column (equality under the
    /// `Value` total order, so `Int(2)` finds a code stored for
    /// `Float(2.0)` and vice versa).
    #[inline]
    pub fn code(&self, v: &Value) -> Option<u32> {
        match self.base.index.get(v) {
            Some(&code) => Some(code),
            None if self.extra_index.is_empty() => None,
            None => self.extra_index.get(v).copied(),
        }
    }

    /// The position of `code`'s value when all dictionary values are
    /// sorted by the `Value` total order. Ranks are distinct, so sorting
    /// codes by rank reproduces exactly the order `Value`-sorting the
    /// decoded values would.
    #[inline]
    pub fn rank(&self, code: u32) -> u32 {
        self.rank[code as usize]
    }

    /// The code assigned to SQL NULL, if the column contains NULLs.
    pub fn null_code(&self) -> Option<u32> {
        self.null_code
    }

    /// Whether `code` encodes SQL NULL.
    #[inline]
    pub fn is_null_code(&self, code: u32) -> bool {
        self.null_code == Some(code)
    }

    /// A dictionary extended with `fresh` values, which must be distinct
    /// from each other and from every value already coded (the caller
    /// checks [`Dict::code`] first). Fresh values take the next codes in
    /// order, exactly as [`DictBuilder::resume`] + re-encoding would
    /// assign them — but the rank table is *merged* rather than re-sorted:
    /// the `k` fresh values are sorted among themselves, their insertion
    /// positions in the old value order are found by binary search, and
    /// every rank is then a shifted copy. That turns the
    /// `O(d log d)`-comparison freeze of [`DictBuilder::finish`] into
    /// `O(d + k log d)`, and the value storage itself is not copied at
    /// all: the extension shares this dictionary's base and puts the
    /// fresh values in the overlay (consolidating into a new base only
    /// once the overlay outgrows a fraction of it, so the amortized cost
    /// per fresh value stays constant). Returns `None` when the extension
    /// would exceed [`DICT_MAX`] — the caller abandons dictionary
    /// encoding, matching what a from-scratch scan would do at the same
    /// distinct value.
    pub fn extended(&self, fresh: Vec<Value>) -> Option<Dict> {
        if fresh.is_empty() {
            return Some(self.clone());
        }
        if self.len() + fresh.len() > DICT_MAX {
            return None;
        }
        debug_assert!(fresh.iter().all(|v| self.code(v).is_none()));
        let old_len = self.len();
        // Old codes in value order, recovered from the rank permutation.
        let mut by_rank = vec![0u32; old_len];
        for (code, &r) in self.rank.iter().enumerate() {
            by_rank[r as usize] = code as u32;
        }
        // Sort only the fresh codes by value.
        let mut fresh_sorted: Vec<u32> = (0..fresh.len() as u32).collect();
        fresh_sorted.sort_unstable_by(|&a, &b| fresh[a as usize].cmp(&fresh[b as usize]));
        // Each fresh value's insertion position = number of old values
        // strictly below it. Non-decreasing because `fresh_sorted` is in
        // value order, so the shift pass below is a two-pointer merge.
        let positions: Vec<u32> = fresh_sorted
            .iter()
            .map(|&j| by_rank.partition_point(|&c| *self.value(c) < fresh[j as usize]) as u32)
            .collect();
        let mut rank = vec![0u32; old_len + fresh.len()];
        // Fresh value: old values below it, plus fresh values sorting
        // before it.
        for (i, &j) in fresh_sorted.iter().enumerate() {
            rank[old_len + j as usize] = positions[i] + i as u32;
        }
        // Old value at old rank `r`: shifted up by the fresh values that
        // insert at or below `r`. (Ties are impossible — all values are
        // distinct under the total order.)
        let mut inserted = 0usize;
        for r in 0..old_len as u32 {
            while inserted < positions.len() && positions[inserted] <= r {
                inserted += 1;
            }
            rank[by_rank[r as usize] as usize] = r + inserted as u32;
        }
        let null_code = self.null_code.or_else(|| {
            fresh
                .iter()
                .position(Value::is_null)
                .map(|p| (old_len + p) as u32)
        });
        let (base, extra_values, extra_index) = if (self.extra_values.len() + fresh.len()) * 8
            > self.base.values.len()
        {
            // Overlay would outgrow an eighth of the base: fold
            // everything into a fresh base. O(d), but amortized over
            // the ≥ d/8 overlay insertions since the last fold.
            let mut values =
                Vec::with_capacity(self.base.values.len() + self.extra_values.len() + fresh.len());
            values.extend(self.base.values.iter().cloned());
            values.extend(self.extra_values.iter().cloned());
            values.extend(fresh);
            let index = values
                .iter()
                .enumerate()
                .map(|(c, v)| (v.clone(), c as u32))
                .collect();
            (
                Arc::new(DictBase { values, index }),
                Vec::new(),
                HashMap::new(),
            )
        } else {
            let mut extra_values = self.extra_values.clone();
            let mut extra_index = self.extra_index.clone();
            for (j, v) in fresh.iter().enumerate() {
                extra_index.insert(v.clone(), (old_len + j) as u32);
            }
            extra_values.extend(fresh);
            (Arc::clone(&self.base), extra_values, extra_index)
        };
        Some(Dict {
            base,
            extra_values,
            extra_index,
            rank,
            null_code,
        })
    }

    /// Per-code translation table into another column's dictionary:
    /// `table[c]` is the `other` code of `self.value(c)`, or [`NO_CODE`]
    /// when the value does not occur in `other`. This is the join-probe
    /// primitive: translating once per *code* replaces hashing once per
    /// *row*.
    pub fn translate_to(&self, other: &Dict) -> Vec<u32> {
        (0..self.len() as u32)
            .map(|c| other.code(self.value(c)).unwrap_or(NO_CODE))
            .collect()
    }
}

/// Incremental dictionary builder for one sequential column scan.
#[derive(Debug, Default)]
pub struct DictBuilder {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> DictBuilder {
        DictBuilder::default()
    }

    /// A builder seeded with every code of an existing dictionary, for
    /// appending new rows to an already-encoded column. Because codes are
    /// first-appearance order over the stored rows, resuming from the old
    /// dictionary and encoding only the new rows yields *exactly* the
    /// dictionary a from-scratch scan of old + new rows would: existing
    /// codes are never reassigned, and fresh values take the next codes.
    pub fn resume(dict: &Dict) -> DictBuilder {
        let mut index = dict.base.index.clone();
        for (j, v) in dict.extra_values.iter().enumerate() {
            index.insert(v.clone(), (dict.base.values.len() + j) as u32);
        }
        let mut values = dict.base.values.clone();
        values.extend(dict.extra_values.iter().cloned());
        DictBuilder { values, index }
    }

    /// Encode one value, assigning the next code on first appearance.
    /// Returns `None` when the dictionary would exceed [`DICT_MAX`]
    /// distinct values — the caller abandons dictionary encoding.
    pub fn encode(&mut self, v: &Value) -> Option<u32> {
        if let Some(&code) = self.index.get(v) {
            return Some(code);
        }
        if self.values.len() >= DICT_MAX {
            return None;
        }
        let code = self.values.len() as u32;
        self.values.push(v.clone());
        self.index.insert(v.clone(), code);
        Some(code)
    }

    /// Number of codes assigned so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no codes have been assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Freeze into a [`Dict`], computing the rank table and null code.
    pub fn finish(self) -> Dict {
        let DictBuilder { values, index } = self;
        // Sort code ids by their values; the sort key is the Value total
        // order, under which all dictionary values are distinct, so the
        // resulting permutation (and hence every rank) is unique.
        let mut by_value: Vec<u32> = (0..values.len() as u32).collect();
        by_value.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));
        let mut rank = vec![0u32; values.len()];
        for (pos, &code) in by_value.iter().enumerate() {
            rank[code as usize] = pos as u32;
        }
        let null_code = values.iter().position(Value::is_null).map(|p| p as u32);
        Dict {
            base: Arc::new(DictBase { values, index }),
            extra_values: Vec::new(),
            extra_index: HashMap::new(),
            rank,
            null_code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_of(values: &[Value]) -> Dict {
        let mut b = DictBuilder::new();
        for v in values {
            b.encode(v).expect("under DICT_MAX");
        }
        b.finish()
    }

    #[test]
    fn codes_are_first_appearance_order() {
        let d = dict_of(&[
            Value::str("b"),
            Value::str("a"),
            Value::str("b"),
            Value::str("c"),
            Value::str("a"),
        ]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code(&Value::str("b")), Some(0));
        assert_eq!(d.code(&Value::str("a")), Some(1));
        assert_eq!(d.code(&Value::str("c")), Some(2));
        assert_eq!(d.value(0), &Value::str("b"));
        assert_eq!(d.code(&Value::str("zzz")), None);
    }

    #[test]
    fn rank_recovers_value_order() {
        let d = dict_of(&[Value::str("b"), Value::str("a"), Value::str("c")]);
        // a < b < c, so code 1 (a) ranks 0, code 0 (b) ranks 1, code 2 ranks 2.
        assert_eq!(d.rank(1), 0);
        assert_eq!(d.rank(0), 1);
        assert_eq!(d.rank(2), 2);
    }

    #[test]
    fn null_gets_a_regular_code() {
        let d = dict_of(&[Value::Int(1), Value::Null, Value::Int(2), Value::Null]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.null_code(), Some(1));
        assert!(d.is_null_code(1));
        assert!(!d.is_null_code(0));
        // Null sorts below everything, so its rank is 0.
        assert_eq!(d.rank(1), 0);
    }

    #[test]
    fn int_float_unify_to_first_appearance() {
        let d = dict_of(&[Value::Float(2.0), Value::Int(2), Value::Int(3)]);
        assert_eq!(d.len(), 2, "Int(2) == Float(2.0) under the total order");
        assert_eq!(d.code(&Value::Int(2)), Some(0));
        assert_eq!(d.code(&Value::Float(2.0)), Some(0));
        assert_eq!(d.value(0), &Value::Float(2.0), "first spelling wins");
    }

    #[test]
    fn nan_payloads_are_distinct_values() {
        let q1 = f64::NAN;
        let q2 = f64::from_bits(f64::NAN.to_bits() ^ 1);
        let d = dict_of(&[Value::Float(q1), Value::Float(q2), Value::Float(q1)]);
        assert_eq!(d.len(), 2, "total_cmp distinguishes NaN bit patterns");
        assert_eq!(d.code(&Value::Float(q1)), Some(0));
        assert_eq!(d.code(&Value::Float(q2)), Some(1));
    }

    #[test]
    fn translate_maps_shared_values_and_flags_missing() {
        let a = dict_of(&[Value::str("x"), Value::str("y"), Value::str("z")]);
        let b = dict_of(&[Value::str("z"), Value::str("x")]);
        let t = a.translate_to(&b);
        assert_eq!(t, vec![1, NO_CODE, 0]);
    }

    #[test]
    fn builder_overflow_returns_none() {
        // Shrunk-scale check of the overflow contract via the builder's
        // own bookkeeping: encode DICT_MAX distinct values is too slow for
        // a unit test, so exercise the boundary arithmetic directly.
        let mut b = DictBuilder::new();
        for i in 0..100i64 {
            assert!(b.encode(&Value::Int(i)).is_some());
        }
        assert_eq!(b.len(), 100);
        // Re-encoding an existing value never counts against the cap.
        assert_eq!(b.encode(&Value::Int(7)), Some(7));
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn resume_extends_without_rewriting_codes() {
        let old_rows = [Value::str("b"), Value::Null, Value::str("a")];
        let new_rows = [Value::str("a"), Value::Int(7), Value::Null, Value::str("c")];
        let old = dict_of(&old_rows);

        let mut resumed = DictBuilder::resume(&old);
        for v in &new_rows {
            resumed.encode(v).expect("under DICT_MAX");
        }
        let extended = resumed.finish();

        let mut scratch = DictBuilder::new();
        for v in old_rows.iter().chain(&new_rows) {
            scratch.encode(v).expect("under DICT_MAX");
        }
        let rebuilt = scratch.finish();

        assert_eq!(extended.len(), rebuilt.len());
        for code in 0..extended.len() as u32 {
            assert_eq!(extended.value(code), rebuilt.value(code));
            assert_eq!(extended.rank(code), rebuilt.rank(code));
        }
        assert_eq!(extended.null_code(), rebuilt.null_code());
        // Old codes survive verbatim.
        for code in 0..old.len() as u32 {
            assert_eq!(extended.value(code), old.value(code));
        }
        assert_eq!(extended.code(&Value::Int(7)), Some(3));
        assert_eq!(extended.code(&Value::str("c")), Some(4));
    }

    #[test]
    fn extended_matches_resume_and_refinish() {
        // The merge-based rank update must agree, code for code and rank
        // for rank, with resuming the builder and re-sorting everything.
        let old_rows = [
            Value::str("m"),
            Value::str("b"),
            Value::Int(4),
            Value::str("x"),
            Value::Null,
        ];
        let old = dict_of(&old_rows);
        // Fresh values landing before, between, and after old ranks,
        // including consecutive insertions at one position.
        let fresh = vec![
            Value::str("z"),
            Value::str("a"),
            Value::Int(1),
            Value::Int(2),
            Value::str("q"),
        ];
        let merged = old.extended(fresh.clone()).expect("under DICT_MAX");

        let mut resumed = DictBuilder::resume(&old);
        for v in &fresh {
            resumed.encode(v).expect("under DICT_MAX");
        }
        let refinished = resumed.finish();

        assert_eq!(merged.len(), refinished.len());
        for code in 0..merged.len() as u32 {
            assert_eq!(merged.value(code), refinished.value(code));
            assert_eq!(merged.rank(code), refinished.rank(code), "code {code}");
            assert_eq!(merged.code(merged.value(code)), Some(code));
        }
        assert_eq!(merged.null_code(), refinished.null_code());
    }

    #[test]
    fn repeated_extensions_match_refinish_across_consolidation() {
        // Chain extensions until the overlay folds into a new base (the
        // small base here makes every step consolidate) and compare each
        // step against the resume-and-refinish reference.
        let mut rows: Vec<Value> = vec![Value::str("k"), Value::str("d"), Value::Int(40)];
        let mut d = dict_of(&rows);
        for step in 0..6 {
            let fresh = vec![Value::str(format!("s{step}")), Value::Int(step * 7 - 10)];
            let merged = d.extended(fresh.clone()).expect("under DICT_MAX");
            rows.extend(fresh);
            let reference = dict_of(&rows);
            assert_eq!(merged.len(), reference.len(), "step {step}");
            for code in 0..merged.len() as u32 {
                assert_eq!(merged.value(code), reference.value(code), "step {step}");
                assert_eq!(merged.rank(code), reference.rank(code), "step {step}");
                assert_eq!(merged.code(merged.value(code)), Some(code), "step {step}");
            }
            assert_eq!(merged.null_code(), reference.null_code());
            d = merged;
        }
    }

    #[test]
    fn extended_with_no_fresh_values_is_identity() {
        let d = dict_of(&[Value::str("b"), Value::Null, Value::Int(9)]);
        let same = d.extended(Vec::new()).expect("no growth");
        assert_eq!(same.len(), d.len());
        for code in 0..d.len() as u32 {
            assert_eq!(same.value(code), d.value(code));
            assert_eq!(same.rank(code), d.rank(code));
        }
        assert_eq!(same.null_code(), d.null_code());
    }

    #[test]
    fn extended_assigns_null_code_to_fresh_null() {
        let d = dict_of(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(d.null_code(), None);
        let merged = d
            .extended(vec![Value::str("s"), Value::Null])
            .expect("under DICT_MAX");
        assert_eq!(merged.null_code(), Some(3));
        // Null sorts below everything under the total order.
        assert_eq!(merged.rank(3), 0);
    }

    #[test]
    fn resume_on_unchanged_input_reproduces_dict() {
        let rows = [Value::Int(3), Value::Null, Value::Float(1.5), Value::Int(3)];
        let d = dict_of(&rows);
        let again = DictBuilder::resume(&d).finish();
        assert_eq!(again.len(), d.len());
        for code in 0..d.len() as u32 {
            assert_eq!(again.value(code), d.value(code));
            assert_eq!(again.rank(code), d.rank(code));
        }
        assert_eq!(again.null_code(), d.null_code());
    }

    #[test]
    fn empty_dict() {
        let d = DictBuilder::new().finish();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.null_code(), None);
        assert_eq!(d.code(&Value::Int(1)), None);
    }
}
