//! Row storage for one relation.
//!
//! Rows are append-only and keep stable indices for their lifetime; every
//! higher-level structure (interventions, semijoin reducers, universal
//! tuples) refers to rows by index. "Deletion" is always expressed as a
//! [`TupleSet`](crate::TupleSet) of removed indices, never by physically
//! removing rows — exactly what the intervention semantics of the paper
//! needs, since `D − Δ` must remain comparable to `D`.

use crate::error::{Error, Result};
use crate::schema::RelationSchema;
use crate::value::Value;
use std::sync::Arc;

/// A stored row: one `Value` per attribute, in schema order. Shared
/// (`Arc`) rather than owned (`Box`) so cloning a [`Relation`] — which
/// the epoch-snapshot append path does to unshare a grown relation from
/// the previous epoch — copies one pointer per row instead of
/// reallocating every row.
pub type Row = Arc<[Value]>;

/// The rows of one relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation.
    pub fn new() -> Relation {
        Relation { rows: Vec::new() }
    }

    /// An empty relation with row capacity reserved.
    pub fn with_capacity(n: usize) -> Relation {
        Relation {
            rows: Vec::with_capacity(n),
        }
    }

    /// Number of rows ever inserted.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row at `idx`.
    #[inline]
    pub fn row(&self, idx: usize) -> &[Value] {
        &self.rows[idx]
    }

    /// All rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> {
        self.rows.iter().map(|r| &**r)
    }

    /// Append a row after validating arity and column types against
    /// `schema`. Returns the new row's index.
    pub fn push_checked(&mut self, schema: &RelationSchema, row: Vec<Value>) -> Result<usize> {
        if row.len() != schema.arity() {
            return Err(Error::RowArity {
                relation: schema.name.clone(),
                expected: schema.arity(),
                got: row.len(),
            });
        }
        for (attr, v) in schema.attributes.iter().zip(&row) {
            if !attr.ty.admits(v) {
                return Err(Error::TypeMismatch {
                    relation: schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    got: v.type_name().to_string(),
                });
            }
        }
        self.rows.push(row.into());
        Ok(self.rows.len() - 1)
    }

    /// Roll back to the first `len` rows. Only the append path uses this,
    /// to restore the pre-batch state when a later row of the same batch
    /// fails validation — appends are atomic per batch, and indices of
    /// surviving rows never move.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.rows.len(), "truncate cannot grow a relation");
        self.rows.truncate(len);
    }

    /// Project `cols` of row `idx` into `out` (cleared first). A reusable
    /// workhorse buffer keeps key extraction allocation-free in join loops.
    #[inline]
    pub fn project_into(&self, idx: usize, cols: &[usize], out: &mut Vec<Value>) {
        out.clear();
        let row = &self.rows[idx];
        out.extend(cols.iter().map(|&c| row[c].clone()));
    }

    /// Owned projection of `cols` of row `idx`.
    pub fn project(&self, idx: usize, cols: &[usize]) -> Vec<Value> {
        let row = &self.rows[idx];
        cols.iter().map(|&c| row[c].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};
    use crate::value::ValueType;

    fn schema() -> RelationSchema {
        RelationSchema {
            name: "R".to_string(),
            attributes: vec![
                Attribute {
                    name: "id".into(),
                    ty: ValueType::Int,
                },
                Attribute {
                    name: "label".into(),
                    ty: ValueType::Str,
                },
            ],
            primary_key: vec![0],
        }
    }

    #[test]
    fn push_and_read() {
        let s = schema();
        let mut r = Relation::new();
        let i0 = r
            .push_checked(&s, vec![Value::Int(1), Value::str("a")])
            .unwrap();
        let i1 = r
            .push_checked(&s, vec![Value::Int(2), Value::str("b")])
            .unwrap();
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1)[1], Value::str("b"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let s = schema();
        let mut r = Relation::new();
        let err = r.push_checked(&s, vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            Error::RowArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_wrong_type() {
        let s = schema();
        let mut r = Relation::new();
        let err = r
            .push_checked(&s, vec![Value::str("x"), Value::str("a")])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn null_always_admitted() {
        let s = schema();
        let mut r = Relation::new();
        r.push_checked(&s, vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(r.row(0)[0], Value::Null);
    }

    #[test]
    fn projection() {
        let s = schema();
        let mut r = Relation::new();
        r.push_checked(&s, vec![Value::Int(7), Value::str("z")])
            .unwrap();
        assert_eq!(r.project(0, &[1, 0]), vec![Value::str("z"), Value::Int(7)]);
        let mut buf = vec![Value::Null; 4];
        r.project_into(0, &[0], &mut buf);
        assert_eq!(buf, vec![Value::Int(7)]);
    }
}
