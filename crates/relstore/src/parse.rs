//! Text formats: a schema DSL and a predicate expression language.
//!
//! Real deployments declare schemas and selections in configuration, not
//! Rust code. Two hand-rolled parsers (no dependencies):
//!
//! ## Schema DSL ([`parse_schema`])
//!
//! ```text
//! # comments start with '#'
//! relation Author(id: str key, name: str, inst: str, dom: str)
//! relation Authored(id: str key, pubid: str key)
//! relation Publication(pubid: str key, year: int, venue: str)
//! fk Authored(id) -> Author
//! fk Authored(pubid) <-> Publication      # back-and-forth
//! ```
//!
//! Column types: `str`, `int`, `float`, `bool`, `any`. Columns marked
//! `key` form the primary key. `->` declares a standard foreign key,
//! `<->` a back-and-forth one; the referenced columns are always the
//! target's primary key.
//!
//! ## Predicate language ([`parse_predicate`])
//!
//! ```text
//! venue = 'SIGMOD' and dom = 'com' and year >= 2000 and year <= 2004
//! (city = 'Oxford' or inst = 'Semmle Ltd.') and not year < 2001
//! ```
//!
//! Comparison operators `= != <> < <= > >=`, boolean `and`/`or`/`not`
//! (case-insensitive), parentheses, string literals in single or double
//! quotes, integer/float/true/false/null literals. Attributes are
//! `Relation.attr` or a bare `attr` when unambiguous across the schema.

use crate::error::{Error, Result};
use crate::predicate::{CmpOp, Predicate};
use crate::schema::{AttrRef, DatabaseSchema, SchemaBuilder};
use crate::text::{col_of, strip_comment};
use crate::value::{Value, ValueType};

fn parse_err(line: usize, col: usize, message: impl Into<String>) -> Error {
    Error::Parse {
        line,
        col,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Schema DSL
// ---------------------------------------------------------------------

/// Parse the schema DSL into a validated [`DatabaseSchema`].
pub fn parse_schema(text: &str) -> Result<DatabaseSchema> {
    let mut builder = SchemaBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            builder = parse_relation_line(builder, raw, rest.trim(), line_no)?;
        } else if let Some(rest) = line.strip_prefix("fk ") {
            builder = parse_fk_line(builder, raw, rest.trim(), line_no)?;
        } else {
            return Err(parse_err(
                line_no,
                col_of(raw, line),
                format!("expected `relation` or `fk`, got `{line}`"),
            ));
        }
    }
    builder.build()
}

/// `Name(col: type [key], …)`
fn parse_relation_line(
    builder: SchemaBuilder,
    raw: &str,
    rest: &str,
    line: usize,
) -> Result<SchemaBuilder> {
    let open = rest
        .find('(')
        .ok_or_else(|| parse_err(line, col_of(raw, rest), "expected `(` after relation name"))?;
    if !rest.ends_with(')') {
        return Err(parse_err(
            line,
            col_of(raw, rest) + rest.chars().count(),
            "expected `)` at end of relation declaration",
        ));
    }
    let name = rest[..open].trim();
    if name.is_empty() {
        return Err(parse_err(line, col_of(raw, rest), "missing relation name"));
    }
    let body = &rest[open + 1..rest.len() - 1];
    let mut columns: Vec<(String, ValueType)> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    for col_spec in body.split(',') {
        let col_spec = col_spec.trim();
        let at = |sub: &str| col_of(raw, sub);
        if col_spec.is_empty() {
            return Err(parse_err(line, at(body), "empty column declaration"));
        }
        let (col_name, rest) = col_spec.split_once(':').ok_or_else(|| {
            parse_err(
                line,
                at(col_spec),
                format!("expected `name: type` in `{col_spec}`"),
            )
        })?;
        let col_name = col_name.trim().to_string();
        let mut parts = rest.split_whitespace();
        let ty_text = parts.next().ok_or_else(|| {
            parse_err(line, at(col_spec), format!("missing type in `{col_spec}`"))
        })?;
        let ty = match ty_text {
            "str" => ValueType::Str,
            "int" => ValueType::Int,
            "float" => ValueType::Float,
            "bool" => ValueType::Bool,
            "any" => ValueType::Any,
            other => {
                return Err(parse_err(
                    line,
                    at(other),
                    format!("unknown type `{other}`"),
                ))
            }
        };
        match parts.next() {
            None => {}
            Some("key") => keys.push(col_name.clone()),
            Some(other) => {
                return Err(parse_err(
                    line,
                    at(other),
                    format!("unexpected token `{other}` after type"),
                ))
            }
        }
        if let Some(extra) = parts.next() {
            return Err(parse_err(
                line,
                at(extra),
                format!("trailing tokens in `{col_spec}`"),
            ));
        }
        columns.push((col_name, ty));
    }
    if keys.is_empty() {
        return Err(parse_err(
            line,
            col_of(raw, name),
            format!("relation `{name}` declares no key column"),
        ));
    }
    let cols_ref: Vec<(&str, ValueType)> = columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let keys_ref: Vec<&str> = keys.iter().map(String::as_str).collect();
    Ok(builder.relation(name, &cols_ref, &keys_ref))
}

/// `From(col, …) -> To` or `From(col, …) <-> To`
fn parse_fk_line(
    builder: SchemaBuilder,
    raw: &str,
    rest: &str,
    line: usize,
) -> Result<SchemaBuilder> {
    let (head, target, back_and_forth) = if let Some((h, t)) = rest.split_once("<->") {
        (h.trim(), t.trim(), true)
    } else if let Some((h, t)) = rest.split_once("->") {
        (h.trim(), t.trim(), false)
    } else {
        return Err(parse_err(
            line,
            col_of(raw, rest),
            "expected `->` or `<->` in foreign key",
        ));
    };
    if target.is_empty() {
        return Err(parse_err(
            line,
            col_of(raw, rest) + rest.chars().count(),
            "missing foreign-key target relation",
        ));
    }
    let open = head.find('(').ok_or_else(|| {
        parse_err(
            line,
            col_of(raw, head),
            "expected `(columns)` after relation",
        )
    })?;
    if !head.ends_with(')') {
        return Err(parse_err(
            line,
            col_of(raw, head) + head.chars().count(),
            "expected `)` after foreign-key columns",
        ));
    }
    let from = head[..open].trim();
    let cols: Vec<&str> = head[open + 1..head.len() - 1]
        .split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .collect();
    if from.is_empty() || cols.is_empty() {
        return Err(parse_err(
            line,
            col_of(raw, head),
            "malformed foreign-key declaration",
        ));
    }
    Ok(if back_and_forth {
        builder.back_and_forth_fk(from, &cols, target)
    } else {
        builder.standard_fk(from, &cols, target)
    })
}

/// Render a schema in the DSL ([`parse_schema`] ∘ `schema_to_text` is the
/// identity up to whitespace) — the persistence format the CLI reads.
pub fn schema_to_text(schema: &DatabaseSchema) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for r in schema.relations() {
        let cols: Vec<String> = r
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let key = if r.primary_key.contains(&i) {
                    " key"
                } else {
                    ""
                };
                format!("{}: {}{key}", a.name, a.ty)
            })
            .collect();
        let _ = writeln!(out, "relation {}({})", r.name, cols.join(", "));
    }
    for fk in schema.foreign_keys() {
        let from = schema.relation(fk.from_rel);
        let cols: Vec<&str> = fk
            .from_cols
            .iter()
            .map(|&c| from.attributes[c].name.as_str())
            .collect();
        let arrow = match fk.kind {
            crate::schema::FkKind::Standard => "->",
            crate::schema::FkKind::BackAndForth => "<->",
        };
        let _ = writeln!(
            out,
            "fk {}({}) {} {}",
            from.name,
            cols.join(", "),
            arrow,
            schema.relation(fk.to_rel).name
        );
    }
    out
}

// ---------------------------------------------------------------------
// Predicate language
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Op(CmpOp),
    LParen,
    RParen,
    And,
    Or,
    Not,
    True,
    False,
    Null,
}

/// Tokenize predicate text; each token carries its 1-based char column
/// within `text` so parse errors can point at the offending token.
fn tokenize(text: &str) -> Result<Vec<(Token, usize)>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let err = |col: usize, msg: String| parse_err(1, col, msg);
    while i < chars.len() {
        let c = chars[i];
        let col = i + 1;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push((Token::LParen, col));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, col));
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(err(col, "unterminated string literal".to_string()));
                    }
                    if chars[i] == quote {
                        // Doubled quote = escaped quote.
                        if i + 1 < chars.len() && chars[i + 1] == quote {
                            s.push(quote);
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push((Token::Str(s), col));
            }
            '=' => {
                tokens.push((Token::Op(CmpOp::Eq), col));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push((Token::Op(CmpOp::Ne), col));
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push((Token::Op(CmpOp::Le), col));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push((Token::Op(CmpOp::Ne), col));
                    i += 2;
                } else {
                    tokens.push((Token::Op(CmpOp::Lt), col));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push((Token::Op(CmpOp::Ge), col));
                    i += 2;
                } else {
                    tokens.push((Token::Op(CmpOp::Gt), col));
                    i += 1;
                }
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    is_float |= chars[i] == '.';
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    tokens.push((
                        Token::Float(
                            text.parse()
                                .map_err(|_| err(col, format!("bad float `{text}`")))?,
                        ),
                        col,
                    ));
                } else {
                    tokens.push((
                        Token::Int(
                            text.parse()
                                .map_err(|_| err(col, format!("bad integer `{text}`")))?,
                        ),
                        col,
                    ));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.to_ascii_lowercase().as_str() {
                    "and" => tokens.push((Token::And, col)),
                    "or" => tokens.push((Token::Or, col)),
                    "not" => tokens.push((Token::Not, col)),
                    "true" => tokens.push((Token::True, col)),
                    "false" => tokens.push((Token::False, col)),
                    "null" => tokens.push((Token::Null, col)),
                    _ => tokens.push((Token::Ident(word), col)),
                }
            }
            other => return Err(err(col, format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

/// Resolve an attribute name: `Relation.attr` or a bare `attr` that is
/// unique across the schema.
pub fn resolve_attr(schema: &DatabaseSchema, name: &str) -> Result<AttrRef> {
    if name.contains('.') {
        return schema.attr_path(name);
    }
    let mut matches = Vec::new();
    for (rel, r) in schema.relations().iter().enumerate() {
        if let Some(col) = r.attr_index(name) {
            matches.push(AttrRef { rel, col });
        }
    }
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(Error::UnknownAttribute {
            relation: "*".to_string(),
            attribute: name.to_string(),
        }),
        _ => Err(parse_err(
            1,
            0,
            format!("attribute `{name}` is ambiguous; qualify it as Relation.{name}"),
        )),
    }
}

struct PredParser<'a> {
    schema: &'a DatabaseSchema,
    tokens: Vec<(Token, usize)>,
    pos: usize,
    /// Line number reported in errors.
    line: usize,
    /// Char offset added to token columns (predicate text embedded in a
    /// larger line, e.g. after `where `).
    col0: usize,
    /// Column just past the end of the text (for end-of-input errors).
    end_col: usize,
}

impl PredParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// Column of the current token, or of end-of-input.
    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.end_col, |&(_, col)| col)
            + self.col0
    }

    fn err_here(&self, message: impl Into<String>) -> Error {
        parse_err(self.line, self.here(), message)
    }

    // exq-lint: allow(L006): cursor advance over this parser's own token/position types; sharing would couple the strict and loose token enums
    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    // exq-lint: allow(L006): precedence-climbing skeleton; operates on this parser's Token/Predicate, the strict/loose pair differ in error arms
    fn expr(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.conjunction()?];
        while self.peek() == Some(&Token::Or) {
            self.next();
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Predicate::Or(parts)
        })
    }

    // exq-lint: allow(L006): precedence-climbing skeleton; see `expr` above
    fn conjunction(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Token::And) {
            self.next();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Predicate::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Predicate> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(Predicate::not(self.unary()?))
            }
            Some(Token::LParen) => {
                self.next();
                let inner = self.expr()?;
                match self.peek() {
                    Some(Token::RParen) => {
                        self.next();
                        Ok(inner)
                    }
                    _ => Err(self.err_here("expected `)`")),
                }
            }
            Some(Token::True) => {
                self.next();
                Ok(Predicate::True)
            }
            Some(Token::False) => {
                self.next();
                Ok(Predicate::False)
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let attr_col = self.here();
        let attr = match self.next() {
            Some(Token::Ident(name)) => {
                resolve_attr(self.schema, &name).map_err(|e| match e {
                    // Patch in the real position (resolve_attr has no
                    // access to token spans).
                    Error::Parse {
                        col: 0, message, ..
                    } => parse_err(self.line, attr_col, message),
                    other => other,
                })?
            }
            other => {
                return Err(parse_err(
                    self.line,
                    attr_col,
                    format!("expected attribute, got {other:?}"),
                ))
            }
        };
        let op_col = self.here();
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            other => {
                return Err(parse_err(
                    self.line,
                    op_col,
                    format!("expected comparison operator, got {other:?}"),
                ))
            }
        };
        let lit_col = self.here();
        let value = match self.next() {
            Some(Token::Str(s)) => Value::str(s),
            Some(Token::Int(i)) => Value::Int(i),
            Some(Token::Float(f)) => Value::Float(f),
            Some(Token::True) => Value::Bool(true),
            Some(Token::False) => Value::Bool(false),
            Some(Token::Null) => Value::Null,
            other => {
                return Err(parse_err(
                    self.line,
                    lit_col,
                    format!("expected literal, got {other:?}"),
                ))
            }
        };
        Ok(Predicate::cmp(attr, op, value))
    }
}

/// Render a predicate as text the predicate language parses back
/// ([`parse_predicate`] ∘ `predicate_to_text` is semantics-preserving).
/// Attributes are fully qualified; strings are single-quoted with `''`
/// escaping. Non-finite floats have no literal syntax and render as
/// `null` comparisons (they match nothing under two-valued semantics, so
/// semantics are preserved).
pub fn predicate_to_text(schema: &DatabaseSchema, pred: &Predicate) -> String {
    fn value_text(v: &Value) -> String {
        match v {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            // `Display` for f64 never uses scientific notation and prints
            // enough digits to round-trip; integral floats print as
            // integers, which re-parse as `Int` — equal under `Value`'s
            // numeric ordering.
            Value::Float(f) if f.is_finite() => f.to_string(),
            Value::Float(_) => "null".to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
    fn go(schema: &DatabaseSchema, p: &Predicate) -> String {
        match p {
            Predicate::True => "true".to_string(),
            Predicate::False => "false".to_string(),
            Predicate::Atom(a) => {
                format!(
                    "{} {} {}",
                    schema.attr_name(a.attr),
                    a.op,
                    value_text(&a.value)
                )
            }
            Predicate::And(parts) if parts.is_empty() => "true".to_string(),
            Predicate::And(parts) => {
                let inner: Vec<String> = parts.iter().map(|q| go(schema, q)).collect();
                format!("({})", inner.join(" and "))
            }
            Predicate::Or(parts) if parts.is_empty() => "false".to_string(),
            Predicate::Or(parts) => {
                let inner: Vec<String> = parts.iter().map(|q| go(schema, q)).collect();
                format!("({})", inner.join(" or "))
            }
            Predicate::Not(inner) => format!("not ({})", go(schema, inner)),
        }
    }
    go(schema, pred)
}

/// Parse a predicate expression against a schema.
pub fn parse_predicate(schema: &DatabaseSchema, text: &str) -> Result<Predicate> {
    parse_predicate_at(schema, text, 1, 0)
}

/// [`parse_predicate`] for predicate text embedded in a larger source:
/// errors report `line` and columns offset by `col0` (the 0-based char
/// offset of `text` within its source line). Used by the question-file
/// parser and the static analyzer so `where`-clause diagnostics point
/// into the original file.
pub fn parse_predicate_at(
    schema: &DatabaseSchema,
    text: &str,
    line: usize,
    col0: usize,
) -> Result<Predicate> {
    let tokens = tokenize(text).map_err(|e| match e {
        Error::Parse { col, message, .. } => parse_err(line, col0 + col, message),
        other => other,
    })?;
    if tokens.is_empty() {
        return Ok(Predicate::True);
    }
    let mut parser = PredParser {
        schema,
        tokens,
        pos: 0,
        line,
        col0,
        end_col: text.chars().count() + 1,
    };
    let pred = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        let col = parser.here();
        return Err(parse_err(
            line,
            col,
            format!(
                "trailing tokens after predicate: {:?}",
                parser.tokens[parser.pos..]
                    .iter()
                    .map(|(t, _)| t)
                    .collect::<Vec<_>>()
            ),
        ));
    }
    Ok(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::join::Universal;

    const SCHEMA_TEXT: &str = "
# the running example
relation Author(id: str key, name: str, inst: str, dom: str)
relation Authored(id: str key, pubid: str key)
relation Publication(pubid: str key, year: int, venue: str)
fk Authored(id) -> Author
fk Authored(pubid) <-> Publication   # every author is necessary
";

    #[test]
    fn parses_running_example_schema() {
        let schema = parse_schema(SCHEMA_TEXT).unwrap();
        assert_eq!(schema.relation_count(), 3);
        assert!(schema.has_back_and_forth());
        assert_eq!(schema.attr("Author", "name").unwrap().rel, 0);
        let fk = &schema.foreign_keys()[1];
        assert_eq!(fk.kind, crate::schema::FkKind::BackAndForth);
    }

    #[test]
    fn composite_key_and_all_types() {
        let schema =
            parse_schema("relation T(a: int key, b: str key, c: float, d: bool, e: any)").unwrap();
        assert_eq!(schema.relation(0).primary_key, vec![0, 1]);
        assert_eq!(schema.relation(0).attributes[2].ty, ValueType::Float);
        assert_eq!(schema.relation(0).attributes[4].ty, ValueType::Any);
    }

    #[test]
    fn schema_errors() {
        for (text, fragment) in [
            ("relation X(a: int)", "no key column"),
            ("relation X(a int key)", "expected `name: type`"),
            ("relation X(a: blob key)", "unknown type"),
            ("wibble X", "expected `relation` or `fk`"),
            ("fk A(x) => B", "expected `->` or `<->`"),
            ("relation X(a: int key extra)", "trailing tokens"),
            ("relation X(a: int bogus)", "unexpected token"),
            ("relation X a: int", "expected `(`"),
        ] {
            let err = parse_schema(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(fragment),
                "`{text}` → `{msg}` (wanted `{fragment}`)"
            );
        }
    }

    #[test]
    fn comments_and_quotes() {
        assert_eq!(strip_comment("abc # def"), "abc ");
        assert_eq!(strip_comment("a '#' b # c"), "a '#' b ");
        assert_eq!(strip_comment("no comment"), "no comment");
    }

    fn sample_db() -> Database {
        let schema = parse_schema(SCHEMA_TEXT).unwrap();
        let mut db = Database::new(schema);
        db.insert(
            "Author",
            vec!["A1".into(), "JG".into(), "C.edu".into(), "edu".into()],
        )
        .unwrap();
        db.insert("Authored", vec!["A1".into(), "P1".into()])
            .unwrap();
        db.insert(
            "Publication",
            vec!["P1".into(), 2001.into(), "SIGMOD".into()],
        )
        .unwrap();
        db.validate().unwrap();
        db
    }

    #[test]
    fn parses_and_evaluates_predicates() {
        let db = sample_db();
        let u = Universal::compute(&db, &db.full_view());
        let t = u.tuple(0);
        for (text, expected) in [
            ("venue = 'SIGMOD'", true),
            ("venue = 'PODS'", false),
            ("year >= 2000 and year <= 2004", true),
            ("year < 2000 or dom = 'edu'", true),
            ("not (dom = 'com')", true),
            ("Publication.year <> 2001", false),
            ("true", true),
            ("false or venue != 'VLDB'", true),
            ("name = \"JG\"", true),
        ] {
            let p = parse_predicate(db.schema(), text).unwrap();
            assert_eq!(p.eval(&db, t), expected, "`{text}`");
        }
    }

    #[test]
    fn empty_predicate_is_true() {
        let db = sample_db();
        assert_eq!(
            parse_predicate(db.schema(), "   ").unwrap(),
            Predicate::True
        );
    }

    #[test]
    fn bare_names_resolve_when_unambiguous() {
        let db = sample_db();
        // `venue` appears once → ok; `id` appears in Author and Authored →
        // ambiguous; `pubid` appears twice → ambiguous.
        assert!(parse_predicate(db.schema(), "venue = 'x'").is_ok());
        let err = parse_predicate(db.schema(), "id = 'A1'").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
        assert!(parse_predicate(db.schema(), "Authored.id = 'A1'").is_ok());
        assert!(parse_predicate(db.schema(), "zzz = 1").is_err());
    }

    #[test]
    fn literal_kinds() {
        let db = sample_db();
        let schema = db.schema();
        assert!(parse_predicate(schema, "year = 2001").is_ok());
        assert!(parse_predicate(schema, "year >= -5").is_ok());
        assert!(parse_predicate(schema, "year < 2001.5").is_ok());
        assert!(parse_predicate(schema, "venue = null").is_ok());
        assert!(parse_predicate(schema, "name = 'O''Neil'").is_ok());
    }

    #[test]
    fn predicate_errors() {
        let db = sample_db();
        let schema = db.schema();
        for text in [
            "venue =",
            "= 'x'",
            "(venue = 'x'",
            "venue = 'x' extra",
            "venue = 'unterminated",
            "venue @ 'x'",
            "venue 'x'",
        ] {
            assert!(
                parse_predicate(schema, text).is_err(),
                "`{text}` should fail"
            );
        }
    }

    #[test]
    fn schema_round_trips_through_text() {
        let original = parse_schema(SCHEMA_TEXT).unwrap();
        let text = schema_to_text(&original);
        let back = parse_schema(&text).unwrap();
        assert_eq!(original, back);
        // Idempotent rendering.
        assert_eq!(text, schema_to_text(&back));
        // All five types and composite keys survive.
        let s =
            parse_schema("relation T(a: int key, b: str key, c: float, d: bool, e: any)").unwrap();
        assert_eq!(parse_schema(&schema_to_text(&s)).unwrap(), s);
    }

    #[test]
    fn predicate_round_trips_through_text() {
        let db = sample_db();
        let schema = db.schema();
        let u = crate::join::Universal::compute(&db, &db.full_view());
        let year = schema.attr("Publication", "year").unwrap();
        let venue = schema.attr("Publication", "venue").unwrap();
        let dom = schema.attr("Author", "dom").unwrap();
        let preds = [
            Predicate::True,
            Predicate::False,
            Predicate::eq(venue, "SIG'MOD"),
            Predicate::between(year, 2000, 2004),
            Predicate::and([]),
            Predicate::or([]),
            Predicate::or([Predicate::eq(dom, "edu"), Predicate::eq(dom, "com")]),
            Predicate::not(Predicate::and([
                Predicate::eq(venue, "VLDB"),
                Predicate::cmp(year, CmpOp::Ne, 1999),
            ])),
            Predicate::cmp(year, CmpOp::Lt, 2001.5),
            Predicate::eq(venue, Value::Null),
        ];
        for p in preds {
            let text = predicate_to_text(schema, &p);
            let back = parse_predicate(schema, &text)
                .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
            for t in u.iter() {
                assert_eq!(
                    p.eval(&db, t),
                    back.eval(&db, t),
                    "semantics changed via `{text}`"
                );
            }
        }
    }

    #[test]
    fn operator_spellings() {
        let db = sample_db();
        let schema = db.schema();
        let a = parse_predicate(schema, "year != 2000").unwrap();
        let b = parse_predicate(schema, "year <> 2000").unwrap();
        assert_eq!(a, b);
    }
}
