//! Error type for the relational substrate.

use std::fmt;

/// Errors raised while building schemas, loading data, or evaluating
/// queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Error {
    /// A relation name was declared twice in a schema.
    DuplicateRelation(String),
    /// An attribute name was declared twice within one relation.
    DuplicateAttribute { relation: String, attribute: String },
    /// A name lookup failed.
    UnknownRelation(String),
    /// An attribute lookup failed.
    UnknownAttribute { relation: String, attribute: String },
    /// A foreign key references column lists of different lengths.
    ForeignKeyArity { from: String, to: String },
    /// A foreign key's target columns are not the primary key of the target.
    ForeignKeyTarget { from: String, to: String },
    /// The foreign-key join graph is not a tree/forest (the universal
    /// relation and the semijoin reducer require an acyclic schema).
    CyclicSchema,
    /// A row has the wrong number of columns.
    RowArity {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A row value does not conform to the declared column type.
    TypeMismatch {
        relation: String,
        attribute: String,
        expected: String,
        got: String,
    },
    /// A primary-key value occurred twice.
    DuplicateKey { relation: String, key: String },
    /// A foreign-key value has no matching target tuple.
    DanglingForeignKey {
        from: String,
        to: String,
        key: String,
    },
    /// An aggregate or expression was applied to a non-numeric value.
    NotNumeric(String),
    /// An expression divided by zero (callers usually guard with the
    /// paper's +epsilon smoothing instead of hitting this).
    DivisionByZero,
    /// A query referenced an aggregate index out of range.
    BadAggregateIndex { index: usize, count: usize },
    /// Too many cube dimensions for the subset-enumeration strategy.
    TooManyCubeDimensions(usize),
    /// A text-format parse error (schema DSL, predicate language).
    /// `line` and `col` are 1-based; `col` is 0 when unknown.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
}

impl Error {
    /// Stable diagnostic code for this error, shared with the
    /// `exq-analyze` crate's `E0xx`/`E1xx` catalogue so every layer
    /// (builder validation, text parsers, data loading, static analysis)
    /// reports the same code for the same fault class.
    pub fn code(&self) -> &'static str {
        match self {
            Error::UnknownRelation(_) => "E001",
            Error::UnknownAttribute { .. } => "E002",
            Error::DuplicateRelation(_) => "E003",
            Error::DuplicateAttribute { .. } => "E004",
            Error::ForeignKeyArity { .. } => "E005",
            Error::ForeignKeyTarget { .. } => "E006",
            Error::CyclicSchema => "E007",
            Error::Parse { .. } => "E010",
            Error::RowArity { .. } => "E101",
            Error::TypeMismatch { .. } => "E102",
            Error::DuplicateKey { .. } => "E103",
            Error::DanglingForeignKey { .. } => "E104",
            Error::NotNumeric(_) => "E105",
            Error::DivisionByZero => "E106",
            Error::BadAggregateIndex { .. } => "E107",
            Error::TooManyCubeDimensions(_) => "E108",
        }
    }

    /// The `(line, col)` position of a parse error (1-based; col 0 when
    /// unknown), or `None` for non-parse errors.
    pub fn position(&self) -> Option<(usize, usize)> {
        match self {
            Error::Parse { line, col, .. } => Some((*line, *col)),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateRelation(r) => write!(f, "duplicate relation `{r}`"),
            Error::DuplicateAttribute { relation, attribute } => {
                write!(f, "duplicate attribute `{attribute}` in relation `{relation}`")
            }
            Error::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            Error::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{relation}.{attribute}`")
            }
            Error::ForeignKeyArity { from, to } => {
                write!(f, "foreign key {from} -> {to}: column lists differ in length")
            }
            Error::ForeignKeyTarget { from, to } => {
                write!(f, "foreign key {from} -> {to}: target columns are not the primary key")
            }
            Error::CyclicSchema => write!(
                f,
                "foreign-key join graph is cyclic; the universal relation requires an acyclic schema"
            ),
            Error::RowArity { relation, expected, got } => {
                write!(f, "row for `{relation}` has {got} columns, schema has {expected}")
            }
            Error::TypeMismatch { relation, attribute, expected, got } => write!(
                f,
                "type mismatch for `{relation}.{attribute}`: expected {expected}, got {got}"
            ),
            Error::DuplicateKey { relation, key } => {
                write!(f, "duplicate primary key in `{relation}`: {key}")
            }
            Error::DanglingForeignKey { from, to, key } => {
                write!(f, "dangling foreign key {from} -> {to}: no target for {key}")
            }
            Error::NotNumeric(what) => write!(f, "non-numeric value in {what}"),
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::BadAggregateIndex { index, count } => {
                write!(f, "aggregate index {index} out of range (query has {count})")
            }
            Error::TooManyCubeDimensions(d) => {
                write!(f, "{d} cube dimensions exceed the subset-enumeration limit")
            }
            Error::Parse { line, col: 0, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            Error::Parse { line, col, message } => {
                write!(f, "parse error (line {line}, col {col}): {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;
