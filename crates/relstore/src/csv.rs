//! Minimal CSV import/export for relations.
//!
//! A downstream user of the explanation engine has data in flat files
//! (the paper's natality dataset ships as fixed-width/CSV from the CDC);
//! this module loads such files into a [`Database`] and dumps relations
//! back out, without external dependencies.
//!
//! Format: RFC-4180-style — comma separated, `"` quoting with `""`
//! escapes, first line is the header. Values are parsed against the
//! declared column type (`Int`/`Float`/`Bool` columns parse numerically).
//! A *bare* empty field is NULL; a *quoted* empty field (`""`) is the
//! empty string. A quoted field may span physical lines: CR, LF, and
//! CRLF inside quotes are preserved verbatim, so `dump_relation` output
//! always loads back (the round trip is property-tested).

use crate::database::Database;
use crate::error::{Error, Result};
use crate::value::{Value, ValueType};
use std::io::{BufRead, Write};

/// Split one CSV record into `(field, was_quoted)` pairs, handling
/// quotes. Quoting is significant: a bare empty field is NULL, a quoted
/// empty field (`""`) is the empty string. Returns `None` for an
/// unterminated quoted field (malformed input).
fn split_record(line: &str) -> Option<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    fields.push((std::mem::take(&mut field), quoted));
                    quoted = false;
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return None;
    }
    fields.push((field, quoted));
    Some(fields)
}

/// Read one logical CSV record, or `None` at end of input.
///
/// A physical line whose quote count is odd ends inside a quoted field,
/// so the newline belongs to the field and the record continues on the
/// next line. Only the record *terminator* (one LF, with an optional
/// preceding CR) is stripped; CR/LF bytes inside quoted fields pass
/// through untouched. An unterminated quote at end of input returns the
/// partial record and lets `split_record` report it as malformed.
fn read_record(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut record = String::new();
    let mut quotes = 0usize;
    loop {
        let start = record.len();
        if reader.read_line(&mut record)? == 0 {
            if record.is_empty() {
                return Ok(None);
            }
            // Final record without a trailing newline; a lone trailing CR
            // outside quotes is still line-ending noise.
            if quotes.is_multiple_of(2) && record.ends_with('\r') {
                record.pop();
            }
            return Ok(Some(record));
        }
        quotes += record[start..].bytes().filter(|&b| b == b'"').count();
        if quotes.is_multiple_of(2) {
            if record.ends_with('\n') {
                record.pop();
                if record.ends_with('\r') {
                    record.pop();
                }
            }
            return Ok(Some(record));
        }
    }
}

/// Quote a field if needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parse a textual field against a declared type. (NULL handling — the
/// bare empty field — happens in the caller, which knows whether the
/// field was quoted; a quoted empty field is the empty *string*.)
pub fn parse_value(text: &str, ty: ValueType) -> Result<Value> {
    if text.is_empty() {
        return Ok(Value::str(""));
    }
    let bad = |expected: &str| Error::TypeMismatch {
        relation: String::new(),
        attribute: String::new(),
        expected: expected.to_string(),
        got: text.to_string(),
    };
    match ty {
        ValueType::Int => text.parse::<i64>().map(Value::Int).map_err(|_| bad("int")),
        ValueType::Float => text
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| bad("float")),
        ValueType::Bool => match text {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(bad("bool")),
        },
        ValueType::Str | ValueType::Any => Ok(Value::str(text)),
    }
}

/// Load CSV rows into the relation named `relation`. The header must
/// name a subset-free permutation of the relation's columns (all columns,
/// any order). Returns the number of rows inserted.
pub fn load_relation(db: &mut Database, relation: &str, mut reader: impl BufRead) -> Result<usize> {
    let rel_idx = db.schema().relation_index(relation)?;
    let schema = db.schema().relation(rel_idx).clone();

    let io_err = |_| Error::TypeMismatch {
        relation: relation.to_string(),
        attribute: "<io>".to_string(),
        expected: "utf-8 text".to_string(),
        got: "read error".to_string(),
    };
    let header_line = match read_record(&mut reader).map_err(io_err)? {
        Some(h) => h,
        None => return Ok(0),
    };
    let header = split_record(&header_line).ok_or_else(|| Error::TypeMismatch {
        relation: relation.to_string(),
        attribute: "<header>".to_string(),
        expected: "well-formed CSV".to_string(),
        got: header_line.clone(),
    })?;
    // Map header position → column index.
    let mut col_of = Vec::with_capacity(header.len());
    for (name, _) in &header {
        let col = schema
            .attr_index(name)
            .ok_or_else(|| Error::UnknownAttribute {
                relation: relation.to_string(),
                attribute: name.clone(),
            })?;
        col_of.push(col);
    }
    if col_of.len() != schema.arity() {
        return Err(Error::RowArity {
            relation: relation.to_string(),
            expected: schema.arity(),
            got: col_of.len(),
        });
    }

    let mut inserted = 0;
    while let Some(line) = read_record(&mut reader).map_err(io_err)? {
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line).ok_or_else(|| Error::TypeMismatch {
            relation: relation.to_string(),
            attribute: "<record>".to_string(),
            expected: "well-formed CSV".to_string(),
            got: line.to_string(),
        })?;
        if fields.len() != col_of.len() {
            return Err(Error::RowArity {
                relation: relation.to_string(),
                expected: col_of.len(),
                got: fields.len(),
            });
        }
        let mut row = vec![Value::Null; schema.arity()];
        for ((field, quoted), &col) in fields.iter().zip(&col_of) {
            row[col] = if field.is_empty() && !quoted {
                Value::Null
            } else {
                parse_value(field, schema.attributes[col].ty)?
            };
        }
        db.insert_at(rel_idx, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Write a relation as CSV (header + all rows).
pub fn dump_relation(db: &Database, relation: &str, mut writer: impl Write) -> Result<usize> {
    let rel_idx = db.schema().relation_index(relation)?;
    let schema = db.schema().relation(rel_idx);
    let io_err = |_| Error::TypeMismatch {
        relation: relation.to_string(),
        attribute: "<io>".to_string(),
        expected: "writable output".to_string(),
        got: "write error".to_string(),
    };
    let header: Vec<String> = schema.attributes.iter().map(|a| quote(&a.name)).collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    let mut written = 0;
    for row in db.relation(rel_idx).rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) if s.is_empty() => "\"\"".to_string(),
                other => quote(&other.to_string()),
            })
            .collect();
        writeln!(writer, "{}", fields.join(",")).map_err(io_err)?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[
                    ("id", T::Int),
                    ("name", T::Str),
                    ("score", T::Float),
                    ("flag", T::Bool),
                ],
                &["id"],
            )
            .build()
            .unwrap();
        Database::new(schema)
    }

    #[test]
    fn round_trip() {
        let mut d = db();
        d.insert("R", vec![1.into(), "plain".into(), 1.5.into(), true.into()])
            .unwrap();
        d.insert(
            "R",
            vec![
                2.into(),
                Value::str("quote\"inside, and comma"),
                Value::Null,
                false.into(),
            ],
        )
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(dump_relation(&d, "R", &mut out).unwrap(), 2);

        let mut d2 = db();
        let n = load_relation(&mut d2, "R", out.as_slice()).unwrap();
        assert_eq!(n, 2);
        for i in 0..2 {
            assert_eq!(d.relation(0).row(i), d2.relation(0).row(i));
        }
    }

    #[test]
    fn header_permutation_accepted() {
        let csv = "name,flag,score,id\nalice,true,2.5,7\n";
        let mut d = db();
        assert_eq!(load_relation(&mut d, "R", csv.as_bytes()).unwrap(), 1);
        let row = d.relation(0).row(0);
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[1], Value::str("alice"));
        assert_eq!(row[2], Value::Float(2.5));
        assert_eq!(row[3], Value::Bool(true));
    }

    #[test]
    fn empty_field_is_null() {
        let csv = "id,name,score,flag\n1,,,\n";
        let mut d = db();
        load_relation(&mut d, "R", csv.as_bytes()).unwrap();
        let row = d.relation(0).row(0);
        assert_eq!(row[1], Value::Null);
        assert_eq!(row[2], Value::Null);
        assert_eq!(row[3], Value::Null);
    }

    #[test]
    fn type_errors_reported() {
        let csv = "id,name,score,flag\nnot_an_int,x,1.0,true\n";
        let mut d = db();
        assert!(matches!(
            load_relation(&mut d, "R", csv.as_bytes()),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn arity_errors_reported() {
        let missing_col = "id,name,score\n1,x,1.0\n";
        let mut d = db();
        assert!(matches!(
            load_relation(&mut d, "R", missing_col.as_bytes()),
            Err(Error::RowArity { .. })
        ));

        let short_row = "id,name,score,flag\n1,x\n";
        let mut d = db();
        assert!(matches!(
            load_relation(&mut d, "R", short_row.as_bytes()),
            Err(Error::RowArity { .. })
        ));
    }

    #[test]
    fn unknown_header_column_rejected() {
        let csv = "id,name,score,zzz\n";
        let mut d = db();
        assert!(matches!(
            load_relation(&mut d, "R", csv.as_bytes()),
            Err(Error::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let fields = split_record(r#"a,"b,c","d""e",f"#).unwrap();
        let texts: Vec<&str> = fields.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "b,c", "d\"e", "f"]);
        assert_eq!(
            fields.iter().map(|(_, q)| *q).collect::<Vec<_>>(),
            vec![false, true, true, false]
        );
        assert_eq!(split_record(r#""unterminated"#), None);
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let csv = "id,name,score,flag\r\n1,x,1.0,true\r\n\r\n2,y,2.0,false\r\n";
        let mut d = db();
        assert_eq!(load_relation(&mut d, "R", csv.as_bytes()).unwrap(), 2);
    }

    #[test]
    fn quoted_fields_span_physical_lines() {
        // LF, CR, and CRLF inside quotes are all field content; the CRLF
        // record terminators around them are not.
        let csv = "id,name,score,flag\r\n1,\"two\nlines\",1.0,true\r\n2,\"cr\rhere\",2.0,false\r\n3,\"crlf\r\nhere\",3.0,true\r\n";
        let mut d = db();
        assert_eq!(load_relation(&mut d, "R", csv.as_bytes()).unwrap(), 3);
        assert_eq!(d.relation(0).row(0)[1], Value::str("two\nlines"));
        assert_eq!(d.relation(0).row(1)[1], Value::str("cr\rhere"));
        assert_eq!(d.relation(0).row(2)[1], Value::str("crlf\r\nhere"));
    }

    #[test]
    fn dump_with_newlines_loads_back() {
        let mut d = db();
        d.insert(
            "R",
            vec![
                1.into(),
                Value::str("a\r\nb,\"c\"\nd\re"),
                Value::Null,
                true.into(),
            ],
        )
        .unwrap();
        let mut out = Vec::new();
        dump_relation(&d, "R", &mut out).unwrap();
        let mut d2 = db();
        assert_eq!(load_relation(&mut d2, "R", out.as_slice()).unwrap(), 1);
        assert_eq!(d.relation(0).row(0), d2.relation(0).row(0));
    }

    #[test]
    fn unterminated_quote_spanning_lines_is_malformed() {
        let csv = "id,name,score,flag\n1,\"never closed\n2,x,1.0,true\n";
        let mut d = db();
        assert!(matches!(
            load_relation(&mut d, "R", csv.as_bytes()),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn final_record_without_newline() {
        let csv = "id,name,score,flag\n1,\"multi\nline\",1.5,true";
        let mut d = db();
        assert_eq!(load_relation(&mut d, "R", csv.as_bytes()).unwrap(), 1);
        assert_eq!(d.relation(0).row(0)[1], Value::str("multi\nline"));
    }

    #[test]
    fn empty_input_loads_nothing() {
        let mut d = db();
        assert_eq!(load_relation(&mut d, "R", "".as_bytes()).unwrap(), 0);
    }
}
