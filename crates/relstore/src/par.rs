//! A small deterministic scoped-thread executor.
//!
//! Every parallel hot path in the engine — the universal-relation join
//! probe, both cube strategies, the semijoin sweeps, and Algorithm 1's
//! per-cell degree pass — runs through this module, so the determinism
//! contract lives in exactly one place:
//!
//! * Work is split into **fixed-size blocks whose boundaries depend only
//!   on the input length and the requested block size — never on the
//!   thread count**. Threads race to *claim* blocks from a shared atomic
//!   counter, but a block's computation sees exactly the same items in
//!   exactly the same order no matter which worker runs it.
//! * Results are collected as `(block index, result)` pairs and stitched
//!   back **in block order**. A caller that folds the per-block results
//!   left-to-right therefore performs float accumulation in a grouping
//!   that is a function of the input alone, making parallel output
//!   bit-identical across any thread count (including 1).
//! * For fallible work, the error surfaced is the one from the
//!   **earliest block** that failed — not whichever worker's failure was
//!   observed first — so error selection is deterministic too.
//!
//! The executor uses `std::thread::scope` only; no extra dependencies, no
//! unsafe. When a single worker (or a single block) suffices, the work
//! runs inline on the calling thread with the same block structure.

use exq_obs::MetricsSink;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel-execution configuration, plumbed from the CLI `--threads`
/// flag through `Explainer`/`ReportConfig` down to every hot path.
///
/// Also carries the [`MetricsSink`] the hot paths record into, so one
/// handle reaches every operator without widening any signature. The
/// sink defaults to [`MetricsSink::disabled`]; cloning an `ExecConfig`
/// shares the sink.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    threads: usize,
    metrics: MetricsSink,
}

impl ExecConfig {
    /// Run everything inline on the calling thread.
    pub const fn sequential() -> ExecConfig {
        ExecConfig {
            threads: 1,
            metrics: MetricsSink::disabled(),
        }
    }

    /// Use exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            metrics: MetricsSink::disabled(),
        }
    }

    /// Use one worker per available hardware thread.
    pub fn auto() -> ExecConfig {
        ExecConfig::with_threads(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Attach a metrics sink; every operator run under this config
    /// records counters and spans into it.
    pub fn with_metrics(mut self, metrics: MetricsSink) -> ExecConfig {
        self.metrics = metrics;
        self
    }

    /// The metrics sink (disabled unless [`ExecConfig::with_metrics`]
    /// attached one).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The configured worker count (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this configuration ever spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for ExecConfig {
    /// Defaults to [`ExecConfig::auto`].
    fn default() -> ExecConfig {
        ExecConfig::auto()
    }
}

/// Number of blocks `len` items split into at `block_size`.
pub fn block_count(len: usize, block_size: usize) -> usize {
    len.div_ceil(block_size.max(1))
}

/// Map `f` over the index blocks of `0..len` and return the per-block
/// results in block order. `f` receives `(block_index, index_range)`.
///
/// The block structure depends only on `len` and `block_size`, so the
/// returned vector is identical for every thread count.
pub fn map_index_blocks<R, F>(exec: &ExecConfig, len: usize, block_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let infallible = try_map_index_blocks(exec, len, block_size, |i, range| {
        Ok::<R, std::convert::Infallible>(f(i, range))
    });
    match infallible {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible variant of [`map_index_blocks`]. On failure, returns the
/// error of the earliest failing block regardless of thread scheduling;
/// blocks after the earliest known failure may be skipped.
pub fn try_map_index_blocks<R, E, F>(
    exec: &ExecConfig,
    len: usize,
    block_size: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize, Range<usize>) -> Result<R, E> + Sync,
{
    let block_size = block_size.max(1);
    let blocks = block_count(len, block_size);
    let range_of = |i: usize| i * block_size..((i + 1) * block_size).min(len);

    let workers = exec.threads().min(blocks);
    if workers <= 1 {
        let mut out = Vec::with_capacity(blocks);
        for i in 0..blocks {
            out.push(f(i, range_of(i))?);
        }
        return Ok(out);
    }

    // Workers pull block indices from a shared counter; each keeps its
    // results locally and appends them to the shared vector once, at the
    // end, to keep the lock cold.
    let next = AtomicUsize::new(0);
    let first_err = AtomicUsize::new(usize::MAX);
    let collected: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(blocks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    // Blocks are claimed in increasing order, so once `i`
                    // passes the earliest known failure this worker is done.
                    if i >= blocks || i > first_err.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = f(i, range_of(i));
                    if r.is_err() {
                        first_err.fetch_min(i, Ordering::Relaxed);
                    }
                    local.push((i, r));
                }
                collected
                    .lock()
                    .expect("no poisoned worker")
                    .append(&mut local);
            });
        }
    });

    let mut collected = collected.into_inner().expect("no poisoned worker");
    collected.sort_unstable_by_key(|&(i, _)| i);
    let mut out = Vec::with_capacity(collected.len());
    for (_, r) in collected {
        // Every block before the earliest failure was executed, so this
        // surfaces the error of the first failing block in block order.
        out.push(r?);
    }
    Ok(out)
}

/// Map `f` over fixed-size chunks of a slice; results in chunk order.
/// `f` receives `(block_index, chunk)`.
pub fn map_blocks<'items, T, R, F>(
    exec: &ExecConfig,
    items: &'items [T],
    block_size: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'items [T]) -> R + Sync,
{
    map_index_blocks(exec, items.len(), block_size, |i, range| {
        f(i, &items[range])
    })
}

/// Fallible variant of [`map_blocks`] with earliest-block error selection.
pub fn try_map_blocks<'items, T, R, E, F>(
    exec: &ExecConfig,
    items: &'items [T],
    block_size: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &'items [T]) -> Result<R, E> + Sync,
{
    try_map_index_blocks(exec, items.len(), block_size, |i, range| {
        f(i, &items[range])
    })
}

/// A block size that spreads `len` items evenly over the configured
/// workers (at least 1). Use only for **order-insensitive** work (exact
/// integer results, or results that are re-sorted afterwards): the block
/// structure — and hence any float accumulation grouping — then varies
/// with the thread count.
pub fn even_block_size(exec: &ExecConfig, len: usize) -> usize {
    len.div_ceil(exec.threads()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_results_identical() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = map_blocks(&ExecConfig::sequential(), &items, 64, |i, chunk| {
            (i, chunk.iter().sum::<u64>())
        });
        for threads in [2, 3, 7, 16] {
            let par = map_blocks(
                &ExecConfig::with_threads(threads),
                &items,
                64,
                |i, chunk| (i, chunk.iter().sum::<u64>()),
            );
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn block_structure_is_thread_count_independent() {
        for threads in [1, 2, 5, 9] {
            let exec = ExecConfig::with_threads(threads);
            let ranges = map_index_blocks(&exec, 10, 4, |i, r| (i, r));
            assert_eq!(ranges, vec![(0, 0..4), (1, 4..8), (2, 8..10)]);
        }
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        for threads in [1, 4] {
            let exec = ExecConfig::with_threads(threads);
            let out: Vec<usize> = map_index_blocks(&exec, 0, 16, |i, _| i);
            assert!(out.is_empty());
            let r: Result<Vec<usize>, ()> = try_map_index_blocks(&exec, 0, 16, |i, _| Ok(i));
            assert_eq!(r, Ok(vec![]));
        }
    }

    #[test]
    fn more_threads_than_blocks() {
        let exec = ExecConfig::with_threads(32);
        let out = map_index_blocks(&exec, 3, 1, |i, r| (i, r.start));
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 2)]);
    }

    /// The error surfaced must be the earliest failing *block*, not the
    /// first failure a worker happens to finish. Later failing blocks are
    /// slowed down so a completion-order implementation would pick them.
    #[test]
    fn error_selection_is_earliest_block() {
        for threads in [2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let r: Result<Vec<()>, usize> = try_map_index_blocks(&exec, 16, 1, |i, _| {
                if i == 3 {
                    // The earliest failure is also the slowest to fail.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err(i)
                } else if i > 3 {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(r, Err(3), "threads = {threads}");
        }
    }

    #[test]
    fn single_error_in_last_block_is_reported() {
        let exec = ExecConfig::with_threads(4);
        let r: Result<Vec<usize>, &str> =
            try_map_index_blocks(
                &exec,
                10,
                3,
                |i, _| if i == 3 { Err("boom") } else { Ok(i) },
            );
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn exec_config_clamps_and_defaults() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::sequential().threads(), 1);
        assert!(!ExecConfig::sequential().is_parallel());
        assert!(ExecConfig::default().threads() >= 1);
        assert_eq!(block_count(0, 8), 0);
        assert_eq!(block_count(9, 8), 2);
        assert_eq!(even_block_size(&ExecConfig::with_threads(4), 10), 3);
        assert_eq!(even_block_size(&ExecConfig::with_threads(4), 0), 1);
    }

    /// Left-to-right folding of per-block results reproduces the same
    /// float grouping at any thread count.
    #[test]
    fn float_fold_is_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let fold = |threads: usize| -> f64 {
            let partials = map_blocks(&ExecConfig::with_threads(threads), &items, 256, |_, c| {
                c.iter().sum::<f64>()
            });
            partials.into_iter().sum()
        };
        let reference = fold(1);
        for threads in [2, 3, 7] {
            assert_eq!(reference.to_bits(), fold(threads).to_bits());
        }
    }
}
