//! A database instance: a schema plus one [`Relation`] per declared
//! relation, and *views* (live-row subsets) over it.

use crate::column::ColumnStore;
use crate::error::{Error, Result};
use crate::schema::{AttrRef, DatabaseSchema};
use crate::table::Relation;
use crate::tupleset::TupleSet;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A database instance.
///
/// The schema is reference-counted so that derived structures (views,
/// universal relations, interventions) can hold it cheaply.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Arc<DatabaseSchema>,
    relations: Vec<Relation>,
    /// Lazily built columnar projections (see [`ColumnStore`]); shared by
    /// clones until either side mutates, and rebuilt on demand after any
    /// insert. Cloning the cell clones only the `Arc`.
    columns: OnceLock<Arc<ColumnStore>>,
}

impl Database {
    /// An empty instance of `schema`.
    pub fn new(schema: DatabaseSchema) -> Database {
        let relations = (0..schema.relation_count())
            .map(|_| Relation::new())
            .collect();
        Database {
            schema: Arc::new(schema),
            relations,
            columns: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<DatabaseSchema> {
        Arc::clone(&self.schema)
    }

    /// The stored relation at index `rel`.
    pub fn relation(&self, rel: usize) -> &Relation {
        &self.relations[rel]
    }

    /// Number of rows in relation `rel`.
    pub fn relation_len(&self, rel: usize) -> usize {
        self.relations[rel].len()
    }

    /// Total number of tuples, the `n` of Proposition 3.4.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Insert a row into the relation named `relation`. Checks arity and
    /// types; key/foreign-key constraints are checked by [`Database::validate`]
    /// after bulk loading (the cheap way to load data in dependency order).
    pub fn insert(&mut self, relation: &str, row: Vec<Value>) -> Result<usize> {
        let rel = self.schema.relation_index(relation)?;
        self.insert_at(rel, row)
    }

    /// Insert a row into relation index `rel`.
    pub fn insert_at(&mut self, rel: usize, row: Vec<Value>) -> Result<usize> {
        // Row storage is about to change, so any built columns are stale.
        self.columns.take();
        let schema = self.schema.relation(rel).clone();
        self.relations[rel].push_checked(&schema, row)
    }

    /// The columnar projections of this instance, built on first use by one
    /// deterministic sequential scan (so dictionary codes depend only on
    /// the stored rows — see [`ColumnStore`]). Orchestrators that want the
    /// build cost attributed to preparation rather than the first query
    /// should call this eagerly (`PreparedDb` does).
    pub fn columns(&self) -> &Arc<ColumnStore> {
        self.columns
            .get_or_init(|| Arc::new(ColumnStore::build(self)))
    }

    /// The value of attribute `attr` in row `row` of its relation.
    #[inline]
    pub fn value(&self, attr: AttrRef, row: usize) -> &Value {
        &self.relations[attr.rel].row(row)[attr.col]
    }

    /// Check primary-key uniqueness and foreign-key referential integrity
    /// over the whole instance.
    pub fn validate(&self) -> Result<()> {
        // Primary keys unique.
        for (rel_idx, rel) in self.relations.iter().enumerate() {
            let schema = self.schema.relation(rel_idx);
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rel.len());
            for i in 0..rel.len() {
                let key = rel.project(i, &schema.primary_key);
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(Error::DuplicateKey {
                        relation: schema.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        // Foreign keys resolve.
        for fk in self.schema.foreign_keys() {
            let targets: std::collections::HashSet<Vec<Value>> = (0..self.relations[fk.to_rel]
                .len())
                .map(|i| self.relations[fk.to_rel].project(i, &fk.to_cols))
                .collect();
            let from = &self.relations[fk.from_rel];
            for i in 0..from.len() {
                let key = from.project(i, &fk.from_cols);
                if !targets.contains(&key) {
                    return Err(Error::DanglingForeignKey {
                        from: self.schema.relation(fk.from_rel).name.clone(),
                        to: self.schema.relation(fk.to_rel).name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        Ok(())
    }

    /// The view containing every row.
    pub fn full_view(&self) -> View {
        View {
            live: self
                .relations
                .iter()
                .map(|r| TupleSet::full(r.len()))
                .collect(),
        }
    }

    /// The view with the rows of `delta` removed (`D − Δ`).
    pub fn view_minus(&self, delta: &[TupleSet]) -> View {
        let mut v = self.full_view();
        assert_eq!(v.live.len(), delta.len(), "delta arity mismatch");
        for (live, d) in v.live.iter_mut().zip(delta) {
            live.difference_with(d);
        }
        v
    }

    /// One empty [`TupleSet`] per relation, sized to the instance — the
    /// `Δ⁰ = (∅,…,∅)` the fixpoint iteration starts from.
    pub fn empty_delta(&self) -> Vec<TupleSet> {
        self.relations
            .iter()
            .map(|r| TupleSet::empty(r.len()))
            .collect()
    }

    /// Materialize a view as a standalone database: same schema, only the
    /// live rows (re-indexed densely). Used to persist a residual database
    /// `D − Δ^φ` or a reduced instance as a first-class input.
    pub fn materialize(&self, view: &View) -> Database {
        let mut out = Database::new((*self.schema).clone());
        for (rel, live) in view.live.iter().enumerate() {
            for row in live.iter() {
                out.relations[rel]
                    .push_checked(
                        self.schema.relation(rel),
                        self.relations[rel].row(row).to_vec(),
                    )
                    .expect("rows re-inserted under the same schema");
            }
        }
        out
    }
}

fn format_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(Value::to_string).collect();
    format!("({})", parts.join(","))
}

/// A subset of the rows of a database — the residual instance `D − Δ`, a
/// selection result, or a semijoin-reduced instance. One live-set per
/// relation, indexed like the schema's relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Live rows per relation.
    pub live: Vec<TupleSet>,
}

impl View {
    /// Live rows of relation `rel`.
    pub fn live(&self, rel: usize) -> &TupleSet {
        &self.live[rel]
    }

    /// Total number of live rows.
    pub fn total_live(&self) -> usize {
        self.live.iter().map(TupleSet::count).sum()
    }

    /// Whether any relation has no live rows.
    pub fn any_relation_empty(&self) -> bool {
        self.live.iter().any(TupleSet::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn two_table_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("A", &[("id", T::Int), ("x", T::Str)], &["id"])
            .relation("B", &[("id", T::Int), ("a", T::Int)], &["id"])
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into(), "one".into()]).unwrap();
        db.insert("A", vec![2.into(), "two".into()]).unwrap();
        db.insert("B", vec![10.into(), 1.into()]).unwrap();
        db
    }

    #[test]
    fn insert_and_validate_ok() {
        let db = two_table_db();
        assert_eq!(db.total_tuples(), 3);
        db.validate().unwrap();
    }

    #[test]
    fn validate_catches_duplicate_pk() {
        let mut db = two_table_db();
        db.insert("A", vec![1.into(), "again".into()]).unwrap();
        assert!(matches!(db.validate(), Err(Error::DuplicateKey { .. })));
    }

    #[test]
    fn validate_catches_dangling_fk() {
        let mut db = two_table_db();
        db.insert("B", vec![11.into(), 99.into()]).unwrap();
        assert!(matches!(
            db.validate(),
            Err(Error::DanglingForeignKey { .. })
        ));
    }

    #[test]
    fn value_accessor() {
        let db = two_table_db();
        let x = db.schema().attr("A", "x").unwrap();
        assert_eq!(db.value(x, 1), &Value::str("two"));
    }

    #[test]
    fn views_and_deltas() {
        let db = two_table_db();
        let full = db.full_view();
        assert_eq!(full.total_live(), 3);
        assert!(!full.any_relation_empty());

        let mut delta = db.empty_delta();
        delta[0].insert(0);
        let residual = db.view_minus(&delta);
        assert_eq!(residual.total_live(), 2);
        assert!(!residual.live(0).contains(0));
        assert!(residual.live(0).contains(1));
        assert!(residual.live(1).contains(0));
    }

    #[test]
    fn materialize_keeps_only_live_rows() {
        let db = two_table_db();
        let mut delta = db.empty_delta();
        delta[0].insert(1); // drop A(2)
        let small = db.materialize(&db.view_minus(&delta));
        assert_eq!(small.relation_len(0), 1);
        assert_eq!(small.relation_len(1), 1);
        assert_eq!(small.relation(0).row(0)[0], Value::Int(1));
        small.validate().unwrap();
        // Materializing the full view clones the instance.
        let full = db.materialize(&db.full_view());
        assert_eq!(full.total_tuples(), db.total_tuples());
    }

    #[test]
    fn unknown_relation_insert_fails() {
        let mut db = two_table_db();
        assert!(matches!(
            db.insert("Zzz", vec![]),
            Err(Error::UnknownRelation(_))
        ));
    }
}
