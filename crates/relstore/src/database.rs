//! A database instance: a schema plus one [`Relation`] per declared
//! relation, and *views* (live-row subsets) over it.

use crate::column::ColumnStore;
use crate::error::{Error, Result};
use crate::schema::{AttrRef, DatabaseSchema};
use crate::table::Relation;
use crate::tupleset::TupleSet;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// A batch of rows to append, pairing relation names with their new
/// rows; a relation may appear more than once. The unit of atomicity
/// for [`Database::append_batch`] and everything layered on top of it
/// (prepared-database maintenance, the server's ingestion endpoint).
pub type AppendBatch = Vec<(String, Vec<Vec<Value>>)>;

/// A database instance.
///
/// The schema is reference-counted so that derived structures (views,
/// universal relations, interventions) can hold it cheaply.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Arc<DatabaseSchema>,
    /// Row storage is structurally shared between clones: cloning the
    /// instance bumps one reference count per relation, and a mutation
    /// deep-copies only the relations it actually touches
    /// ([`Arc::make_mut`]). This is what makes epoch snapshots cheap for
    /// the live-append path — the old epoch keeps the old rows, the new
    /// epoch pays for the grown relations only.
    relations: Vec<Arc<Relation>>,
    /// Lazily built columnar projections (see [`ColumnStore`]); shared by
    /// clones until either side mutates, and rebuilt on demand after any
    /// insert. Cloning the cell clones only the `Arc`.
    columns: OnceLock<Arc<ColumnStore>>,
}

impl Database {
    /// An empty instance of `schema`.
    pub fn new(schema: DatabaseSchema) -> Database {
        let relations = (0..schema.relation_count())
            .map(|_| Arc::new(Relation::new()))
            .collect();
        Database {
            schema: Arc::new(schema),
            relations,
            columns: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<DatabaseSchema> {
        Arc::clone(&self.schema)
    }

    /// The stored relation at index `rel`.
    pub fn relation(&self, rel: usize) -> &Relation {
        self.relations[rel].as_ref()
    }

    /// Number of rows in relation `rel`.
    pub fn relation_len(&self, rel: usize) -> usize {
        self.relations[rel].len()
    }

    /// Total number of tuples, the `n` of Proposition 3.4.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Insert a row into the relation named `relation`. Checks arity and
    /// types; key/foreign-key constraints are checked by [`Database::validate`]
    /// after bulk loading (the cheap way to load data in dependency order).
    pub fn insert(&mut self, relation: &str, row: Vec<Value>) -> Result<usize> {
        let rel = self.schema.relation_index(relation)?;
        self.insert_at(rel, row)
    }

    /// Insert a row into relation index `rel`.
    pub fn insert_at(&mut self, rel: usize, row: Vec<Value>) -> Result<usize> {
        // Row storage is about to change, so any built columns are stale.
        self.columns.take();
        let schema = self.schema.relation(rel).clone();
        Arc::make_mut(&mut self.relations[rel]).push_checked(&schema, row)
    }

    /// Append a batch of rows atomically: either every row lands and
    /// constraints still hold, or the instance is byte-identical to its
    /// pre-call state. `batch` pairs relation names with their new rows;
    /// a relation may appear more than once.
    ///
    /// Validation is incremental — appends can only introduce violations
    /// *at* the new rows, so primary keys are re-checked per grown
    /// relation and foreign keys only for the new rows of grown source
    /// relations (against the post-append targets, so a batch may insert
    /// a referencing row and its referent together). Already-built
    /// columns are extended in place via
    /// [`ColumnStore::extend_for_append`] instead of being dropped, so
    /// existing dictionary codes and column prefixes never change.
    ///
    /// Returns the number of rows appended.
    pub fn append_batch(&mut self, batch: AppendBatch) -> Result<usize> {
        // Resolve names up front so an unknown relation mutates nothing.
        let mut resolved: Vec<(usize, Vec<Vec<Value>>)> = Vec::with_capacity(batch.len());
        for (name, rows) in batch {
            resolved.push((self.schema.relation_index(&name)?, rows));
        }
        let old_lens: Vec<usize> = self.relations.iter().map(|r| r.len()).collect();
        let old_columns = self.columns.take();
        match self.apply_append(resolved, &old_lens, old_columns.as_deref()) {
            Ok(appended) => {
                if let Some(old) = old_columns {
                    let extended = ColumnStore::extend_for_append(&old, self, &old_lens);
                    let _ = self.columns.set(Arc::new(extended));
                }
                Ok(appended)
            }
            Err(e) => {
                for (rel, &len) in self.relations.iter_mut().zip(&old_lens) {
                    // Untouched relations may still be shared with other
                    // epochs — only unshare the ones that actually grew.
                    if rel.len() != len {
                        Arc::make_mut(rel).truncate(len);
                    }
                }
                // The pre-batch columns still describe the rolled-back rows.
                if let Some(old) = old_columns {
                    let _ = self.columns.set(old);
                }
                Err(e)
            }
        }
    }

    /// The fallible middle of [`Database::append_batch`]: push rows, then
    /// re-check the constraints an append can break. The caller rolls back
    /// on error.
    fn apply_append(
        &mut self,
        batch: Vec<(usize, Vec<Vec<Value>>)>,
        old_lens: &[usize],
        old_cols: Option<&ColumnStore>,
    ) -> Result<usize> {
        let mut appended = 0usize;
        for (rel, rows) in batch {
            let schema = self.schema.relation(rel).clone();
            let relation = Arc::make_mut(&mut self.relations[rel]);
            for row in rows {
                relation.push_checked(&schema, row)?;
                appended += 1;
            }
        }
        // Primary keys: a new row can collide with another new row or
        // with an old one. Only the *new* keys are hashed (the delta is
        // small); the old prefix is swept once probing that set. When
        // every key column is dictionary-coded in the pre-append column
        // store, the probe compares u32 code tuples — and a new key
        // holding a value no old row ever stored cannot collide, so it
        // drops out of the sweep entirely. Otherwise the sweep falls
        // back to borrowed value refs; either way the O(old) side
        // allocates nothing per row.
        for (rel_idx, &old_len) in old_lens.iter().enumerate() {
            let rel = self.relations[rel_idx].as_ref();
            if rel.len() == old_len {
                continue;
            }
            let schema = self.schema.relation(rel_idx);
            let pk = &schema.primary_key;
            let mut new_keys: HashSet<Vec<&Value>> = HashSet::with_capacity(rel.len() - old_len);
            for i in old_len..rel.len() {
                let row = rel.row(i);
                if !new_keys.insert(pk.iter().map(|&c| &row[c]).collect()) {
                    return Err(Error::DuplicateKey {
                        relation: schema.name.clone(),
                        key: format_key(&rel.project(i, pk)),
                    });
                }
            }
            let dict_cols: Option<Vec<_>> = old_cols.and_then(|store| {
                pk.iter()
                    .map(|&col| store.dict_column(AttrRef { rel: rel_idx, col }))
                    .collect()
            });
            match dict_cols {
                Some(cols) if cols.iter().all(|&(codes, _)| codes.len() == old_len) => {
                    let mut coded: HashSet<Vec<u32>> = HashSet::new();
                    'key: for i in old_len..rel.len() {
                        let row = rel.row(i);
                        let mut key = Vec::with_capacity(pk.len());
                        for (&c, &(_, dict)) in pk.iter().zip(&cols) {
                            match dict.code(&row[c]) {
                                Some(code) => key.push(code),
                                None => continue 'key,
                            }
                        }
                        coded.insert(key);
                    }
                    if !coded.is_empty() {
                        let mut probe: Vec<u32> = Vec::with_capacity(pk.len());
                        for i in 0..old_len {
                            probe.clear();
                            probe.extend(cols.iter().map(|&(codes, _)| codes[i]));
                            if coded.contains(&probe) {
                                return Err(Error::DuplicateKey {
                                    relation: schema.name.clone(),
                                    key: format_key(&rel.project(i, pk)),
                                });
                            }
                        }
                    }
                }
                _ => {
                    let mut probe: Vec<&Value> = Vec::with_capacity(pk.len());
                    for i in 0..old_len {
                        let row = rel.row(i);
                        probe.clear();
                        probe.extend(pk.iter().map(|&c| &row[c]));
                        if new_keys.contains(&probe) {
                            return Err(Error::DuplicateKey {
                                relation: schema.name.clone(),
                                key: format_key(&rel.project(i, pk)),
                            });
                        }
                    }
                }
            }
        }
        // Foreign keys: only the new rows of grown source relations can
        // dangle (appending targets never invalidates existing edges).
        // Single-column edges whose target column is dictionary-coded
        // check each new row with one dictionary lookup (a value has a
        // code iff some old target row stores it), plus a small set of
        // the target's own new keys for intra-batch referents. Other
        // edges collect the distinct keys the new rows need and sweep
        // the post-append target crossing them off, stopping as soon as
        // every needed key has resolved.
        for fk in self.schema.foreign_keys() {
            let from = self.relations[fk.from_rel].as_ref();
            let old_len = old_lens[fk.from_rel];
            if from.len() == old_len {
                continue;
            }
            let to = self.relations[fk.to_rel].as_ref();
            let to_old_len = old_lens[fk.to_rel];
            let target_dict = old_cols
                .filter(|_| fk.from_cols.len() == 1)
                .and_then(|store| {
                    store.dict_column(AttrRef {
                        rel: fk.to_rel,
                        col: fk.to_cols[0],
                    })
                })
                .filter(|&(codes, _)| codes.len() == to_old_len);
            if let Some((_, dict)) = target_dict {
                let new_targets: HashSet<&Value> = (to_old_len..to.len())
                    .map(|i| &to.row(i)[fk.to_cols[0]])
                    .collect();
                let c = fk.from_cols[0];
                for i in old_len..from.len() {
                    let v = &from.row(i)[c];
                    if dict.code(v).is_none() && !new_targets.contains(v) {
                        return Err(Error::DanglingForeignKey {
                            from: self.schema.relation(fk.from_rel).name.clone(),
                            to: self.schema.relation(fk.to_rel).name.clone(),
                            key: format_key(&from.project(i, &fk.from_cols)),
                        });
                    }
                }
                continue;
            }
            let mut missing: HashSet<Vec<&Value>> = HashSet::new();
            for i in old_len..from.len() {
                let row = from.row(i);
                missing.insert(fk.from_cols.iter().map(|&c| &row[c]).collect());
            }
            let mut probe: Vec<&Value> = Vec::with_capacity(fk.to_cols.len());
            for i in 0..to.len() {
                if missing.is_empty() {
                    break;
                }
                let row = to.row(i);
                probe.clear();
                probe.extend(fk.to_cols.iter().map(|&c| &row[c]));
                missing.remove(&probe);
            }
            if !missing.is_empty() {
                // Report the first dangling row in insertion order, not
                // hash order, so the error is deterministic.
                for i in old_len..from.len() {
                    let row = from.row(i);
                    probe.clear();
                    probe.extend(fk.from_cols.iter().map(|&c| &row[c]));
                    if missing.contains(&probe) {
                        return Err(Error::DanglingForeignKey {
                            from: self.schema.relation(fk.from_rel).name.clone(),
                            to: self.schema.relation(fk.to_rel).name.clone(),
                            key: format_key(&from.project(i, &fk.from_cols)),
                        });
                    }
                }
            }
        }
        Ok(appended)
    }

    /// The columnar projections of this instance, built on first use by one
    /// deterministic sequential scan (so dictionary codes depend only on
    /// the stored rows — see [`ColumnStore`]). Orchestrators that want the
    /// build cost attributed to preparation rather than the first query
    /// should call this eagerly (`PreparedDb` does).
    pub fn columns(&self) -> &Arc<ColumnStore> {
        self.columns
            .get_or_init(|| Arc::new(ColumnStore::build(self)))
    }

    /// The value of attribute `attr` in row `row` of its relation.
    #[inline]
    pub fn value(&self, attr: AttrRef, row: usize) -> &Value {
        &self.relations[attr.rel].row(row)[attr.col]
    }

    /// Check primary-key uniqueness and foreign-key referential integrity
    /// over the whole instance.
    pub fn validate(&self) -> Result<()> {
        // Primary keys unique.
        for (rel_idx, rel) in self.relations.iter().enumerate() {
            let schema = self.schema.relation(rel_idx);
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rel.len());
            for i in 0..rel.len() {
                let key = rel.project(i, &schema.primary_key);
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(Error::DuplicateKey {
                        relation: schema.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        // Foreign keys resolve.
        for fk in self.schema.foreign_keys() {
            let targets: std::collections::HashSet<Vec<Value>> = (0..self.relations[fk.to_rel]
                .len())
                .map(|i| self.relations[fk.to_rel].project(i, &fk.to_cols))
                .collect();
            let from = &self.relations[fk.from_rel];
            for i in 0..from.len() {
                let key = from.project(i, &fk.from_cols);
                if !targets.contains(&key) {
                    return Err(Error::DanglingForeignKey {
                        from: self.schema.relation(fk.from_rel).name.clone(),
                        to: self.schema.relation(fk.to_rel).name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        Ok(())
    }

    /// The view containing every row.
    pub fn full_view(&self) -> View {
        View {
            live: self
                .relations
                .iter()
                .map(|r| TupleSet::full(r.len()))
                .collect(),
        }
    }

    /// The view with the rows of `delta` removed (`D − Δ`).
    pub fn view_minus(&self, delta: &[TupleSet]) -> View {
        let mut v = self.full_view();
        assert_eq!(v.live.len(), delta.len(), "delta arity mismatch");
        for (live, d) in v.live.iter_mut().zip(delta) {
            live.difference_with(d);
        }
        v
    }

    /// One empty [`TupleSet`] per relation, sized to the instance — the
    /// `Δ⁰ = (∅,…,∅)` the fixpoint iteration starts from.
    pub fn empty_delta(&self) -> Vec<TupleSet> {
        self.relations
            .iter()
            .map(|r| TupleSet::empty(r.len()))
            .collect()
    }

    /// Materialize a view as a standalone database: same schema, only the
    /// live rows (re-indexed densely). Used to persist a residual database
    /// `D − Δ^φ` or a reduced instance as a first-class input.
    pub fn materialize(&self, view: &View) -> Database {
        let mut out = Database::new((*self.schema).clone());
        for (rel, live) in view.live.iter().enumerate() {
            let target = Arc::make_mut(&mut out.relations[rel]);
            for row in live.iter() {
                target
                    .push_checked(
                        self.schema.relation(rel),
                        self.relations[rel].row(row).to_vec(),
                    )
                    .expect("rows re-inserted under the same schema");
            }
        }
        out
    }
}

fn format_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(Value::to_string).collect();
    format!("({})", parts.join(","))
}

/// A subset of the rows of a database — the residual instance `D − Δ`, a
/// selection result, or a semijoin-reduced instance. One live-set per
/// relation, indexed like the schema's relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Live rows per relation.
    pub live: Vec<TupleSet>,
}

impl View {
    /// Live rows of relation `rel`.
    pub fn live(&self, rel: usize) -> &TupleSet {
        &self.live[rel]
    }

    /// Total number of live rows.
    pub fn total_live(&self) -> usize {
        self.live.iter().map(TupleSet::count).sum()
    }

    /// Whether any relation has no live rows.
    pub fn any_relation_empty(&self) -> bool {
        self.live.iter().any(TupleSet::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn two_table_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("A", &[("id", T::Int), ("x", T::Str)], &["id"])
            .relation("B", &[("id", T::Int), ("a", T::Int)], &["id"])
            .standard_fk("B", &["a"], "A")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into(), "one".into()]).unwrap();
        db.insert("A", vec![2.into(), "two".into()]).unwrap();
        db.insert("B", vec![10.into(), 1.into()]).unwrap();
        db
    }

    #[test]
    fn insert_and_validate_ok() {
        let db = two_table_db();
        assert_eq!(db.total_tuples(), 3);
        db.validate().unwrap();
    }

    #[test]
    fn validate_catches_duplicate_pk() {
        let mut db = two_table_db();
        db.insert("A", vec![1.into(), "again".into()]).unwrap();
        assert!(matches!(db.validate(), Err(Error::DuplicateKey { .. })));
    }

    #[test]
    fn validate_catches_dangling_fk() {
        let mut db = two_table_db();
        db.insert("B", vec![11.into(), 99.into()]).unwrap();
        assert!(matches!(
            db.validate(),
            Err(Error::DanglingForeignKey { .. })
        ));
    }

    #[test]
    fn value_accessor() {
        let db = two_table_db();
        let x = db.schema().attr("A", "x").unwrap();
        assert_eq!(db.value(x, 1), &Value::str("two"));
    }

    #[test]
    fn views_and_deltas() {
        let db = two_table_db();
        let full = db.full_view();
        assert_eq!(full.total_live(), 3);
        assert!(!full.any_relation_empty());

        let mut delta = db.empty_delta();
        delta[0].insert(0);
        let residual = db.view_minus(&delta);
        assert_eq!(residual.total_live(), 2);
        assert!(!residual.live(0).contains(0));
        assert!(residual.live(0).contains(1));
        assert!(residual.live(1).contains(0));
    }

    #[test]
    fn materialize_keeps_only_live_rows() {
        let db = two_table_db();
        let mut delta = db.empty_delta();
        delta[0].insert(1); // drop A(2)
        let small = db.materialize(&db.view_minus(&delta));
        assert_eq!(small.relation_len(0), 1);
        assert_eq!(small.relation_len(1), 1);
        assert_eq!(small.relation(0).row(0)[0], Value::Int(1));
        small.validate().unwrap();
        // Materializing the full view clones the instance.
        let full = db.materialize(&db.full_view());
        assert_eq!(full.total_tuples(), db.total_tuples());
    }

    #[test]
    fn append_batch_success_and_column_extension() {
        let mut db = two_table_db();
        // Force the columnar build so the append has something to extend.
        let old_store = Arc::clone(db.columns());
        let n = db
            .append_batch(vec![
                ("A".into(), vec![vec![3.into(), "three".into()]]),
                (
                    "B".into(),
                    vec![vec![11.into(), 3.into()], vec![12.into(), 1.into()]],
                ),
            ])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.relation_len(0), 3);
        assert_eq!(db.relation_len(1), 3);
        db.validate().unwrap();
        // Columns were extended, not dropped: the new store exists already
        // and old code prefixes survive.
        let x = db.schema().attr("A", "x").unwrap();
        let (codes, dict) = db.columns().dict_column(x).expect("dict column");
        assert_eq!(codes.len(), 3);
        let (old_codes, _) = old_store.dict_column(x).expect("dict column");
        assert_eq!(&codes[..2], old_codes);
        assert_eq!(dict.code(&Value::str("three")), Some(2));
    }

    #[test]
    fn append_batch_intra_batch_fk_reference_works() {
        let mut db = two_table_db();
        // B row referencing an A row inserted by the same batch, with the
        // referent listed *after* the referencing rows.
        db.append_batch(vec![
            ("B".into(), vec![vec![20.into(), 9.into()]]),
            ("A".into(), vec![vec![9.into(), "nine".into()]]),
        ])
        .unwrap();
        db.validate().unwrap();
    }

    #[test]
    fn append_batch_rolls_back_atomically() {
        let mut db = two_table_db();
        let old_store = Arc::clone(db.columns());
        let snapshot: Vec<Vec<Vec<Value>>> = (0..2)
            .map(|r| db.relation(r).rows().map(|row| row.to_vec()).collect())
            .collect();

        // Duplicate PK (against an old row), after a valid A row.
        let err = db
            .append_batch(vec![
                ("A".into(), vec![vec![5.into(), "five".into()]]),
                ("B".into(), vec![vec![10.into(), 1.into()]]),
            ])
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));

        // Dangling FK.
        let err = db
            .append_batch(vec![("B".into(), vec![vec![21.into(), 99.into()]])])
            .unwrap_err();
        assert!(matches!(err, Error::DanglingForeignKey { .. }));

        // Duplicate PK inside the batch itself.
        let err = db
            .append_batch(vec![(
                "A".into(),
                vec![vec![7.into(), "a".into()], vec![7.into(), "b".into()]],
            )])
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));

        // Arity and type failures mid-batch.
        assert!(db
            .append_batch(vec![("A".into(), vec![vec![8.into()]])])
            .is_err());
        assert!(db
            .append_batch(vec![("A".into(), vec![vec!["s".into(), "x".into()]])])
            .is_err());
        // Unknown relation fails before mutating.
        assert!(matches!(
            db.append_batch(vec![("Zzz".into(), vec![vec![1.into()]])]),
            Err(Error::UnknownRelation(_))
        ));

        // Nothing changed: same rows, and the original column store was
        // put back untouched.
        for (r, expected) in snapshot.iter().enumerate() {
            let now: Vec<Vec<Value>> = db.relation(r).rows().map(|row| row.to_vec()).collect();
            assert_eq!(&now, expected, "relation {r} rows");
        }
        assert!(Arc::ptr_eq(db.columns(), &old_store));
        db.validate().unwrap();
    }

    #[test]
    fn append_batch_without_built_columns_stays_lazy() {
        let mut db = two_table_db();
        db.append_batch(vec![("A".into(), vec![vec![3.into(), "three".into()]])])
            .unwrap();
        // Columns build fine on demand afterwards.
        let x = db.schema().attr("A", "x").unwrap();
        let (codes, _) = db.columns().dict_column(x).expect("dict column");
        assert_eq!(codes.len(), 3);
    }

    #[test]
    fn unknown_relation_insert_fails() {
        let mut db = two_table_db();
        assert!(matches!(
            db.insert("Zzz", vec![]),
            Err(Error::UnknownRelation(_))
        ));
    }
}
