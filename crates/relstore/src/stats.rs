//! Lightweight data statistics.
//!
//! Used for reporting (the `repro` harness prints dataset profiles) and
//! for the cube operator's automatic strategy choice: the lattice roll-up
//! wins when the number of distinct finest-level cells is far below
//! `rows × 2^d`, which a small sample estimates well for the
//! low-cardinality categorical data the paper's experiments use.

use crate::database::Database;
use crate::join::Universal;
use crate::par::{self, ExecConfig};
use crate::schema::AttrRef;
use crate::value::Value;
use std::collections::HashSet;

/// Per-attribute profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// The attribute.
    pub attr: AttrRef,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
}

/// Profile one attribute over all rows of its relation.
pub fn attr_stats(db: &Database, attr: AttrRef) -> AttrStats {
    let relation = db.relation(attr.rel);
    let mut distinct: HashSet<&Value> = HashSet::new();
    let mut nulls = 0usize;
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    for i in 0..relation.len() {
        let v = &relation.row(i)[attr.col];
        if v.is_null() {
            nulls += 1;
            continue;
        }
        distinct.insert(v);
        if min.is_none_or(|m| v < m) {
            min = Some(v);
        }
        if max.is_none_or(|m| v > m) {
            max = Some(v);
        }
    }
    AttrStats {
        attr,
        distinct: distinct.len(),
        nulls,
        min: min.cloned(),
        max: max.cloned(),
    }
}

/// A plain-text profile of the whole instance: per relation, row count
/// and per-attribute distinct/null counts and value range. The `exq
/// profile` CLI command prints this.
pub fn profile(db: &Database) -> String {
    profile_with(db, &ExecConfig::sequential())
}

/// [`profile`] with the per-attribute scans fanned out over `exec`. The
/// text is assembled in schema order afterwards, so the output is
/// identical at any thread count.
pub fn profile_with(db: &Database, exec: &ExecConfig) -> String {
    use std::fmt::Write;
    let _span = exec.metrics().span("profile");
    exec.metrics()
        .add("profile.relations", db.schema().relation_count() as u64);
    exec.metrics().add(
        "profile.rows",
        (0..db.schema().relation_count())
            .map(|rel| db.relation_len(rel) as u64)
            .sum(),
    );
    let attrs: Vec<AttrRef> = db
        .schema()
        .relations()
        .iter()
        .enumerate()
        .flat_map(|(rel, r)| (0..r.attributes.len()).map(move |col| AttrRef { rel, col }))
        .collect();
    let stats: Vec<AttrStats> = par::map_blocks(exec, &attrs, 1, |_, chunk| {
        chunk.iter().map(|&a| attr_stats(db, a)).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut stats = stats.into_iter();
    let mut out = String::new();
    for (rel, r) in db.schema().relations().iter().enumerate() {
        let _ = writeln!(out, "{} ({} rows)", r.name, db.relation_len(rel));
        for (col, _) in r.attributes.iter().enumerate() {
            let s = stats.next().expect("one AttrStats per schema attribute");
            let attr = &r.attributes[col];
            let key = if r.primary_key.contains(&col) {
                " [key]"
            } else {
                ""
            };
            let range = match (&s.min, &s.max) {
                (Some(min), Some(max)) => format!("{min} .. {max}"),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {}: {}{key}  distinct={} nulls={} range={}",
                attr.name, attr.ty, s.distinct, s.nulls, range
            );
        }
    }
    out
}

/// Estimate the number of distinct coordinate combinations of `dims` over
/// the universal relation by scanning up to `sample` tuples. For
/// categorical data whose distinct-combination count is small relative to
/// the sample, the estimate is near-exact; otherwise it is a lower bound
/// — exactly the side that matters for the strategy decision.
pub fn estimate_distinct_coords(
    db: &Database,
    u: &Universal,
    dims: &[AttrRef],
    sample: usize,
) -> usize {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for t in u.iter().take(sample) {
        let coord: Vec<Value> = dims
            .iter()
            .map(|&a| db.value(a, t[a.rel] as usize).clone())
            .collect();
        seen.insert(coord);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("x", T::Int)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, x)) in [("a", Some(5)), ("a", Some(2)), ("b", None), ("c", Some(9))]
            .iter()
            .enumerate()
        {
            let xv = x.map_or(Value::Null, Value::Int);
            db.insert("R", vec![(i as i64).into(), (*g).into(), xv])
                .unwrap();
        }
        db
    }

    #[test]
    fn attr_profile() {
        let db = db();
        let g = db.schema().attr("R", "g").unwrap();
        let s = attr_stats(&db, g);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.nulls, 0);
        assert_eq!(s.min, Some(Value::str("a")));
        assert_eq!(s.max, Some(Value::str("c")));

        let x = db.schema().attr("R", "x").unwrap();
        let s = attr_stats(&db, x);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(Value::Int(2)));
        assert_eq!(s.max, Some(Value::Int(9)));
    }

    #[test]
    fn empty_relation_stats() {
        let schema = SchemaBuilder::new()
            .relation("E", &[("a", T::Int)], &["a"])
            .build()
            .unwrap();
        let db = Database::new(schema);
        let s = attr_stats(&db, db.schema().attr("E", "a").unwrap());
        assert_eq!(s.distinct, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn profile_mentions_everything() {
        let db = db();
        let text = profile(&db);
        assert!(text.contains("R (4 rows)"));
        assert!(text.contains("id: int [key]"));
        assert!(text.contains("g: str  distinct=3 nulls=0 range=a .. c"));
        assert!(text.contains("x: int  distinct=3 nulls=1 range=2 .. 9"));
    }

    #[test]
    fn parallel_profile_is_identical() {
        let db = db();
        let sequential = profile(&db);
        for threads in [2, 7] {
            let parallel = profile_with(&db, &ExecConfig::with_threads(threads));
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn distinct_coord_estimate() {
        let db = db();
        let u = Universal::compute(&db, &db.full_view());
        let g = db.schema().attr("R", "g").unwrap();
        assert_eq!(estimate_distinct_coords(&db, &u, &[g], 100), 3);
        assert_eq!(
            estimate_distinct_coords(&db, &u, &[g], 1),
            1,
            "sample caps the scan"
        );
        let id = db.schema().attr("R", "id").unwrap();
        assert_eq!(estimate_distinct_coords(&db, &u, &[g, id], 100), 4);
    }
}
