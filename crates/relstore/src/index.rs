//! Hash indexes on column subsets.
//!
//! Built on demand by the join and semijoin machinery; an index maps a
//! projected key to the (live) row indices carrying it.

use crate::database::Database;
use crate::tupleset::TupleSet;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A hash index over the live rows of one relation, keyed by a column
/// subset.
#[derive(Debug, Clone)]
pub struct HashIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl HashIndex {
    /// Build an index on `cols` over the rows of `rel` marked live in
    /// `live`.
    pub fn build(db: &Database, rel: usize, cols: &[usize], live: &TupleSet) -> HashIndex {
        let relation = db.relation(rel);
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(live.count());
        let mut key = Vec::with_capacity(cols.len());
        for row in live.iter() {
            relation.project_into(row, cols, &mut key);
            map.entry(key.clone()).or_default().push(row as u32);
        }
        HashIndex {
            cols: cols.to_vec(),
            map,
        }
    }

    /// The indexed columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Rows with the given key (empty slice if none).
    #[inline]
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Whether the key is present.
    #[inline]
    pub fn contains(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// The set of distinct keys of a column projection over live rows — the
/// cheap structure for semijoin membership tests.
pub fn key_set(db: &Database, rel: usize, cols: &[usize], live: &TupleSet) -> HashSet<Vec<Value>> {
    let relation = db.relation(rel);
    let mut set = HashSet::with_capacity(live.count());
    let mut key = Vec::with_capacity(cols.len());
    for row in live.iter() {
        relation.project_into(row, cols, &mut key);
        if !set.contains(key.as_slice()) {
            set.insert(key.clone());
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("a", T::Int), ("b", T::Str)], &["a"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), "x".into()]).unwrap();
        db.insert("R", vec![2.into(), "x".into()]).unwrap();
        db.insert("R", vec![3.into(), "y".into()]).unwrap();
        db
    }

    #[test]
    fn index_groups_rows_by_key() {
        let db = db();
        let live = TupleSet::full(3);
        let idx = HashIndex::build(&db, 0, &[1], &live);
        assert_eq!(idx.get(&[Value::str("x")]), &[0, 1]);
        assert_eq!(idx.get(&[Value::str("y")]), &[2]);
        assert_eq!(idx.get(&[Value::str("z")]), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 2);
        assert!(idx.contains(&[Value::str("x")]));
        assert_eq!(idx.cols(), &[1]);
    }

    #[test]
    fn index_respects_live_set() {
        let db = db();
        let mut live = TupleSet::full(3);
        live.remove(0);
        let idx = HashIndex::build(&db, 0, &[1], &live);
        assert_eq!(idx.get(&[Value::str("x")]), &[1]);
    }

    #[test]
    fn key_set_dedups() {
        let db = db();
        let live = TupleSet::full(3);
        let set = key_set(&db, 0, &[1], &live);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&vec![Value::str("x")]));
    }

    #[test]
    fn multi_column_keys() {
        let db = db();
        let live = TupleSet::full(3);
        let idx = HashIndex::build(&db, 0, &[0, 1], &live);
        assert_eq!(idx.get(&[Value::Int(2), Value::str("x")]), &[1]);
        assert_eq!(idx.distinct_keys(), 3);
    }
}
